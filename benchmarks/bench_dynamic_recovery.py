"""Dynamic recovery: discrepancy returns to the Theorem-3-style band after a burst.

The static theorems bound the discrepancy once the continuous substrate has
balanced.  The dynamic analogue measured here: a periodic burst dumps half
the original workload on a single node; after every burst the streaming
engine re-couples Algorithm 2 to a fresh continuous substrate, and within a
few rounds the discrepancy trace must re-enter the ``2 d w_max + 2`` band of
the current configuration.  The shape must hold under both a diffusion (FOS)
and a matching (random-matching) substrate — the framework is
substrate-agnostic, and so is its dynamic extension.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core.algorithm1 import theorem3_discrepancy_bound
from repro.dynamic.events import BurstyArrivals
from repro.dynamic.metrics import recovery_report, summarize_dynamic
from repro.dynamic.stream import run_stream
from repro.network import topologies
from repro.simulation.experiments import format_table
from repro.tasks.generators import uniform_random_load

TOKENS_PER_NODE = 8
ROUNDS = 220
SEED = 11
SUBSTRATES = ("fos", "random-matching")


def run_recovery():
    rows = []
    for continuous_kind in SUBSTRATES:
        network = topologies.torus(6, dims=2)
        load = uniform_random_load(network, TOKENS_PER_NODE * network.num_nodes, seed=SEED)
        burst = TOKENS_PER_NODE * network.num_nodes // 2
        generator = BurstyArrivals(burst, period=90, first_round=30, seed=SEED)
        result = run_stream("algorithm2", network, load, generator, rounds=ROUNDS,
                            continuous_kind=continuous_kind, seed=SEED)
        band = theorem3_discrepancy_bound(result.max_degree, result.max_task_weight)
        summary = summarize_dynamic(result, band)
        bursts = recovery_report(result, band)
        rows.append({
            "continuous": continuous_kind,
            "bursts": len(bursts),
            "recovered": summary["recovered_bursts"],
            "mean_recovery": summary["mean_recovery_time"],
            "peak": max(entry["peak"] for entry in bursts),
            "steady_state": summary["steady_state"],
            "band": band,
            "final_max_min": result.final_max_min,
            "trace": result.trace_max_min,
            "burst_rounds": [entry["round"] for entry in bursts],
        })
    return rows


def _trace_excerpt(trace, start, length=12):
    return " ".join(f"{value:.0f}" for value in trace[start:start + length])


def test_dynamic_burst_recovery(benchmark):
    rows = run_once(benchmark, run_recovery)
    table = [{key: value for key, value in row.items()
              if key not in ("trace", "burst_rounds")} for row in rows]
    print_table("Post-burst recovery of Algorithm 2 (6x6 torus, periodic hot-spot bursts)",
                format_table(table))
    for row in rows:
        for event_round in row["burst_rounds"]:
            print(f"  [{row['continuous']}] trace from burst at round {event_round}: "
                  f"{_trace_excerpt(row['trace'], event_round)}  (band {row['band']:.0f})")

    for row in rows:
        # Every burst must be recovered from, under both substrates ...
        assert row["bursts"] >= 2
        assert row["recovered"] == row["bursts"], (
            f"{row['continuous']}: only {row['recovered']}/{row['bursts']} bursts "
            f"returned to the band {row['band']}")
        # ... the burst must actually leave the band (the test is not vacuous) ...
        assert row["peak"] > row["band"]
        # ... and the stream must end inside the band.
        assert row["final_max_min"] <= row["band"] + 1e-9
