"""Ablation: the "arbitrary task" selection policy of Algorithm 1.

Algorithm 1 lets the sender pick *any* unallocated task when filling an
outgoing set; the theorem holds regardless.  This ablation runs the three
implemented policies (FIFO, largest-first, smallest-first) on a weighted
workload and confirms (a) all of them respect the Theorem 3 bound and (b)
they differ only in which tasks travel (measured through the locality
analysis), not in whether the system balances.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.continuous.fos import FirstOrderDiffusion
from repro.core.algorithm1 import DeterministicFlowImitation, theorem3_discrepancy_bound
from repro.core.flow_imitation import TaskSelectionPolicy
from repro.network import topologies
from repro.simulation.experiments import format_table
from repro.simulation.locality import summarize_displacements
from repro.tasks.generators import weighted_assignment
from repro.tasks.load import max_avg_discrepancy


def run_policies():
    network = topologies.random_regular(48, 4, seed=5)
    rows = []
    for policy in TaskSelectionPolicy.ALL:
        assignment = weighted_assignment(network, num_tasks=1200, max_weight=4,
                                         placement="uniform", seed=9)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment, selection_policy=policy)
        T = balancer.run_until_continuous_balanced(max_rounds=200_000)
        locality = summarize_displacements(balancer.assignment)
        rows.append({
            "policy": policy,
            "rounds_T": T,
            "max_avg": max_avg_discrepancy(balancer.loads(include_dummies=False), network,
                                           total_weight=balancer.original_weight),
            "bound": theorem3_discrepancy_bound(network.max_degree, balancer.w_max),
            "mean_displacement": locality.mean,
            "stationary_fraction": locality.fraction_stationary,
        })
    return rows


def test_selection_policy_ablation(benchmark):
    rows = run_once(benchmark, run_policies)
    print_table("Task-selection policy ablation (Algorithm 1, weighted tasks)",
                format_table(rows))
    assert all(row["max_avg"] <= row["bound"] + 1e-9 for row in rows)
    # All policies run for the same horizon (same continuous substrate).
    assert len({row["rounds_T"] for row in rows}) == 1
    # Tasks stay local: on average they travel at most a few hops.
    assert all(row["mean_displacement"] <= 5.0 for row in rows)
