"""Fault-recovery overhead: self-healing grids and checkpoint/resume.

Two recovery paths are measured against their fault-free baselines:

* **Grid self-healing** — a dynamic grid is run clean, then re-run with a
  deterministic fault campaign (in-cell exceptions on some cells, one
  worker kill) under ``max_retries``.  The recovered merge must be
  **bit-identical** to the clean one; the wall-clock ratio is the recovery
  overhead (retry work + pool rebuilds + backoff).

* **Checkpoint/resume** — a dynamic stream is checkpointed every N rounds,
  "killed" at a mid-run snapshot, and resumed to the horizon.  The resumed
  trajectory must be bit-identical to the uninterrupted run; the overhead
  row compares checkpointed-run and resume wall-clock against the plain
  stream.

Rows are written to ``BENCH_fault_recovery.json`` at the repository root.
Run directly for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_fault_recovery.py --scale smoke \
        --no-record
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.checkpoint import read_checkpoint, resume_stream  # noqa: E402
from repro.faults import FaultPlan  # noqa: E402
from repro.simulation.experiments import format_table  # noqa: E402
from repro.simulation.parallel import (  # noqa: E402
    GridCell,
    failed_cells,
    run_cells,
    timing_summary,
)
from repro.simulation.scenario import (  # noqa: E402
    DynamicScenario,
    run_dynamic_scenario,
)
from repro.store import write_benchmark_record  # noqa: E402

RECORD_PATH = REPO_ROOT / "BENCH_fault_recovery.json"

#: Scales: (grid cells, nodes, rounds, checkpoint cadence).
SCALES = {
    "full": {"cells": 8, "nodes": 256, "rounds": 200, "cadence": 25},
    "smoke": {"cells": 4, "nodes": 32, "rounds": 40, "cadence": 10},
}


def build_cells(scale: str):
    spec = SCALES[scale]
    return [
        GridCell(
            kind="dynamic",
            spec=DynamicScenario(
                name=f"recover-{index}", algorithm="randomized-rounding",
                topology="torus", num_nodes=spec["nodes"],
                tokens_per_node=8, events="mixed", rounds=spec["rounds"],
                seed=100 + index, rng_mode="counter"),
            index=index)
        for index in range(spec["cells"])
    ]


def fault_campaign(num_cells: int) -> FaultPlan:
    """Deterministic faults: raise in two cells, kill the worker on a third."""
    return FaultPlan(raise_at={0: 1, num_cells - 1: 2},
                     kill_at={num_cells // 2: 1})


def traces(outcomes):
    return [outcome.result.trace_max_min for outcome in outcomes
            if outcome.result is not None]


def grid_recovery_rows(scale: str, workers: int):
    cells = build_cells(scale)
    start = time.perf_counter()
    clean = run_cells(cells, workers=workers)
    clean_wall = time.perf_counter() - start

    start = time.perf_counter()
    faulty = run_cells(cells, workers=workers, max_retries=3,
                       faults=fault_campaign(len(cells)), retry_backoff=0.02)
    faulty_wall = time.perf_counter() - start

    assert traces(faulty) == traces(clean), (
        "recovered grid diverged from the fault-free grid")
    assert not failed_cells(faulty), "the fault campaign must be survivable"
    timings = timing_summary(faulty, wall_seconds=faulty_wall)
    return [{
        "path": "grid",
        "workers": workers,
        "cells": len(cells),
        "clean_seconds": round(clean_wall, 4),
        "recovered_seconds": round(faulty_wall, 4),
        "overhead_x": round(faulty_wall / clean_wall, 2),
        "retries": timings.get("retries", 0),
        "retry_seconds": timings.get("retry_seconds", 0.0),
        "identical": True,
    }]


def checkpoint_recovery_rows(scale: str, tmp_dir: pathlib.Path):
    spec = SCALES[scale]
    scenario = DynamicScenario(
        name="recover-stream", algorithm="randomized-rounding",
        topology="torus", num_nodes=spec["nodes"], tokens_per_node=8,
        events="mixed", rounds=spec["rounds"], seed=11, rng_mode="counter")

    start = time.perf_counter()
    baseline = run_dynamic_scenario(scenario)
    plain_wall = time.perf_counter() - start

    # checkpoint every `cadence` rounds; simulate a crash by resuming from
    # a snapshot taken mid-run rather than the final one
    mid_path = tmp_dir / "mid.checkpoint.json"
    final_path = tmp_dir / "final.checkpoint.json"
    kill_round = (spec["rounds"] // (2 * spec["cadence"])) * spec["cadence"]
    killed = DynamicScenario(**{**scenario.to_dict(), "rounds": kill_round})
    run_dynamic_scenario(killed, checkpoint_every=spec["cadence"],
                         checkpoint_path=mid_path)

    start = time.perf_counter()
    checkpointed = run_dynamic_scenario(scenario,
                                        checkpoint_every=spec["cadence"],
                                        checkpoint_path=final_path)
    checkpointed_wall = time.perf_counter() - start
    assert checkpointed.trace_max_min == baseline.trace_max_min, (
        "checkpointing changed the trajectory")

    checkpoint = read_checkpoint(mid_path)
    assert checkpoint.round_index == kill_round
    start = time.perf_counter()
    resumed = resume_stream(checkpoint, rounds=spec["rounds"])
    resume_wall = time.perf_counter() - start
    assert resumed.trace_max_min == baseline.trace_max_min, (
        f"resume from round {kill_round} diverged from the "
        f"uninterrupted stream")

    return [{
        "path": "checkpoint",
        "rounds": spec["rounds"],
        "cadence": spec["cadence"],
        "kill_round": kill_round,
        "plain_seconds": round(plain_wall, 4),
        "checkpointed_seconds": round(checkpointed_wall, 4),
        "checkpoint_overhead_x": round(checkpointed_wall / plain_wall, 2),
        "resume_seconds": round(resume_wall, 4),
        "identical": True,
    }]


def run_benchmark(scale: str, workers: int, tmp_dir: pathlib.Path):
    return (grid_recovery_rows(scale, workers)
            + checkpoint_recovery_rows(scale, tmp_dir))


def write_record(rows, scale: str, store=None) -> pathlib.Path:
    return write_benchmark_record(
        "fault_recovery",
        ("self-healing grid driver and checkpoint/resume: recovery "
         "overhead vs fault-free baselines, with bit-identity asserted "
         "for both paths"),
        rows, RECORD_PATH, store=store,
        config={"scale": scale},
        seeds=[11] + [100 + index for index in
                      range(SCALES[scale]["cells"])])


def format_rows(rows) -> str:
    """The two paths carry different columns; render one table per path."""
    tables = []
    for path in ("grid", "checkpoint"):
        group = [row for row in rows if row["path"] == path]
        if group:
            tables.append(format_table(group))
    return "\n\n".join(tables)


def test_fault_recovery(benchmark, tmp_path):
    from conftest import print_table, run_once

    rows = run_once(benchmark, lambda: run_benchmark("full", 2, tmp_path))
    print_table("Fault recovery overhead (grid self-healing + "
                "checkpoint/resume)", format_rows(rows))
    record = write_record(rows, "full")
    print(f"perf record written to {record}")


def main(argv=None) -> int:
    import tempfile

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="full", choices=sorted(SCALES),
                        help="'full' (the recorded curve) or the CI 'smoke' "
                             "mini-run")
    parser.add_argument("--workers", type=int, default=2,
                        help="pool size for the grid-recovery measurement")
    parser.add_argument("--no-record", action="store_true",
                        help="skip writing BENCH_fault_recovery.json")
    parser.add_argument("--store", type=pathlib.Path, default=None,
                        help="also append the rows to this JSONL run store")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory() as tmp:
        rows = run_benchmark(args.scale, args.workers, pathlib.Path(tmp))
    print(format_rows(rows))
    if not args.no_record:
        record = write_record(rows, args.scale, store=args.store)
        print(f"perf record written to {record}")
    print("recovered grid and resumed stream both bit-identical to their "
          "fault-free baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
