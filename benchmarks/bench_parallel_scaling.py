"""Parallel-driver scaling: sharded grids vs the serial path.

A mixed grid of (cell, seed) runs — multi-seed sweep cells (algorithm2 on a
4096-node torus) and dynamic burst streams (algorithm2 on a 1024-node torus,
400 rounds) — is executed serially and sharded across process pools of 2 and
4 workers.  Because every run is a pure function of its picklable spec (per-
purpose seed derivation + the order-free counter RNG), the sharded merges
must be **bit-identical** to the serial results at every worker count; the
wall-clock ratio is the scaling curve.

The measured curve (plus per-cell timings and the machine's core count) is
written to ``BENCH_parallel.json`` at the repository root as a perf record.
The speedup floor is only asserted when the machine actually exposes enough
cores for the largest pool — a 4-worker pool on a 1-core container shards
correctly but cannot be faster.  Run directly for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --scale smoke \
        --workers-list 1 2 --no-record
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.simulation.experiments import format_table  # noqa: E402
from repro.simulation.parallel import (  # noqa: E402
    GridCell,
    run_cells,
    sweep_cells,
    timing_summary,
)
from repro.simulation.scenario import DynamicScenario, expand_seeds  # noqa: E402
from repro.simulation.sweep import SweepConfiguration  # noqa: E402
from repro.store import write_benchmark_record  # noqa: E402

WORKERS_LIST = (1, 2, 4)
SEEDS = (1, 2, 3, 4)
SMOKE_SEEDS = (1, 2)
MIN_SPEEDUP = 2.5
RECORD_PATH = REPO_ROOT / "BENCH_parallel.json"

#: Grid scales: (sweep nodes, dynamic nodes, dynamic rounds, seeds).
SCALES = {
    "full": {"sweep_nodes": 4096, "dynamic_nodes": 1024, "dynamic_rounds": 400,
             "seeds": SEEDS},
    "smoke": {"sweep_nodes": 256, "dynamic_nodes": 64, "dynamic_rounds": 80,
              "seeds": SMOKE_SEEDS},
}


def available_cores() -> int:
    """Cores this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_grid(scale: str = "full"):
    """The benchmark grid: sweep cells + dynamic cells, one cell per seed."""
    spec = SCALES[scale]
    seeds = list(spec["seeds"])
    configuration = SweepConfiguration(
        algorithm="algorithm2", topology="torus", num_nodes=spec["sweep_nodes"],
        tokens_per_node=32, workload="uniform", rng_mode="counter")
    cells = sweep_cells([configuration], seeds)
    base = DynamicScenario(
        name="bench-parallel", algorithm="algorithm2", topology="torus",
        num_nodes=spec["dynamic_nodes"], tokens_per_node=16, events="burst",
        rounds=spec["dynamic_rounds"], rng_mode="counter")
    cells += [GridCell(kind="dynamic", spec=scenario, index=len(seeds) + offset)
              for offset, scenario in enumerate(expand_seeds(base, seeds))]
    return cells


def fingerprint(result):
    """Everything a merge must preserve bit-for-bit."""
    return (result.algorithm, result.rounds, result.final_max_min,
            result.final_max_avg, result.dummy_tokens, result.trace_max_min,
            result.trace_total_weight, result.event_timeline)


def run_curve(workers_list=WORKERS_LIST, scale: str = "full"):
    """Execute the grid at each worker count; return (rows, per-cell rows)."""
    workers_list = list(workers_list)
    if not workers_list or workers_list[0] != 1:
        raise ValueError("--workers-list must start with 1: the first entry is "
                         "the serial reference every speedup is measured against")
    cells = build_grid(scale)
    rows = []
    reference = None
    serial_seconds = None
    cell_rows = []
    for workers in workers_list:
        start = time.perf_counter()
        outcomes = run_cells(cells, workers=workers)
        wall = time.perf_counter() - start
        prints = [fingerprint(outcome.result) for outcome in outcomes]
        if reference is None:
            reference = prints
            serial_seconds = wall
            cell_rows = [{
                "cell": f"{outcome.cell.kind}:"
                        f"{getattr(outcome.cell.spec, 'topology', '?')}"
                        f"-n{getattr(outcome.cell.spec, 'num_nodes', '?')}",
                "seed": (outcome.cell.seed if outcome.cell.seed is not None
                         else getattr(outcome.cell.spec, "seed", None)),
                "seconds": round(outcome.seconds, 4),
            } for outcome in outcomes]
        timings = timing_summary(outcomes, wall_seconds=wall)
        rows.append({
            "workers": workers,
            "cells": len(cells),
            "wall_seconds": timings["wall_seconds"],
            "speedup": round(serial_seconds / wall, 2),
            "efficiency": round(serial_seconds / wall / workers, 2),
            "busy_seconds": timings["busy_seconds"],
            "utilization": timings["utilization"],
            "pool_processes": timings["workers_used"],
            "identical_to_serial": prints == reference,
        })
    return rows, cell_rows


def write_record(rows, cell_rows, scale: str, store=None) -> pathlib.Path:
    return write_benchmark_record(
        "parallel_scaling",
        ("sharded process-pool grid driver vs the serial path: "
         "mixed sweep + dynamic (cell, seed) grid, bit-identical "
         "merges, wall-clock scaling curve"),
        rows, RECORD_PATH, store=store,
        config={"scale": scale, "workers": [row["workers"] for row in rows]},
        seeds=list(SCALES[scale]["seeds"]),
        extra={"cpus": available_cores(), "scale": scale,
               "cell_seconds": cell_rows})


def check(rows, min_speedup: float = MIN_SPEEDUP,
          require_speedup: bool = None) -> None:
    """Identity always; the speedup floor only where the hardware allows it.

    The ``min_speedup`` floor is calibrated for the 4-worker pool of the
    full curve, so by default it is only enforced when the largest measured
    pool has at least 4 workers *and* the machine exposes that many cores —
    a 2-worker smoke run or a small container shards correctly but cannot
    meet a 2.5x floor.  ``require_speedup=True`` forces the check anyway.
    """
    for row in rows:
        assert row["identical_to_serial"], (
            f"workers={row['workers']}: sharded merge diverged from the serial "
            f"path")
    top = max(rows, key=lambda row: row["workers"])
    if require_speedup is None:
        require_speedup = top["workers"] >= 4 and available_cores() >= top["workers"]
    if require_speedup and top["workers"] >= 2:
        assert top["speedup"] >= min_speedup, (
            f"workers={top['workers']}: only {top['speedup']}x vs serial "
            f"(required {min_speedup}x on {available_cores()} cores)")


def test_parallel_scaling(benchmark):
    from conftest import print_table, run_once

    rows, cell_rows = run_once(benchmark, run_curve)
    print_table("Sharded grid driver scaling (8-cell sweep+dynamic grid, "
                "counter RNG)", format_table(rows))
    record = write_record(rows, cell_rows, "full")
    print(f"perf record written to {record}")
    check(rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="full", choices=sorted(SCALES),
                        help="grid size: 'full' (the recorded curve) or the "
                             "CI 'smoke' mini-grid")
    parser.add_argument("--workers-list", nargs="+", type=int,
                        default=list(WORKERS_LIST),
                        help="pool sizes to measure (first should be 1: the "
                             "serial reference)")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help="wall-clock floor for the largest pool")
    parser.add_argument("--require-speedup", action="store_true",
                        help="assert the floor even if the machine exposes "
                             "fewer cores than the largest pool")
    parser.add_argument("--no-record", action="store_true",
                        help="skip writing BENCH_parallel.json")
    parser.add_argument("--store", type=pathlib.Path, default=None,
                        help="also append the rows to this JSONL run store")
    args = parser.parse_args(argv)
    rows, cell_rows = run_curve(args.workers_list, scale=args.scale)
    print(format_table(rows))
    print(f"available cores: {available_cores()}")
    if not args.no_record:
        record = write_record(rows, cell_rows, args.scale, store=args.store)
        print(f"perf record written to {record}")
    check(rows, args.min_speedup,
          require_speedup=True if args.require_speedup else None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
