"""The classical potential-function analysis, reproduced empirically (Section 2.2).

Muthukrishnan et al. [34] show that the continuous FOS potential drops by a
factor of ``lambda^2`` per round, and that the discrete round-down process
matches this multiplicative drop while the potential is above
``16 d^2 n^2 / eps^2``.  This benchmark tracks both potentials on an expander
and checks the two regimes — the motivation for the paper's different
(flow-imitation) analysis, which does not need a "large potential" phase.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.analysis.potential import estimate_drop_factor, track_potential
from repro.continuous.fos import FirstOrderDiffusion
from repro.discrete.baselines.diffusion import RoundDownDiffusion
from repro.network import topologies
from repro.network.spectral import diffusion_matrix, second_largest_eigenvalue
from repro.simulation.experiments import format_table
from repro.tasks.generators import point_load


def run_potential_experiment():
    network = topologies.random_regular(64, 6, seed=3)
    lam = second_largest_eigenvalue(diffusion_matrix(network))
    tokens = 2000 * network.num_nodes  # keeps Phi above the threshold for several rounds
    rows = []

    continuous = FirstOrderDiffusion(network, point_load(network, tokens).astype(float))
    continuous_trace = track_potential(continuous, rounds=15)
    rows.append({
        "process": "continuous FOS",
        "rounds_above_threshold": continuous_trace.rounds_above_threshold,
        "drop_factor": estimate_drop_factor(continuous_trace),
        "lambda_squared": lam**2,
        "total_reduction": continuous_trace.total_reduction,
    })

    discrete = RoundDownDiffusion(network, point_load(network, tokens))
    discrete_trace = track_potential(discrete, rounds=15)
    rows.append({
        "process": "discrete round-down",
        "rounds_above_threshold": discrete_trace.rounds_above_threshold,
        "drop_factor": estimate_drop_factor(discrete_trace, above_threshold_only=True),
        "lambda_squared": lam**2,
        "total_reduction": discrete_trace.total_reduction,
    })
    return rows


def test_potential_drop_matches_classical_analysis(benchmark):
    rows = run_once(benchmark, run_potential_experiment)
    print_table("Potential drop per round (64-node 6-regular expander)",
                format_table(rows, float_format="{:.4f}"))
    continuous, discrete = rows
    # Continuous FOS drops at least as fast as lambda^2 per round.
    assert continuous["drop_factor"] <= continuous["lambda_squared"] + 1e-6
    # The discrete process stays within a modest factor of the same rate while
    # the potential is large.
    assert discrete["rounds_above_threshold"] > 0
    assert discrete["drop_factor"] <= min(1.0, 1.5 * discrete["lambda_squared"] + 0.1)
