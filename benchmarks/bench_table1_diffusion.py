"""Table 1: final discrepancies of discrete diffusion processes per graph class.

The paper's Table 1 compares the final max-min discrepancy of deterministic
and randomized discrete diffusion schemes on arbitrary graphs,
constant-degree expanders, hypercubes and 2-dimensional tori.  This benchmark
measures all of them empirically (point load, FOS substrate, horizon = the
continuous balancing time ``T``) and checks the shape of the comparison:

* Algorithm 1 stays within its ``2 d w_max + 2`` bound on every class;
* Algorithm 2 stays within the ``d/4 + O(sqrt(d log n))`` shape;
* the round-down baseline is the worst algorithm on the poorly-expanding
  classes (torus / arbitrary geometric graph).
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core.algorithm1 import theorem3_discrepancy_bound
from repro.core.algorithm2 import theorem8_max_avg_bound
from repro.simulation.experiments import DEFAULT_TABLE1_ALGORITHMS, format_table, table1_rows


def test_table1_diffusion_comparison(benchmark):
    rows = run_once(benchmark, lambda: table1_rows(
        size="small", algorithms=DEFAULT_TABLE1_ALGORITHMS, tokens_per_node=32, seed=7))
    print_table("Table 1 (diffusion model, point load, horizon T)",
                format_table(rows, columns=["graph", "n", "degree", "algorithm",
                                            "rounds", "max_min", "max_avg",
                                            "dummy_tokens", "went_negative"]))

    by_graph = {}
    for row in rows:
        by_graph.setdefault(row["graph"], {})[row["algorithm"]] = row

    for graph, results in by_graph.items():
        degree = results["algorithm1"]["degree"]
        n = results["algorithm1"]["n"]
        bound1 = theorem3_discrepancy_bound(degree, 1.0)
        assert results["algorithm1"]["max_min"] <= bound1 + 1e-9, graph
        bound2 = 2 * theorem8_max_avg_bound(degree, n, constant=3.0)
        assert results["algorithm2"]["max_min"] <= bound2 + 1e-9, graph

    # On the poorly-expanding torus round-down is at least as bad as Algorithm 1,
    # and its worst case over all classes dominates Algorithm 1's worst case —
    # the qualitative message of Table 1.
    torus = by_graph["torus (2d)"]
    assert torus["round-down"]["max_min"] >= torus["algorithm1"]["max_min"]
    worst_round_down = max(r["round-down"]["max_min"] for r in by_graph.values())
    worst_algorithm1 = max(r["algorithm1"]["max_min"] for r in by_graph.values())
    assert worst_round_down >= worst_algorithm1
