"""Figure-style experiment: per-round discrepancy traces of the discrete processes.

Not a table in the paper, but the standard companion figure: how the max-min
discrepancy evolves round by round for the round-down baseline and the two
flow-imitation algorithms on a torus.  The trace must be (eventually)
decreasing for every algorithm and end below the starting discrepancy by a
large factor.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.network import topologies
from repro.simulation.experiments import convergence_trace_rows, format_table


def test_convergence_traces_on_torus(benchmark):
    network = topologies.torus(8, dims=2)
    rows = run_once(benchmark, lambda: convergence_trace_rows(
        network, algorithms=("round-down", "algorithm1", "algorithm2"),
        tokens_per_node=32, seed=7))

    by_algorithm = {}
    for row in rows:
        by_algorithm.setdefault(row["algorithm"], []).append(row["max_min"])

    # Print a compact view: every 5th round.
    sample = [row for row in rows if row["round"] % 5 == 0]
    print_table("Discrepancy traces (8x8 torus, every 5th round)",
                format_table(sample, columns=["algorithm", "round", "max_min"]))

    for algorithm, trace in by_algorithm.items():
        assert trace[0] > 0
        assert trace[-1] <= trace[0] / 8, algorithm
        # The flow-imitation algorithms end close to their constant bound.
    assert by_algorithm["algorithm1"][-1] <= 2 * 4 + 2
