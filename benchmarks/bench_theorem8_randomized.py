"""Theorem 8: Algorithm 2 on hypercubes of growing dimension.

For each dimension the base load satisfies the Theorem 8(2) condition and
Algorithm 2 runs until the FOS substrate balances; the worst measured
discrepancy over several seeds must stay within a small constant multiple of
the ``d/4 + sqrt(d log n)`` reference shape, and the infinite source must
never be used.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.simulation.experiments import format_table, theorem8_rows


def test_theorem8_hypercube_sweep(benchmark):
    rows = run_once(benchmark, lambda: theorem8_rows(
        dimensions=(4, 5, 6), tokens_per_node=64, seeds=(3, 5, 7)))
    print_table("Theorem 8 sweep (Algorithm 2, hypercubes)", format_table(rows))
    for row in rows:
        assert not row["used_infinite_source"]
        assert row["max_min_worst"] <= 4.0 * row["reference_shape"]
    # The discrepancy grows sub-linearly in d (shape check, not absolute numbers).
    d4 = [row for row in rows if row["degree"] == 4][0]
    d6 = [row for row in rows if row["degree"] == 6][0]
    assert d6["max_min_worst"] <= 4.0 * max(d4["max_min_worst"], 1.0)
