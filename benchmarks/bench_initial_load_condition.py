"""The sufficient-initial-load condition of Theorems 3(2) and 8(2).

Sweeps the balanced base load added on top of a hot-spot workload and records
whether the flow-imitation algorithms ever need the infinite source.  Above
the ``d * w_max`` threshold of Theorem 3(2) the source must never be used;
below it dummy tokens may appear (and the max-avg bound still holds after
eliminating them, per Theorem 3(1)).
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core.algorithm1 import theorem3_discrepancy_bound
from repro.network import topologies
from repro.simulation.experiments import format_table, initial_load_condition_rows


def test_initial_load_sweep_algorithm1(benchmark):
    network = topologies.torus(6, dims=2)
    rows = run_once(benchmark, lambda: initial_load_condition_rows(
        network=network, base_levels=(0, 1, 2, 4, 8), tokens_on_hotspot=512,
        algorithm="algorithm1", seed=7))
    print_table("Sufficient initial load sweep (Algorithm 1, 6x6 torus)",
                format_table(rows))
    bound = theorem3_discrepancy_bound(network.max_degree, 1.0)
    for row in rows:
        # The max-avg bound (after eliminating dummies) holds at every base level.
        assert row["max_avg_no_dummies"] <= bound + 1e-9
        # At or above the d * w_max threshold the infinite source is never used.
        if row["base_level"] >= row["required_level"]:
            assert not row["used_infinite_source"]
            assert row["dummy_tokens"] == 0


def test_initial_load_sweep_algorithm2(benchmark):
    network = topologies.torus(6, dims=2)
    rows = run_once(benchmark, lambda: initial_load_condition_rows(
        network=network, base_levels=(0, 2, 4, 8, 16), tokens_on_hotspot=512,
        algorithm="algorithm2", seed=11))
    print_table("Sufficient initial load sweep (Algorithm 2, 6x6 torus)",
                format_table(rows))
    # With a generous base load the randomized algorithm also avoids the source.
    assert not rows[-1]["used_infinite_source"]
