"""Theorem 3: Algorithm 1 with weighted tasks and heterogeneous speeds.

Sweeps the maximum degree ``d`` and the maximum task weight ``w_max`` on
random regular graphs with random integer speeds and verifies that the final
max-min discrepancy stays below ``2 d w_max + 2`` (and that the infinite
source is never used when the Theorem 3(2) base load is provided).
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.simulation.experiments import format_table, theorem3_rows


def test_theorem3_bound_sweep(benchmark):
    rows = run_once(benchmark, lambda: theorem3_rows(
        degrees=(3, 5, 8), max_weights=(1, 2, 4), num_nodes=48,
        tasks_per_node=24, max_speed=3, seed=11))
    print_table("Theorem 3 sweep (weighted tasks, heterogeneous speeds)",
                format_table(rows))
    assert all(row["within_bound"] for row in rows)
    assert all(not row["used_infinite_source"] for row in rows)
    # The measured discrepancy grows no faster than the bound as d * w_max grows.
    small = [row for row in rows if row["degree"] == 3 and row["w_max"] == 1][0]
    large = [row for row in rows if row["degree"] == 8 and row["w_max"] == 4][0]
    assert large["bound"] > small["bound"]
