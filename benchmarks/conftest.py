"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in ``DESIGN.md``): it runs the corresponding experiment from
:mod:`repro.simulation.experiments` under ``pytest-benchmark``, prints the
resulting rows as a plain-text table, and asserts the qualitative shape the
paper reports.  Absolute timings are a by-product; the printed tables are the
reproduction artefacts.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import pytest


def run_once(benchmark, function: Callable[[], List[Dict[str, object]]]):
    """Execute an experiment exactly once under pytest-benchmark and return its rows."""
    return benchmark.pedantic(function, rounds=1, iterations=1, warmup_rounds=0)


def print_table(title: str, text: str) -> None:
    """Print a titled table so it shows up in the benchmark output."""
    print(f"\n=== {title} ===")
    print(text)
