"""Continuous balancing times vs the spectral predictions of Section 2.1.

Measures the balancing time ``T`` of FOS, SOS and the two matching models on
the Table 1 graph classes and checks the qualitative predictions:

* SOS balances no slower than FOS (and strictly faster on the poorly
  expanding classes);
* the measured FOS time correlates with ``1 / (1 - lambda)`` across classes.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.simulation.experiments import continuous_convergence_rows, format_table


def test_continuous_balancing_times(benchmark):
    rows = run_once(benchmark, lambda: continuous_convergence_rows(
        size="small", tokens_per_node=32, seed=7))
    print_table("Continuous balancing times (point load)",
                format_table(rows, columns=["graph", "n", "kind", "measured_T",
                                            "lambda", "spectral_gap", "gamma"]))

    by_graph = {}
    for row in rows:
        by_graph.setdefault(row["graph"], {})[row["kind"]] = row

    for graph, kinds in by_graph.items():
        assert kinds["sos"]["measured_T"] <= kinds["fos"]["measured_T"], graph

    # FOS time ordering follows the spectral-gap ordering across graph classes.
    fos_rows = sorted((kinds["fos"] for kinds in by_graph.values()),
                      key=lambda row: row["spectral_gap"])
    times = [row["measured_T"] for row in fos_rows]
    assert times[0] >= times[-1], "smallest spectral gap should need the most rounds"
