"""Deterministic vs randomized flow imitation as the degree grows (Section 1.1).

The paper notes that "for large values of d these [randomized] bounds improve
the results of the deterministic transformation": Algorithm 1's discrepancy
scales like ``2d`` whereas Algorithm 2's scales like ``d/4 + sqrt(d log n)``,
so the randomized variant should win increasingly clearly as the degree
grows.  This benchmark sweeps the degree of random regular graphs at fixed
``n`` and reports both algorithms' discrepancies together with their bounds.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core.algorithm1 import theorem3_discrepancy_bound
from repro.core.algorithm2 import theorem8_max_avg_bound
from repro.network import topologies
from repro.simulation.engine import compare_algorithms
from repro.simulation.experiments import format_table
from repro.tasks.generators import point_load

DEGREES = (4, 8, 16, 32)
NUM_NODES = 64


def run_degree_sweep():
    rows = []
    for degree in DEGREES:
        network = topologies.random_regular(NUM_NODES, degree, seed=3)
        load = point_load(network, 64 * network.num_nodes)
        results = {r.algorithm: r for r in compare_algorithms(
            network, load, ["algorithm1", "algorithm2"], seed=11)}
        rows.append({
            "degree": degree,
            "n": NUM_NODES,
            "rounds": results["algorithm1"].rounds,
            "alg1_max_min": results["algorithm1"].final_max_min,
            "alg1_bound": theorem3_discrepancy_bound(degree, 1.0),
            "alg2_max_min": results["algorithm2"].final_max_min,
            "alg2_bound_shape": theorem8_max_avg_bound(degree, NUM_NODES),
        })
    return rows


def test_randomized_wins_at_large_degree(benchmark):
    rows = run_once(benchmark, run_degree_sweep)
    print_table("Algorithm 1 vs Algorithm 2 as the degree grows (64 nodes)",
                format_table(rows))
    for row in rows:
        assert row["alg1_max_min"] <= row["alg1_bound"] + 1e-9
        assert row["alg2_max_min"] <= 2 * theorem8_max_avg_bound(
            row["degree"], NUM_NODES, constant=3.0)
    # At the largest degree the randomized algorithm is at least as good as the
    # deterministic one, and its advantage does not shrink as d grows.
    densest = rows[-1]
    sparsest = rows[0]
    assert densest["alg2_max_min"] <= densest["alg1_max_min"]
    gap_dense = densest["alg1_max_min"] - densest["alg2_max_min"]
    gap_sparse = sparsest["alg1_max_min"] - sparsest["alg2_max_min"]
    assert gap_dense >= gap_sparse - 2  # allow small-instance noise
