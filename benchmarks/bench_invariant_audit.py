"""Full-run invariant audit of the flow-imitation algorithms.

Every round of a flow-imitation run must satisfy the paper's intermediate
results (Observation 4/9 flow-error bound, Lemma 6 load-deviation bound and
identity, conservation, non-negativity).  This benchmark audits complete runs
of Algorithm 1 and Algorithm 2 on all four Table 1 graph classes — a stronger
statement than checking only the final discrepancy — and reports the largest
observed flow error and load deviation relative to their bounds.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.continuous.fos import FirstOrderDiffusion
from repro.core.algorithm1 import DeterministicFlowImitation
from repro.core.algorithm2 import RandomizedFlowImitation
from repro.core.diagnostics import FlowImitationAuditor
from repro.simulation.experiments import format_table, table1_graph_families
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import point_load


def run_audits():
    rows = []
    for family, network in table1_graph_families(size="small", seed=7).items():
        loads = point_load(network, 32 * network.num_nodes)
        for label, build in (
            ("algorithm1", lambda cont, assign: DeterministicFlowImitation(cont, assign)),
            ("algorithm2", lambda cont, assign: RandomizedFlowImitation(cont, assign, seed=5)),
        ):
            assignment = TaskAssignment.from_unit_loads(network, loads)
            continuous = FirstOrderDiffusion(network, assignment.loads())
            balancer = build(continuous, assignment)
            auditor = FlowImitationAuditor(balancer)
            report = auditor.run_until_continuous_balanced(max_rounds=100_000)
            rows.append({
                "graph": family,
                "algorithm": label,
                "rounds_audited": report.rounds_checked,
                "violations": len(report.violations),
                "max_flow_error": report.max_flow_error,
                "error_bound": balancer.w_max,
                "max_load_deviation": report.max_load_deviation,
                "deviation_bound": network.max_degree * balancer.w_max,
                "dummy_tokens": report.dummy_tokens,
            })
    return rows


def test_invariants_hold_on_every_round(benchmark):
    rows = run_once(benchmark, run_audits)
    print_table("Per-round invariant audit (point load, horizon T)",
                format_table(rows, float_format="{:.3f}"))
    assert all(row["violations"] == 0 for row in rows)
    assert all(row["max_flow_error"] <= row["error_bound"] + 1e-9 for row in rows)
    assert all(row["max_load_deviation"] <= row["deviation_bound"] + 1e-9 for row in rows)
