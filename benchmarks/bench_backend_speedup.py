"""Backend speedup: object vs array on bench_dynamic_recovery-style streams.

A 64-node torus carries ``W`` unit tokens; periodic bursts dump ``W/10``
extra tokens on one node, forcing the streaming engine to re-couple every
few rounds.  The object backend pays O(W) per re-coupling (rebuilding one
Python task per token) and O(W) per round (queue snapshots); the array
backend pays O(n) and O(m log m).  Both produce bit-identical discrepancy
trajectories — the speedup is pure representation.

The measured ladder (W in {10^4, 10^5, 10^6}) is written to
``BENCH_backend.json`` at the repository root as a perf record.  The
*weighted* suite runs the same bursty stream on weighted tasks (integer
weights 1..4, columnar weight buckets vs one task object per work item) plus
an excess-token row (scalar counter-RNG reference vs the fully vectorised
kernel on a 4096-node torus) and records ``BENCH_weighted.json``.

The *randomized* suite measures the **round kernels** themselves (setup
excluded, per-round seconds): the edge-keyed counter-RNG kernels of
Algorithm 2 and randomized-rounding diffusion (scalar counter-mode reference
vs vectorised array kernel on a 4096-node torus), plus the weighted round
kernel in its single-weight-class fast path and grouped-per-sender general
form — the measured reduction of the weighted per-round Python term.  It
records ``BENCH_randomized.json``.  Run directly for the CI smoke checks::

    PYTHONPATH=src python benchmarks/bench_backend_speedup.py --sizes 10000 --min-speedup 2
    PYTHONPATH=src python benchmarks/bench_backend_speedup.py --suite weighted \
        --weighted-sizes 10000 --min-speedup 2 --no-record
    PYTHONPATH=src python benchmarks/bench_backend_speedup.py --suite randomized \
        --randomized-side 16 --min-speedup 2 --no-record
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.dynamic.events import BurstyArrivals  # noqa: E402
from repro.dynamic.stream import run_stream  # noqa: E402
from repro.network import topologies  # noqa: E402
from repro.simulation.engine import make_balancer, run_algorithm  # noqa: E402
from repro.simulation.experiments import format_table  # noqa: E402
from repro.store import write_benchmark_record  # noqa: E402
from repro.tasks.generators import uniform_random_load  # noqa: E402
from repro.tasks.weighted import (  # noqa: E402
    WeightedLoads,
    weighted_loads_from_task_counts,
)

SIZES = (10**4, 10**5, 10**6)
WEIGHTED_SIZES = (10**4, 10**5)
MAX_TASK_WEIGHT = 4
EXCESS_NODES = 4096  # 64x64 torus for the vectorised excess-token kernel row
ROUNDS = 12
RANDOMIZED_SIDE = 64  # 64x64 torus = the 4096-node randomized-kernel instance
RANDOMIZED_ROUNDS = 20
SEED = 11
RECORD_PATH = REPO_ROOT / "BENCH_backend.json"
WEIGHTED_RECORD_PATH = REPO_ROOT / "BENCH_weighted.json"
RANDOMIZED_RECORD_PATH = REPO_ROOT / "BENCH_randomized.json"


def run_one(total_tokens: int, backend: str):
    """One dynamic stream: uniform load + periodic hot-spot bursts."""
    network = topologies.torus(8, dims=2)
    load = uniform_random_load(network, total_tokens, seed=SEED)
    generator = BurstyArrivals(total_tokens // 10, period=4, first_round=2, seed=SEED)
    start = time.perf_counter()
    result = run_stream("algorithm2", network, load, generator, rounds=ROUNDS,
                        seed=SEED, backend=backend)
    return time.perf_counter() - start, result


def run_ladder(sizes=SIZES):
    rows = []
    for total_tokens in sizes:
        object_seconds, object_result = run_one(total_tokens, "object")
        array_seconds, array_result = run_one(total_tokens, "array")
        rows.append({
            "W": total_tokens,
            "rounds": ROUNDS,
            "recouplings": int(object_result.extra["recouplings"]),
            "object_seconds": round(object_seconds, 4),
            "array_seconds": round(array_seconds, 4),
            "speedup": round(object_seconds / array_seconds, 1),
            "trajectories_identical": object_result.trace_max_min == array_result.trace_max_min,
        })
    return rows


def run_weighted_one(total_weight: int, backend: str):
    """One weighted dynamic stream (algorithm1, integer weights 1..4)."""
    network = topologies.torus(8, dims=2)
    # Uniform task placement whose expected total weight is ``total_weight``.
    num_tasks = int(total_weight / ((1 + MAX_TASK_WEIGHT) / 2))
    task_counts = uniform_random_load(network, num_tasks, seed=SEED)
    weighted = weighted_loads_from_task_counts(task_counts, MAX_TASK_WEIGHT,
                                               seed=SEED)
    generator = BurstyArrivals(total_weight // 10, period=4, first_round=2,
                               seed=SEED)
    start = time.perf_counter()
    result = run_stream("algorithm1", network, weighted, generator,
                        rounds=ROUNDS, seed=SEED, backend=backend)
    return time.perf_counter() - start, result


def run_excess_one(backend: str):
    """One static counter-RNG excess-token run on a 4096-node torus."""
    network = topologies.torus(64, dims=2)
    load = uniform_random_load(network, 32 * network.num_nodes, seed=SEED)
    start = time.perf_counter()
    result = run_algorithm("excess-tokens", network, initial_load=load,
                           rounds=ROUNDS, seed=SEED, backend=backend,
                           rng_mode="counter", record_trace=True)
    return time.perf_counter() - start, result


def run_weighted_ladder(sizes=WEIGHTED_SIZES, include_excess=True):
    rows = []
    for total_weight in sizes:
        object_seconds, object_result = run_weighted_one(total_weight, "object")
        array_seconds, array_result = run_weighted_one(total_weight, "array")
        rows.append({
            "workload": f"weighted-stream w_max={MAX_TASK_WEIGHT}",
            "W": total_weight,
            "rounds": ROUNDS,
            "recouplings": int(object_result.extra["recouplings"]),
            "object_seconds": round(object_seconds, 4),
            "array_seconds": round(array_seconds, 4),
            "speedup": round(object_seconds / array_seconds, 1),
            "trajectories_identical": object_result.trace_max_min == array_result.trace_max_min,
        })
    if include_excess:
        scalar_seconds, scalar_result = run_excess_one("object")
        kernel_seconds, kernel_result = run_excess_one("array")
        rows.append({
            "workload": f"excess-tokens counter-rng n={EXCESS_NODES}",
            "W": int(scalar_result.total_weight),
            "rounds": ROUNDS,
            "recouplings": 0,
            "object_seconds": round(scalar_seconds, 4),
            "array_seconds": round(kernel_seconds, 4),
            "speedup": round(scalar_seconds / kernel_seconds, 1),
            "trajectories_identical": scalar_result.trace_max_min == kernel_result.trace_max_min,
        })
    return rows


def _timed_rounds(balancer, rounds: int) -> float:
    """Per-round seconds of the balancer's round kernel (setup excluded)."""
    start = time.perf_counter()
    for _ in range(rounds):
        balancer.advance()
    return (time.perf_counter() - start) / rounds


def run_randomized_ladder(side=RANDOMIZED_SIDE, rounds=RANDOMIZED_ROUNDS):
    """Round-kernel ladder: scalar counter references vs the array kernels.

    Each row times ``rounds`` calls of ``advance()`` on freshly coupled
    balancers (construction excluded), so the numbers isolate the per-round
    term the kernels are about: the O(W) object round vs the O(m) array round
    for Algorithm 2, the per-edge move loop vs scatter-adds for
    randomized-rounding, and the weighted per-round Python term vs the
    single-class scatter-add fast path / grouped-per-sender general path.
    """
    network = topologies.torus(side, dims=2)
    n = network.num_nodes
    load = uniform_random_load(network, 32 * n, seed=SEED)
    task_counts = uniform_random_load(network, 8 * n, seed=SEED)
    single_class = WeightedLoads.from_buckets(
        [{5: int(count)} if count else {} for count in task_counts])
    mixed = weighted_loads_from_task_counts(task_counts, MAX_TASK_WEIGHT,
                                            seed=SEED)
    specs = [
        ("algorithm2 counter-rng", "algorithm2",
         {"initial_load": load, "rng_mode": "counter"}),
        ("randomized-rounding counter-rng", "randomized-rounding",
         {"initial_load": load, "rng_mode": "counter"}),
        ("weighted round kernel (single class w=5)", "algorithm1",
         {"weighted_load": single_class}),
        (f"weighted round kernel (mixed w<={MAX_TASK_WEIGHT})", "algorithm1",
         {"weighted_load": mixed}),
    ]
    rows = []
    for label, algorithm, spec in specs:
        per_round = {}
        finals = {}
        for backend in ("object", "array"):
            balancer = make_balancer(
                algorithm, network,
                initial_load=spec.get("initial_load"),
                weighted_load=spec.get("weighted_load"),
                seed=SEED, backend=backend,
                rng_mode=spec.get("rng_mode", "sequential"))
            per_round[backend] = _timed_rounds(balancer, rounds)
            finals[backend] = balancer.loads()
        rows.append({
            "kernel": label,
            "n": n,
            "rounds": rounds,
            "object_round_seconds": round(per_round["object"], 6),
            "array_round_seconds": round(per_round["array"], 6),
            "speedup": round(per_round["object"] / per_round["array"], 1),
            "trajectories_identical": bool(
                np.array_equal(finals["object"], finals["array"])),
        })
    return rows


def write_record(rows, store=None) -> pathlib.Path:
    return write_benchmark_record(
        "backend_speedup",
        "object vs array backend on a bursty 64-node dynamic stream",
        rows, RECORD_PATH, store=store,
        config={"sizes": [row["W"] for row in rows], "rounds": ROUNDS},
        seeds=[SEED])


def write_weighted_record(rows, store=None) -> pathlib.Path:
    return write_benchmark_record(
        "weighted_backend_speedup",
        ("object vs columnar weighted backend on a bursty 64-node "
         "weighted stream, plus the counter-RNG excess-token "
         "kernel vs its scalar reference"),
        rows, WEIGHTED_RECORD_PATH, store=store,
        config={"workloads": [row["workload"] for row in rows],
                "rounds": ROUNDS},
        seeds=[SEED])


def write_randomized_record(rows, store=None) -> pathlib.Path:
    return write_benchmark_record(
        "randomized_kernel_speedup",
        ("per-round kernel times: scalar counter-RNG references "
         "vs the vectorised array kernels (algorithm2 and "
         "randomized-rounding on a torus) plus the weighted "
         "round kernel (single-class fast path and "
         "grouped-per-sender general path)"),
        rows, RANDOMIZED_RECORD_PATH, store=store,
        config={"kernels": [row["kernel"] for row in rows],
                "n": rows[0]["n"] if rows else None,
                "rounds": RANDOMIZED_ROUNDS},
        seeds=[SEED])


def check(rows, min_speedup: float) -> None:
    for row in rows:
        label = row.get("kernel", f"W={row.get('W')}")
        assert row["trajectories_identical"], (
            f"{label}: backends produced different discrepancy trajectories")
        assert row["speedup"] >= min_speedup, (
            f"{label}: array backend only {row['speedup']}x faster "
            f"(required {min_speedup}x)")


def test_backend_speedup(benchmark):
    from conftest import print_table, run_once

    rows = run_once(benchmark, run_ladder)
    print_table("Object vs array backend on a bursty dynamic stream "
                "(8x8 torus, algorithm2, 12 rounds)", format_table(rows))
    record = write_record(rows)
    print(f"perf record written to {record}")
    # The tentpole claim: >= 10x on the million-token stream, exact trajectories.
    check(rows, min_speedup=2.0)
    assert rows[-1]["W"] < 10**6 or rows[-1]["speedup"] >= 10.0


def test_weighted_backend_speedup(benchmark):
    from conftest import print_table, run_once

    rows = run_once(benchmark, run_weighted_ladder)
    print_table("Object vs columnar weighted backend (8x8 torus, algorithm1, "
                "12 rounds) + counter-RNG excess-token kernel", format_table(rows))
    record = write_weighted_record(rows)
    print(f"perf record written to {record}")
    # The tentpole claim: >= 10x on the 10^5-weight weighted stream.
    check(rows, min_speedup=2.0)
    for row in rows:
        if row["workload"].startswith("weighted-stream") and row["W"] >= 10**5:
            assert row["speedup"] >= 10.0


def test_randomized_kernel_speedup(benchmark):
    from conftest import print_table, run_once

    rows = run_once(benchmark, run_randomized_ladder)
    print_table("Scalar counter-RNG references vs vectorised kernels "
                "(64x64 torus, per-round seconds)", format_table(rows))
    record = write_randomized_record(rows)
    print(f"perf record written to {record}")
    # The tentpole claim: >= 5x for the randomized kernels on 4096 nodes and
    # a measured reduction of the weighted per-round Python term.
    check(rows, min_speedup=2.0)
    for row in rows:
        if "counter-rng" in row["kernel"]:
            assert row["speedup"] >= 5.0, row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", default="unit",
                        choices=["unit", "weighted", "randomized", "all"],
                        help="which ladder(s) to run")
    parser.add_argument("--sizes", nargs="+", type=int, default=list(SIZES),
                        help="unit-token counts W to benchmark")
    parser.add_argument("--weighted-sizes", nargs="+", type=int,
                        default=list(WEIGHTED_SIZES),
                        help="weighted-stream total weights W to benchmark")
    parser.add_argument("--skip-excess", action="store_true",
                        help="skip the (slow) 4096-node excess-token row")
    parser.add_argument("--randomized-side", type=int, default=RANDOMIZED_SIDE,
                        help="torus side for the randomized-kernel ladder "
                             "(side^2 nodes)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="fail unless the array backend is this much faster")
    parser.add_argument("--no-record", action="store_true",
                        help="skip writing the BENCH_*.json records")
    parser.add_argument("--store", type=pathlib.Path, default=None,
                        help="also append the rows to this JSONL run store")
    args = parser.parse_args(argv)
    if args.suite in ("unit", "all"):
        rows = run_ladder(args.sizes)
        print(format_table(rows))
        if not args.no_record:
            print(f"perf record written to {write_record(rows, args.store)}")
        check(rows, args.min_speedup)
    if args.suite in ("weighted", "all"):
        rows = run_weighted_ladder(args.weighted_sizes,
                                   include_excess=not args.skip_excess)
        print(format_table(rows))
        if not args.no_record:
            print("perf record written to "
                  f"{write_weighted_record(rows, args.store)}")
        check(rows, args.min_speedup)
    if args.suite in ("randomized", "all"):
        rows = run_randomized_ladder(args.randomized_side)
        print(format_table(rows))
        if not args.no_record:
            print("perf record written to "
                  f"{write_randomized_record(rows, args.store)}")
        check(rows, args.min_speedup)
    return 0


if __name__ == "__main__":
    sys.exit(main())
