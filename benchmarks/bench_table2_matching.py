"""Table 2: final discrepancies in the matching models (periodic and random).

The paper's Table 2 compares discrete processes whose balancing actions are
restricted to matchings.  This benchmark runs the round-down and
randomized-rounding matching baselines together with Algorithms 1 and 2 under
both the periodic (edge-colouring) and the random matching schedule and
checks that the flow-imitation bounds hold in both models.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core.algorithm1 import theorem3_discrepancy_bound
from repro.core.algorithm2 import theorem8_max_avg_bound
from repro.simulation.experiments import DEFAULT_TABLE2_ALGORITHMS, format_table, table2_rows


def _check_rows(rows):
    for row in rows:
        if row["algorithm"] == "algorithm1":
            assert row["max_min"] <= theorem3_discrepancy_bound(row["degree"], 1.0) + 1e-9
        if row["algorithm"] == "algorithm2":
            bound = 2 * theorem8_max_avg_bound(row["degree"], row["n"], constant=3.0)
            assert row["max_min"] <= bound + 1e-9


def test_table2_periodic_matchings(benchmark):
    rows = run_once(benchmark, lambda: table2_rows(
        size="small", algorithms=DEFAULT_TABLE2_ALGORITHMS,
        matching_kind="periodic-matching", tokens_per_node=32, seed=7))
    print_table("Table 2 (periodic matchings)",
                format_table(rows, columns=["graph", "n", "degree", "algorithm",
                                            "rounds", "max_min", "max_avg"]))
    _check_rows(rows)


def test_table2_random_matchings(benchmark):
    rows = run_once(benchmark, lambda: table2_rows(
        size="small", algorithms=DEFAULT_TABLE2_ALGORITHMS,
        matching_kind="random-matching", tokens_per_node=32, seed=11))
    print_table("Table 2 (random matchings)",
                format_table(rows, columns=["graph", "n", "degree", "algorithm",
                                            "rounds", "max_min", "max_avg"]))
    _check_rows(rows)
