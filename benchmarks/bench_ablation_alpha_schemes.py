"""Ablation: the effect of the diffusion weights ``alpha_{i,j}`` (Section 2.1).

The paper quotes two "common choices" for the FOS weights —
``1/(2 max(d_i, d_j))`` and ``1/(max(d_i, d_j) + 1)`` — and our library adds a
global-degree variant.  The choice changes the spectral gap and therefore the
continuous balancing time ``T``; it must NOT change the discrete guarantee of
Algorithm 1 (the ``2 d w_max + 2`` bound is scheme-independent).  This
ablation measures both effects.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.continuous.fos import FirstOrderDiffusion
from repro.core.algorithm1 import DeterministicFlowImitation, theorem3_discrepancy_bound
from repro.network import topologies
from repro.network.spectral import AlphaScheme, compute_alphas, diffusion_matrix, second_largest_eigenvalue
from repro.simulation.experiments import format_table
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import point_load


def run_schemes():
    network = topologies.torus(8, dims=2)
    loads = point_load(network, 32 * network.num_nodes)
    rows = []
    for scheme in AlphaScheme.ALL:
        alphas = compute_alphas(network, scheme)
        lam = second_largest_eigenvalue(diffusion_matrix(network, alphas=alphas))
        assignment = TaskAssignment.from_unit_loads(network, loads)
        continuous = FirstOrderDiffusion(network, assignment.loads(), alphas=alphas)
        balancer = DeterministicFlowImitation(continuous, assignment)
        T = balancer.run_until_continuous_balanced(max_rounds=200_000)
        rows.append({
            "scheme": scheme,
            "lambda": lam,
            "balancing_time_T": T,
            "final_max_min": balancer.max_min_discrepancy(),
            "bound": theorem3_discrepancy_bound(network.max_degree, 1.0),
        })
    return rows


def test_alpha_scheme_ablation(benchmark):
    rows = run_once(benchmark, run_schemes)
    print_table("Alpha-scheme ablation (Algorithm 1 on an 8x8 torus)", format_table(rows))
    # The discrete bound holds for every scheme.
    assert all(row["final_max_min"] <= row["bound"] + 1e-9 for row in rows)
    # The scheme with the smallest lambda balances fastest (ordering check).
    by_lambda = sorted(rows, key=lambda row: row["lambda"])
    assert by_lambda[0]["balancing_time_T"] <= by_lambda[-1]["balancing_time_T"]
