"""Multi-seed variability of the randomized algorithms (error bars for Table 1).

The tables report single representative runs; this benchmark quantifies how
much the randomized components (Algorithm 2 and the randomized-rounding
baseline) fluctuate across seeds on a fixed instance, using the sweep
harness.  The deterministic Algorithm 1 must show zero spread; the randomized
algorithms must stay within their probabilistic bounds at the 90th
percentile.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core.algorithm1 import theorem3_discrepancy_bound
from repro.core.algorithm2 import theorem8_max_avg_bound
from repro.simulation.experiments import format_table
from repro.simulation.sweep import SweepConfiguration, run_sweep

SEEDS = (1, 2, 3, 4, 5, 6)


def run_variability():
    rows = []
    for algorithm in ("algorithm1", "algorithm2", "randomized-rounding"):
        configuration = SweepConfiguration(
            algorithm=algorithm, topology="hypercube", num_nodes=64,
            tokens_per_node=32, workload="point", continuous_kind="fos",
        )
        result = run_sweep(configuration, seeds=SEEDS)
        rows.append(result.as_row())
    return rows


def test_multiseed_variability(benchmark):
    rows = run_once(benchmark, run_variability)
    print_table("Across-seed variability (6 seeds, 64-node hypercube, point load)",
                format_table(rows))
    by_algorithm = {row["algorithm"]: row for row in rows}
    degree, n = 6, 64

    # The deterministic algorithm has zero spread across seeds.
    deterministic = by_algorithm["algorithm1"]
    assert deterministic["max_min_worst"] == deterministic["max_min_mean"]
    assert deterministic["max_min_worst"] <= theorem3_discrepancy_bound(degree, 1.0) + 1e-9

    # The randomized flow imitation stays within its w.h.p. bound even at the worst seed.
    randomized = by_algorithm["algorithm2"]
    assert randomized["max_min_worst"] <= 2 * theorem8_max_avg_bound(degree, n, constant=3.0)
