"""Figure-style experiment: final discrepancy as ``n`` grows at fixed degree.

The headline claim of the paper is that the discrepancy of Algorithm 1 is
independent of ``n`` (and of the graph expansion), in contrast to the classic
round-down scheme whose discrepancy grows with the diameter.  This benchmark
sweeps the network size for cycles (degree 2) and 2-dimensional tori
(degree 4) and checks both trends.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core.algorithm1 import theorem3_discrepancy_bound
from repro.simulation.experiments import format_table, scaling_in_n_rows


def _split(rows):
    by_algorithm = {}
    for row in rows:
        by_algorithm.setdefault(row["algorithm"], []).append(row)
    for values in by_algorithm.values():
        values.sort(key=lambda row: row["n"])
    return by_algorithm


def test_scaling_on_cycles(benchmark):
    rows = run_once(benchmark, lambda: scaling_in_n_rows(
        family="cycle", sizes=(16, 32, 64),
        algorithms=("round-down", "quasirandom", "algorithm1", "algorithm2"),
        tokens_per_node=32, seed=7))
    print_table("Scaling in n (cycles, degree 2)",
                format_table(rows, columns=["graph", "n", "degree", "algorithm",
                                            "rounds", "max_min", "max_avg"]))
    by_algorithm = _split(rows)
    round_down = [row["max_min"] for row in by_algorithm["round-down"]]
    algorithm1 = [row["max_min"] for row in by_algorithm["algorithm1"]]
    # Round-down grows (at least doubles from n=16 to n=64); Algorithm 1 stays bounded.
    assert round_down[-1] >= 2 * round_down[0]
    assert max(algorithm1) <= theorem3_discrepancy_bound(2, 1.0) + 1e-9


def test_scaling_on_tori(benchmark):
    rows = run_once(benchmark, lambda: scaling_in_n_rows(
        family="torus", sizes=(16, 36, 64, 100),
        algorithms=("round-down", "algorithm1", "algorithm2"),
        tokens_per_node=32, seed=7))
    print_table("Scaling in n (2-d tori, degree 4)",
                format_table(rows, columns=["graph", "n", "degree", "algorithm",
                                            "rounds", "max_min", "max_avg"]))
    by_algorithm = _split(rows)
    round_down = [row["max_min"] for row in by_algorithm["round-down"]]
    algorithm1 = [row["max_min"] for row in by_algorithm["algorithm1"]]
    assert round_down[-1] > round_down[0]
    assert max(algorithm1) <= theorem3_discrepancy_bound(4, 1.0) + 1e-9
    # Algorithm 1's spread across sizes is flat (n-independence).
    assert max(algorithm1) - min(algorithm1) <= theorem3_discrepancy_bound(4, 1.0)
