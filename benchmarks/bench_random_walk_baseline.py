"""The two-phase random-walk approach vs flow imitation (Section 2.3).

The random-walk approach ([18, 19, 21]) is the strongest prior technique for
unit tokens on uniform-speed networks: a coarse diffusion phase followed by
token-level random walks of the excess/deficit tokens.  This benchmark runs
it head to head with Algorithm 1 and Algorithm 2 on an expander and a torus
for the same total number of rounds and reports the final discrepancies.
The expected shape: all three reach small, n-independent discrepancies, with
the random-walk approach needing extra fine-balancing rounds beyond ``T``.
"""

from __future__ import annotations

from conftest import print_table, run_once

from repro.core.algorithm1 import theorem3_discrepancy_bound
from repro.discrete.baselines.random_walk import TwoPhaseRandomWalkBalancer
from repro.network import topologies
from repro.simulation.engine import compare_algorithms, determine_balancing_time
from repro.simulation.experiments import format_table
from repro.tasks.generators import point_load
from repro.tasks.load import max_min_discrepancy


def run_comparison():
    rows = []
    for family, network in (
        ("expander (4-regular)", topologies.random_regular(64, 4, seed=3)),
        ("torus (2d)", topologies.torus(8, dims=2)),
    ):
        load = point_load(network, 32 * network.num_nodes)
        T = determine_balancing_time(network, load, "fos")
        for result in compare_algorithms(network, load, ["algorithm1", "algorithm2"],
                                         rounds=T, seed=5):
            rows.append({
                "graph": family,
                "algorithm": result.algorithm,
                "rounds": result.rounds,
                "max_min": result.final_max_min,
            })
        walker = TwoPhaseRandomWalkBalancer(network, load, phase1_rounds=T, seed=5)
        walker.run(2 * T)  # phase 1 for T rounds + T fine-balancing rounds
        rows.append({
            "graph": family,
            "algorithm": "random-walk (2-phase)",
            "rounds": 2 * T,
            "max_min": max_min_discrepancy(walker.loads(), network),
        })
    return rows


def test_random_walk_vs_flow_imitation(benchmark):
    rows = run_once(benchmark, run_comparison)
    print_table("Two-phase random walk vs flow imitation", format_table(rows))
    by_graph = {}
    for row in rows:
        by_graph.setdefault(row["graph"], {})[row["algorithm"]] = row
    for graph, results in by_graph.items():
        degree = 4
        assert results["algorithm1"]["max_min"] <= theorem3_discrepancy_bound(degree, 1.0) + 1e-9
        # The random-walk baseline also ends with a small discrepancy, but needs
        # twice the rounds; it must at least beat the trivial initial imbalance.
        assert results["random-walk (2-phase)"]["max_min"] <= 4 * theorem3_discrepancy_bound(degree, 1.0)
