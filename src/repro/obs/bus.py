"""The telemetry bus: structured per-round events any run can stream.

A :class:`MetricsBus` is a tiny synchronous publish/subscribe hub.  Producers
(the engine, the streaming engine, the sweep drivers, the invariant auditor)
``emit`` structured :class:`TelemetryEvent` records; consumers ``subscribe``
callbacks, optionally filtered by event kind.  Everything happens in-process
and in-order — the bus adds no threads, no queues and no I/O of its own, so
subscribing a collector to a run observes it without perturbing it.

Two design rules keep the bus honest:

* **Non-intrusive** — producers only *read* run state when building payloads;
  a run with a subscriber attached is bit-identical to an uninstrumented run
  (enforced by ``tests/obs/test_probe.py``).
* **Near-zero overhead when nobody listens** — every producer guards its
  payload construction with :attr:`MetricsBus.active` (or holds no bus at
  all), so the per-round cost of an unobserved run is a single attribute
  check.

Event kinds used by the library (producers may add their own):

``run_start`` / ``run_end``
    One engine run (:func:`repro.simulation.engine.run_algorithm`) beginning
    and ending; the payload carries the instance, backend, rng mode and — on
    ``run_end`` — the final discrepancies.
``round``
    One executed balancer round (emitted by :class:`~repro.obs.probe.RoundProbe`):
    discrepancy, kernel seconds, flow/dummy statistics.
``stream_round`` / ``recouple``
    One round of a dynamic stream (:class:`repro.dynamic.stream.StreamingEngine`)
    and its re-coupling boundaries, with event-application counts.
``cell_done``
    One finished grid cell of the sharded parallel driver
    (:mod:`repro.simulation.parallel`), with its timing envelope.
``audit_violation``
    One invariant violation found by the
    :class:`~repro.core.diagnostics.FlowImitationAuditor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..exceptions import ExperimentError

__all__ = ["TelemetryEvent", "MetricsBus", "EventLog"]


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured telemetry record.

    Attributes
    ----------
    kind:
        The event type (see the module docstring for the library's kinds).
    source:
        Which producer emitted it (e.g. ``"engine"``, ``"stream"``,
        ``"auditor"``, ``"parallel"``).
    round_index:
        The balancing round the event refers to, or ``None`` for run-level
        events.
    payload:
        Structured, JSON-friendly measurements.
    """

    kind: str
    source: str
    round_index: Optional[int] = None
    payload: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flatten to a JSON-friendly dictionary (payload keys inlined)."""
        row: Dict[str, object] = {"kind": self.kind, "source": self.source}
        if self.round_index is not None:
            row["round"] = self.round_index
        for key, value in self.payload.items():
            row.setdefault(key, value)
        return row


Subscriber = Callable[[TelemetryEvent], None]


class MetricsBus:
    """Synchronous in-process publish/subscribe hub for telemetry events.

    Subscribers are called in subscription order, on the emitting thread.  A
    subscriber that raises aborts the emit — observability code should not
    swallow its own bugs silently, and tests rely on the propagation.
    """

    def __init__(self) -> None:
        self._subscribers: List[Tuple[Subscriber, Optional[frozenset]]] = []
        self._emitted = 0

    @property
    def active(self) -> bool:
        """Whether anybody is listening (producers gate payload work on this)."""
        return bool(self._subscribers)

    @property
    def events_emitted(self) -> int:
        """Total number of events emitted through this bus."""
        return self._emitted

    def subscribe(self, subscriber: Subscriber,
                  kinds: Optional[Iterable[str]] = None) -> Subscriber:
        """Register ``subscriber`` for all events (or only the given kinds).

        Returns the subscriber so ``bus.subscribe(collector)`` can be used as
        an expression; pass the same callable to :meth:`unsubscribe`.
        """
        if not callable(subscriber):
            raise ExperimentError("a bus subscriber must be callable")
        kind_filter = None if kinds is None else frozenset(kinds)
        self._subscribers.append((subscriber, kind_filter))
        return subscriber

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Remove every registration of ``subscriber`` (unknown ones error)."""
        remaining = [entry for entry in self._subscribers if entry[0] is not subscriber]
        if len(remaining) == len(self._subscribers):
            raise ExperimentError("cannot unsubscribe: subscriber is not registered")
        self._subscribers = remaining

    def emit(self, kind: str, source: str, round_index: Optional[int] = None,
             **payload: object) -> Optional[TelemetryEvent]:
        """Build and deliver one event; returns it (or ``None`` if unobserved).

        Producers that build expensive payloads should additionally guard on
        :attr:`active`; ``emit`` itself short-circuits to a no-op when there
        is no subscriber.
        """
        if not self._subscribers:
            return None
        event = TelemetryEvent(kind=kind, source=source,
                               round_index=round_index, payload=payload)
        self.publish(event)
        return event

    def publish(self, event: TelemetryEvent) -> None:
        """Deliver an already-built event to the matching subscribers."""
        self._emitted += 1
        for subscriber, kind_filter in self._subscribers:
            if kind_filter is None or event.kind in kind_filter:
                subscriber(event)


class EventLog:
    """A list-collecting subscriber, usable as a context manager.

    >>> bus = MetricsBus()
    >>> with EventLog(bus, kinds=["round"]) as log:
    ...     ...  # drive a run with ``bus`` attached
    >>> [event.round_index for event in log.events]
    """

    def __init__(self, bus: MetricsBus, kinds: Optional[Iterable[str]] = None) -> None:
        self._bus = bus
        self._kinds = None if kinds is None else list(kinds)
        self.events: List[TelemetryEvent] = []

    def __call__(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def __enter__(self) -> "EventLog":
        self._bus.subscribe(self, kinds=self._kinds)
        return self

    def __exit__(self, *exc_info) -> None:
        self._bus.unsubscribe(self)

    def kinds(self) -> List[str]:
        """The kinds of the collected events, in arrival order."""
        return [event.kind for event in self.events]

    def of_kind(self, kind: str) -> List[TelemetryEvent]:
        """The collected events of one kind, in arrival order."""
        return [event for event in self.events if event.kind == kind]
