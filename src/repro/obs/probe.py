"""Per-round probes: turn a live balancer into a stream of telemetry events.

A :class:`RoundProbe` attaches to any :class:`~repro.discrete.base.DiscreteBalancer`
via :meth:`~repro.discrete.base.DiscreteBalancer.attach_probe`.  The balancer
calls :meth:`RoundProbe.after_round` once per executed round, handing over the
in-worker kernel time of that round; the probe reads the post-round state and
emits one ``"round"`` event on its :class:`~repro.obs.bus.MetricsBus`.

The probe is strictly read-only: it computes discrepancies from a copy of the
load vector and reads the already-recorded
:class:`~repro.core.flow_imitation.RoundReport` counters, so attaching it can
never change a trajectory.  When the bus has no subscriber the balancer skips
the probe bookkeeping entirely (see ``DiscreteBalancer.advance``), keeping
uninstrumented runs at a single attribute-check of overhead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from ..tasks.load import max_min_discrepancy
from .bus import MetricsBus
from .kernels import drain_round_phases

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..discrete.base import DiscreteBalancer

__all__ = ["RoundProbe"]


class RoundProbe:
    """Emit one structured ``"round"`` event per executed balancer round.

    Parameters
    ----------
    bus:
        The bus to publish on.
    source:
        Producer tag for the emitted events (``"engine"`` for static runs,
        ``"stream"`` for dynamic ones).
    context:
        Run-level constants replicated into every round payload (backend,
        rng mode, algorithm) so a subscriber can demultiplex interleaved runs
        without tracking ``run_start`` events.
    """

    def __init__(self, bus: MetricsBus, source: str = "engine",
                 context: Optional[Dict[str, object]] = None) -> None:
        self._bus = bus
        self._source = source
        self._context = dict(context or {})
        self._rounds_seen = 0
        self._kernel_seconds = 0.0

    @property
    def bus(self) -> MetricsBus:
        """The bus this probe publishes on."""
        return self._bus

    @property
    def rounds_seen(self) -> int:
        """How many rounds this probe has observed."""
        return self._rounds_seen

    @property
    def kernel_seconds(self) -> float:
        """Total in-kernel wall-clock of the observed rounds."""
        return self._kernel_seconds

    def wants_events(self) -> bool:
        """Whether emitting is worth the payload work right now."""
        return self._bus.active

    def after_round(self, balancer: "DiscreteBalancer", seconds: float) -> None:
        """Observe one executed round of ``balancer`` (read-only) and emit."""
        # imported here, not at module top: the kernels wrap their hot
        # sections in repro.obs.kernels phase blocks, so the core modules
        # import this package — a top-level import back into core would be
        # circular
        from ..core.flow_imitation import FlowCoupledBalancer

        self._rounds_seen += 1
        self._kernel_seconds += seconds
        if not self._bus.active:
            return
        loads = balancer.loads()
        payload: Dict[str, object] = dict(self._context)
        payload.update(
            kernel_seconds=seconds,
            max_min=max_min_discrepancy(loads, balancer.network),
            total_load=float(loads.sum()),
        )
        phases = drain_round_phases()
        if phases is not None:
            payload["kernel_phases"] = phases
        if isinstance(balancer, FlowCoupledBalancer):
            report = balancer._reports[-1] if balancer._reports else None
            if report is not None and report.round_index == balancer.round_index - 1:
                payload.update(
                    transfers=report.transfers,
                    tasks_moved=report.tasks_moved,
                    weight_moved=report.weight_moved,
                    dummy_tokens_round=report.dummy_tokens_created,
                )
            payload.update(
                dummy_tokens_total=balancer.dummy_tokens_created,
                used_infinite_source=balancer.used_infinite_source,
            )
        else:
            payload["went_negative"] = bool(getattr(balancer, "went_negative", False))
        self._bus.emit("round", self._source,
                       round_index=balancer.round_index - 1, **payload)
