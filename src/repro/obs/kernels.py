"""Kernel-phase timing: a per-process clock the backend kernels report into.

The :class:`~repro.obs.probe.RoundProbe` already measures whole-round kernel
wall-clock; profiling a run further needs the *phases inside* a round — how
much of a round went into advancing the continuous substrate versus executing
the discrete rounding kernel.  Rather than threading a timer object through
every balancer constructor, the kernels wrap their hot sections in
:func:`kernel_phase` blocks that report into a single per-process
:class:`KernelClock` — active only while something (a
:class:`~repro.obs.trace.Tracer`, a capturing pool worker) has installed one.

When no clock is installed a :func:`kernel_phase` block costs one global read
per ``__enter__``/``__exit__`` — no timestamps are taken — so uninstrumented
runs keep the library's near-zero-overhead observability contract.  Phase
timing is strictly read-only: activating a clock can never change a
trajectory, only measure it.

The probe drains the clock once per round (:func:`drain_round_phases`), so
per-round ``"round"`` telemetry events carry a ``kernel_phases`` payload —
``{phase name: seconds}`` — whenever a clock is active.  Phase names follow a
``family/kernel`` convention (``"continuous/advance"``,
``"flow/array-round"``, ``"baseline/excess-array"``) so hot-kernel tables
group naturally.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

__all__ = [
    "KernelClock",
    "kernel_phase",
    "activate_kernel_clock",
    "deactivate_kernel_clock",
    "active_kernel_clock",
    "drain_round_phases",
]

#: The installed per-process clock (``None`` = phase timing off).
_ACTIVE: Optional["KernelClock"] = None


class KernelClock:
    """Accumulates per-phase kernel seconds between drains.

    ``pending`` holds the seconds accumulated since the last
    :meth:`drain` (one balancing round, in practice); ``totals`` and
    ``counts`` keep the run-level aggregate a profiler summary needs.
    """

    def __init__(self) -> None:
        self.pending: Dict[str, float] = {}
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def add(self, name: str, seconds: float) -> None:
        """Record one timed phase block."""
        self.pending[name] = self.pending.get(name, 0.0) + seconds
        self.totals[name] = self.totals.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def drain(self) -> Dict[str, float]:
        """Return and clear the phases accumulated since the last drain."""
        pending = self.pending
        self.pending = {}
        return pending


class _PhaseBlock:
    """The reusable context manager behind :func:`kernel_phase`."""

    __slots__ = ("_name", "_start")

    def __init__(self, name: str) -> None:
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseBlock":
        if _ACTIVE is not None:
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        clock = _ACTIVE
        if clock is not None:
            clock.add(self._name, time.perf_counter() - self._start)
        return False


def kernel_phase(name: str) -> _PhaseBlock:
    """A ``with`` block that reports its wall-clock to the active clock.

    Near-free when no clock is installed; kernels wrap their hot sections in
    these unconditionally.
    """
    return _PhaseBlock(name)


def activate_kernel_clock(clock: Optional[KernelClock] = None) -> KernelClock:
    """Install ``clock`` (or a fresh one) as this process's phase collector."""
    global _ACTIVE
    _ACTIVE = clock if clock is not None else KernelClock()
    return _ACTIVE


def deactivate_kernel_clock() -> None:
    """Remove the installed clock (phase blocks become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


def active_kernel_clock() -> Optional[KernelClock]:
    """The currently installed clock, or ``None``."""
    return _ACTIVE


def drain_round_phases() -> Optional[Dict[str, float]]:
    """Drain the active clock's per-round phases (``None`` when off/empty)."""
    clock = _ACTIVE
    if clock is None or not clock.pending:
        return None
    return clock.drain()
