"""A terminal subscriber: watch a run live without any plotting dependency.

:class:`ConsoleSubscriber` prints one compact line per telemetry event (round
events may be thinned with ``every=N``).  The CLI's ``--telemetry`` flag wires
it to the run's bus, which is the quickest way to see the bus in action::

    repro-loadbalance dynamic --scenario burst --rounds 60 --telemetry
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

from .bus import TelemetryEvent

__all__ = ["ConsoleSubscriber"]

_PER_ROUND_KINDS = ("round", "stream_round")


class ConsoleSubscriber:
    """Print telemetry events as they are emitted.

    Each line is prefixed with the seconds elapsed since the subscriber was
    created (``+1.204s``), and the stream is flushed after every line so
    piped output (``| tee``, CI log capture) stays live rather than arriving
    in one buffered burst at exit.

    Parameters
    ----------
    every:
        Print only every ``N``-th per-round event (run-level events, audit
        violations and re-couplings are always printed).
    stream:
        Output stream; defaults to ``sys.stdout``.
    """

    def __init__(self, every: int = 1, stream: Optional[IO[str]] = None,
                 clock=time.perf_counter) -> None:
        if every < 1:
            raise ValueError("every must be at least 1")
        self._every = every
        self._stream = stream if stream is not None else sys.stdout
        self._round_events = 0
        self._clock = clock
        self._started = clock()

    def __call__(self, event: TelemetryEvent) -> None:
        if event.kind in _PER_ROUND_KINDS:
            self._round_events += 1
            if self._round_events % self._every:
                return
        elapsed = self._clock() - self._started
        self._stream.write(f"+{elapsed:.3f}s {self.format(event)}\n")
        self._stream.flush()

    @staticmethod
    def format(event: TelemetryEvent) -> str:
        """One compact ``key=value`` line for an event."""
        parts = [f"[{event.source}] {event.kind}"]
        if event.round_index is not None:
            parts.append(f"round={event.round_index}")
        for key, value in event.payload.items():
            if isinstance(value, float):
                parts.append(f"{key}={value:.6g}")
            else:
                parts.append(f"{key}={value}")
        return " ".join(parts)
