"""Span tracing: turn bus telemetry into a Chrome trace-event profile.

A :class:`Tracer` subscribes to a :class:`~repro.obs.bus.MetricsBus` and
builds a span tree out of the event stream:

* ``run_start`` / ``run_end`` bracket a **run span** per ``(pid, tid)``;
* each ``"round"`` event becomes a **round span** whose duration is the
  probe-measured kernel wall-clock, with the per-phase kernel breakdown
  (:mod:`repro.obs.kernels`) nested as child spans and the flow counters
  (tokens moved, active edges, dummy tokens) emitted as counter tracks;
* ``recouple`` / ``stream_round`` / ``audit_violation`` become instant
  events, ``cell_done`` envelopes become **cell spans**;
* relayed events (:mod:`repro.obs.relay`) carry ``(worker, cell, ts)``
  attribution, which maps to **one pid per worker and one tid per cell** —
  a sharded grid renders as one lane per worker process with its cells and
  their rounds nested inside.

The output is standard Chrome trace-event JSON (:meth:`Tracer.write`): open
it in ``chrome://tracing`` or https://ui.perfetto.dev.  Timestamps are
microseconds on the system-wide monotonic clock, so spans captured in
different pool workers line up on one timeline.

Tracing is an observer: it changes no trajectory (the probes it listens to
are read-only, enforced by ``tests/obs/test_trace.py``), and its cost is
paid only while a subscriber is attached.

:func:`chrome_from_records` and :func:`hot_kernel_rows` additionally rebuild
a coarse trace (cell spans + aggregate phase spans) from stored
:class:`~repro.store.runstore.RunRecord` timing envelopes — the ``repro
trace`` subcommand, for profiling runs recorded by earlier sessions.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Dict, List, Optional, Union

from .bus import MetricsBus, TelemetryEvent
from .kernels import activate_kernel_clock, deactivate_kernel_clock
from .relay import CapturedEvent

__all__ = [
    "Tracer",
    "cell_trace_summary",
    "chrome_from_records",
    "hot_kernel_rows",
    "validate_chrome_trace",
]

_US = 1e6  # seconds -> Chrome trace microseconds

#: Round-payload counters surfaced as Chrome counter tracks, in the order
#: ``(payload key, counter track name)``.
_ROUND_COUNTERS = (
    ("tasks_moved", "tokens_moved"),
    ("weight_moved", "weight_moved"),
    ("transfers", "active_edges"),
    ("dummy_tokens_total", "dummy_tokens"),
)


def _read_rss_kb() -> Optional[int]:
    """Current resident-set size in KiB (Linux ``/proc``; ``None`` elsewhere)."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * (os.sysconf("SC_PAGE_SIZE") // 1024)
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        try:
            import resource

            return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        except Exception:
            return None


class Tracer:
    """Collect bus telemetry into Chrome trace events and span summaries.

    Parameters
    ----------
    label:
        Name recorded as the trace's driver-process label.
    wrap_kernels:
        Activate the per-process :class:`~repro.obs.kernels.KernelClock` for
        the lifetime of the attachment, so *in-process* (serial) runs report
        the per-phase kernel breakdown.  Pool workers activate their own
        clock regardless (see ``repro.simulation.parallel``).
    sample_rss:
        Sample the driver's resident-set size on every handled round/cell
        event into an ``rss_mb`` counter track (Linux; silently off where
        ``/proc`` is unavailable).
    clock:
        Timestamp source; tests inject a fake. Must match the clock used by
        the relay's capture timestamps.
    """

    def __init__(self, label: str = "repro", wrap_kernels: bool = True,
                 sample_rss: bool = False, clock=time.perf_counter) -> None:
        self._label = label
        self._wrap_kernels = wrap_kernels
        self._sample_rss = sample_rss
        self._clock = clock
        self._t0 = clock()
        self._events: List[Dict[str, object]] = []
        self._open_runs: Dict[tuple, Dict[str, object]] = {}
        self._seen_pids: Dict[int, str] = {}
        self._seen_tids: set = set()
        self._bus: Optional[MetricsBus] = None
        # run-level aggregates for summary() / hot_kernels()
        self._rounds = 0
        self._cells = 0
        self._kernel_seconds = 0.0
        self._phase_totals: Dict[str, float] = {}
        self._phase_counts: Dict[str, int] = {}
        self._counter_totals: Dict[str, float] = {}
        self._rss_peak_kb = 0
        self._driver_pid = os.getpid()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def attach(self, bus: MetricsBus) -> "Tracer":
        """Subscribe to ``bus`` (and install the kernel clock, if asked)."""
        if self._bus is not None:
            raise ValueError("tracer is already attached to a bus")
        bus.subscribe(self)
        self._bus = bus
        if self._wrap_kernels:
            activate_kernel_clock()
        return self

    def detach(self) -> None:
        """Unsubscribe and deactivate the kernel clock."""
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None
        if self._wrap_kernels:
            deactivate_kernel_clock()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # ------------------------------------------------------------------ #
    # event handling
    # ------------------------------------------------------------------ #

    def __call__(self, event: TelemetryEvent) -> None:
        payload = event.payload
        pid = int(payload.get("worker", self._driver_pid))
        tid = int(payload.get("cell", 0))
        end = float(payload.get("ts", self._clock()))
        self._note_lane(pid, tid)
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event, pid, tid, end)
        else:
            self._instant(event.kind, event.kind, pid, tid, end,
                          args=self._args(payload))
        if self._sample_rss and event.kind in ("round", "cell_done"):
            self._sample_driver_rss(end)

    # -- kinds ---------------------------------------------------------- #

    def _on_run_start(self, event, pid, tid, end) -> None:
        self._open_runs[(pid, tid)] = {"ts": end, "payload": dict(event.payload)}

    def _on_run_end(self, event, pid, tid, end) -> None:
        opened = self._open_runs.pop((pid, tid), None)
        start = opened["ts"] if opened else end
        started_payload = opened["payload"] if opened else {}
        algorithm = started_payload.get("algorithm",
                                        event.payload.get("algorithm", "run"))
        self._complete(f"run:{algorithm}", "run", pid, tid, start, end - start,
                       args=self._args(started_payload, event.payload))

    def _on_round(self, event, pid, tid, end) -> None:
        payload = event.payload
        dur = float(payload.get("kernel_seconds", 0.0))
        start = end - dur
        self._rounds += 1
        self._kernel_seconds += dur
        backend = payload.get("backend", "?")
        self._complete("round", "round", pid, tid, start, dur, args={
            "round": event.round_index, "backend": backend,
            **self._args(payload, drop=("kernel_phases",))})
        phases = payload.get("kernel_phases")
        if isinstance(phases, dict):
            cursor = start
            for name, seconds in phases.items():
                seconds = float(seconds)
                self._complete(name, "kernel", pid, tid, cursor, seconds)
                cursor += seconds
                self._phase_totals[name] = \
                    self._phase_totals.get(name, 0.0) + seconds
                self._phase_counts[name] = self._phase_counts.get(name, 0) + 1
        for key, track in _ROUND_COUNTERS:
            value = payload.get(key)
            if value is not None:
                self._counter(track, float(value), pid, end)
                if key != "dummy_tokens_total":  # already a running total
                    self._counter_totals[track] = \
                        self._counter_totals.get(track, 0.0) + float(value)
                else:
                    self._counter_totals[track] = float(value)

    def _on_stream_round(self, event, pid, tid, end) -> None:
        payload = event.payload
        self._instant("stream_round", "stream", pid, tid, end,
                      args=self._args(payload))
        for key in ("total_load", "max_min"):
            if key in payload:
                self._counter(key, float(payload[key]), pid, end)

    def _on_recouple(self, event, pid, tid, end) -> None:
        self._instant(f"recouple:{event.payload.get('mode', '?')}", "recouple",
                      pid, tid, end, args=self._args(event.payload))

    def _on_cell_done(self, event, pid, tid, end) -> None:
        payload = event.payload
        seconds = float(payload.get("seconds", 0.0))
        started = payload.get("started")
        cell_pid = int(payload.get("worker_pid", pid))
        cell_tid = int(payload.get("position", payload.get("index", tid)))
        self._note_lane(cell_pid, cell_tid)
        span_end = (float(started) + seconds) if started is not None else end
        self._cells += 1
        self._complete(f"cell:{payload.get('label', cell_tid)}", "cell",
                       cell_pid, cell_tid, span_end - seconds, seconds,
                       args=self._args(payload, drop=("label", "started")))

    def _on_audit_violation(self, event, pid, tid, end) -> None:
        self._instant("audit_violation", "audit", pid, tid, end,
                      args=self._args(event.payload))

    # ------------------------------------------------------------------ #
    # trace-event assembly
    # ------------------------------------------------------------------ #

    @staticmethod
    def _args(*payloads: Dict[str, object], drop=()) -> Dict[str, object]:
        merged: Dict[str, object] = {}
        for payload in payloads:
            for key, value in payload.items():
                if key not in drop and isinstance(value, (str, int, float, bool)):
                    merged.setdefault(key, value)
        return merged

    def _us(self, ts: float) -> float:
        return round((ts - self._t0) * _US, 3)

    def _note_lane(self, pid: int, tid: int) -> None:
        if pid not in self._seen_pids:
            name = self._label if pid == self._driver_pid else f"worker {pid}"
            self._seen_pids[pid] = name
            self._events.append({"ph": "M", "name": "process_name", "pid": pid,
                                 "tid": 0, "args": {"name": name}})
        if (pid, tid) not in self._seen_tids:
            self._seen_tids.add((pid, tid))
            self._events.append({"ph": "M", "name": "thread_name", "pid": pid,
                                 "tid": tid, "args": {"name": f"cell {tid}"}})

    def _complete(self, name: str, cat: str, pid: int, tid: int,
                  start: float, dur: float, args: Optional[dict] = None) -> None:
        event = {"name": name, "cat": cat, "ph": "X", "ts": self._us(start),
                 "dur": round(max(dur, 0.0) * _US, 3), "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self._events.append(event)

    def _instant(self, name: str, cat: str, pid: int, tid: int, ts: float,
                 args: Optional[dict] = None) -> None:
        event = {"name": name, "cat": cat, "ph": "i", "s": "t",
                 "ts": self._us(ts), "pid": pid, "tid": tid}
        if args:
            event["args"] = args
        self._events.append(event)

    def _counter(self, name: str, value: float, pid: int, ts: float) -> None:
        self._events.append({"name": name, "cat": "counter", "ph": "C",
                             "ts": self._us(ts), "pid": pid, "tid": 0,
                             "args": {name: value}})

    def _sample_driver_rss(self, ts: float) -> None:
        rss_kb = _read_rss_kb()
        if rss_kb is None:
            return
        self._rss_peak_kb = max(self._rss_peak_kb, rss_kb)
        self._counter("rss_mb", round(rss_kb / 1024.0, 2),
                      self._driver_pid, ts)

    # ------------------------------------------------------------------ #
    # output
    # ------------------------------------------------------------------ #

    @property
    def trace_events(self) -> List[Dict[str, object]]:
        """The Chrome trace events collected so far (live list)."""
        return self._events

    def summary(self) -> Dict[str, object]:
        """Aggregate span summary: rounds, kernel seconds, phases, counters."""
        summary: Dict[str, object] = {
            "spans": sum(1 for event in self._events if event.get("ph") == "X"),
            "rounds": self._rounds,
            "cells": self._cells,
            "workers": sorted(pid for pid in self._seen_pids
                              if pid != self._driver_pid) or [self._driver_pid],
            "kernel_seconds": round(self._kernel_seconds, 6),
            "phases": {name: {"count": self._phase_counts[name],
                              "seconds": round(seconds, 6)}
                       for name, seconds in sorted(self._phase_totals.items())},
            "counters": {name: round(value, 6)
                         for name, value in sorted(self._counter_totals.items())},
        }
        if self._rss_peak_kb:
            summary["rss_peak_mb"] = round(self._rss_peak_kb / 1024.0, 2)
        return summary

    def hot_kernels(self, top: int = 10) -> List[Dict[str, object]]:
        """The ``top`` most expensive kernel phases, by total seconds."""
        rows = [{"kernel": name,
                 "calls": self._phase_counts[name],
                 "total_seconds": round(seconds, 6),
                 "mean_ms": round(seconds / self._phase_counts[name] * 1e3, 4)}
                for name, seconds in self._phase_totals.items()]
        attributed = sum(self._phase_totals.values())
        remainder = self._kernel_seconds - attributed
        if self._rounds and remainder > 0:
            rows.append({"kernel": "(unattributed round time)",
                         "calls": self._rounds,
                         "total_seconds": round(remainder, 6),
                         "mean_ms": round(remainder / self._rounds * 1e3, 4)})
        rows.sort(key=lambda row: row["total_seconds"], reverse=True)
        return rows[:top]

    def to_chrome(self) -> Dict[str, object]:
        """The complete Chrome trace-event JSON object."""
        return {"traceEvents": list(self._events),
                "displayTimeUnit": "ms",
                "otherData": {"tracer": self._label, **self.summary()}}

    def write(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the Chrome trace JSON to ``path`` and return it."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_chrome()) + "\n")
        return path


# ---------------------------------------------------------------------- #
# summaries and store-record conversion
# ---------------------------------------------------------------------- #


def cell_trace_summary(captured: List[CapturedEvent]) -> Dict[str, object]:
    """Span summary of one cell's captured event stream (JSON friendly).

    This is what the run store keeps per record when a traced grid is stored
    (``RunRecord.timing["trace"]``): rounds, total kernel seconds, per-phase
    totals and the flow counters — enough for ``repro trace`` to rebuild a
    coarse profile from the store later.
    """
    rounds = 0
    kernel_seconds = 0.0
    phases: Dict[str, float] = {}
    counters: Dict[str, float] = {}
    recouplings = 0
    for event in captured:
        if event.kind == "round":
            rounds += 1
            kernel_seconds += float(event.payload.get("kernel_seconds", 0.0))
            for name, seconds in (event.payload.get("kernel_phases") or {}).items():
                phases[name] = phases.get(name, 0.0) + float(seconds)
            for key, track in _ROUND_COUNTERS:
                value = event.payload.get(key)
                if value is None:
                    continue
                if key == "dummy_tokens_total":
                    counters[track] = float(value)
                else:
                    counters[track] = counters.get(track, 0.0) + float(value)
        elif event.kind == "recouple":
            recouplings += 1
    summary: Dict[str, object] = {
        "events": len(captured),
        "rounds": rounds,
        "kernel_seconds": round(kernel_seconds, 6),
        "phases": {name: round(seconds, 6)
                   for name, seconds in sorted(phases.items())},
    }
    if counters:
        summary["counters"] = {name: round(value, 6)
                               for name, value in sorted(counters.items())}
    if recouplings:
        summary["recouplings"] = recouplings
    return summary


def chrome_from_records(records) -> Dict[str, object]:
    """Rebuild a coarse Chrome trace from stored run records.

    Each record becomes one cell span (pid = recorded worker pid, tid =
    record index), laid out sequentially per worker; a record whose timing
    envelope carries a ``"trace"`` span summary additionally gets its
    aggregate per-phase kernel spans nested inside the cell span.  The
    result is a profile of *where the recorded runs spent their time*, not a
    replay of exact timestamps (the store keeps summaries, not raw spans).
    """
    events: List[Dict[str, object]] = [
        {"ph": "M", "name": "process_name", "pid": 0, "tid": 0,
         "args": {"name": "store"}}]
    cursors: Dict[int, float] = {}
    seen_pids: set = set()
    for index, record in enumerate(records):
        timing = record.timing or {}
        seconds = float(timing.get("seconds", 0.0))
        pid = int(timing.get("worker_pid", 0))
        if pid not in seen_pids:
            seen_pids.add(pid)
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": f"worker {pid}"}})
        start = cursors.get(pid, 0.0)
        cursors[pid] = start + seconds
        events.append({
            "name": f"cell:{record.label}#{index}", "cat": "cell", "ph": "X",
            "ts": round(start * _US, 3), "dur": round(seconds * _US, 3),
            "pid": pid, "tid": index,
            "args": {"label": record.label, "kind": record.kind,
                     "config_hash": record.config_hash[:10],
                     "seeds": list(record.seeds)}})
        trace = timing.get("trace") or {}
        cursor = start
        for name, phase_seconds in (trace.get("phases") or {}).items():
            phase_seconds = float(phase_seconds)
            events.append({"name": name, "cat": "kernel", "ph": "X",
                           "ts": round(cursor * _US, 3),
                           "dur": round(phase_seconds * _US, 3),
                           "pid": pid, "tid": index})
            cursor += phase_seconds
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"records": len(list(records))}}


def hot_kernel_rows(records, top: int = 10) -> List[Dict[str, object]]:
    """Top-``top`` kernel phases aggregated across stored run records."""
    totals: Dict[str, float] = {}
    rounds_by_phase: Dict[str, int] = {}
    unattributed = 0.0
    total_rounds = 0
    for record in records:
        trace = (record.timing or {}).get("trace") or {}
        rounds = int(trace.get("rounds", 0))
        total_rounds += rounds
        attributed = 0.0
        for name, seconds in (trace.get("phases") or {}).items():
            totals[name] = totals.get(name, 0.0) + float(seconds)
            rounds_by_phase[name] = rounds_by_phase.get(name, 0) + rounds
            attributed += float(seconds)
        unattributed += max(0.0, float(trace.get("kernel_seconds", 0.0))
                            - attributed)
    rows = [{"kernel": name, "rounds": rounds_by_phase[name],
             "total_seconds": round(seconds, 6),
             "mean_ms": round(seconds / max(rounds_by_phase[name], 1) * 1e3, 4)}
            for name, seconds in totals.items()]
    if unattributed > 0 and total_rounds:
        rows.append({"kernel": "(unattributed round time)",
                     "rounds": total_rounds,
                     "total_seconds": round(unattributed, 6),
                     "mean_ms": round(unattributed / total_rounds * 1e3, 4)})
    rows.sort(key=lambda row: row["total_seconds"], reverse=True)
    return rows[:top]


def validate_chrome_trace(trace: Dict[str, object]) -> List[str]:
    """Sanity-check a Chrome trace object; returns a list of problems.

    Checks the shape CI gates on: a ``traceEvents`` list, every event with
    ``ph``/``pid``/``tid``, complete events with non-negative ``ts``/``dur``.
    An empty list means the trace is well-formed.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        if "ph" not in event:
            problems.append(f"event {index} has no phase ('ph')")
        if event.get("ph") == "M":
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"event {index} has no integer {key}")
        if event.get("ph") == "X":
            if not isinstance(event.get("ts"), (int, float)):
                problems.append(f"event {index} has no numeric ts")
            if not isinstance(event.get("dur"), (int, float)) \
                    or event.get("dur", 0) < 0:
                problems.append(f"event {index} has no non-negative dur")
    return problems
