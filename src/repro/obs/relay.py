"""Cross-process telemetry relay: worker-side capture, driver-side re-emit.

A :class:`~repro.obs.bus.MetricsBus` is synchronous and in-process, so the
sharded grid driver (:mod:`repro.simulation.parallel`) historically reported
only driver-side ``cell_done`` envelopes — every round, kernel and recouple
inside a pool worker went unrecorded.  This module closes that gap:

* each worker runs its cell against a **private** bus with a
  :class:`TelemetryRecorder` subscribed, freezing every event into a
  picklable :class:`CapturedEvent` (payload + monotonic capture timestamp);
* the captured stream rides back to the driver inside the cell's
  :class:`~repro.simulation.parallel.CellOutcome` — the pool's own result
  queue, so no spool files or extra queues are needed — and
  :func:`relay_outcome` re-publishes each event on the driver's main bus,
  tagged with ``(worker, cell, cell_seed)`` identity plus the worker-side
  ``ts``.

Because the workers execute exactly the serial per-cell functions and the
probes are read-only, the relayed stream is the serial stream *plus
attribution*: for any cell, the relayed events equal the events a serial run
of that cell emits, modulo the :data:`ATTRIBUTION_FIELDS` added by the relay
and the :data:`TIMING_FIELDS` that are wall-clock measurements (enforced for
worker counts 1/2/4 by ``tests/obs/test_relay.py``).  Use
:func:`event_signature` to compare streams under exactly that contract.

Capture timestamps use :func:`time.perf_counter`, which on Linux is the
system-wide monotonic clock — timestamps from different pool workers are
mutually comparable, which is what lets the Chrome trace exporter
(:mod:`repro.obs.trace`) lay worker pids out on one timeline.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .bus import MetricsBus, TelemetryEvent

__all__ = [
    "ATTRIBUTION_FIELDS",
    "TIMING_FIELDS",
    "CapturedEvent",
    "TelemetryRecorder",
    "relay_outcome",
    "event_signature",
]

#: Payload keys that identify where an event came from rather than what it
#: measured: the relay's own tags plus the ``cell_done`` envelope's
#: ``worker_pid``/``position`` scheduling metadata.
ATTRIBUTION_FIELDS = ("worker", "cell", "cell_seed", "ts",
                      "worker_pid", "position")

#: Payload keys that are wall-clock measurements and therefore vary run to
#: run even when the trajectory is bit-identical.
TIMING_FIELDS = ("kernel_seconds", "kernel_phases", "seconds", "started")


@dataclass(frozen=True)
class CapturedEvent:
    """One frozen, picklable telemetry event plus its capture timestamp.

    ``ts`` is the worker's :func:`time.perf_counter` at emission time.
    """

    ts: float
    kind: str
    source: str
    round_index: Optional[int]
    payload: Dict[str, object] = field(default_factory=dict)


class TelemetryRecorder:
    """A bus subscriber that freezes every event into a :class:`CapturedEvent`.

    Workers subscribe one of these to their private bus; the recorded list is
    the cell's complete, ordered telemetry stream.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.events: List[CapturedEvent] = []

    def __call__(self, event: TelemetryEvent) -> None:
        self.events.append(CapturedEvent(
            ts=self._clock(), kind=event.kind, source=event.source,
            round_index=event.round_index, payload=dict(event.payload)))


def relay_outcome(bus: Optional[MetricsBus], captured: List[CapturedEvent],
                  worker: int, cell: int, cell_seed: Optional[int]) -> int:
    """Re-publish one cell's captured events on the driver bus, attributed.

    Every event is re-emitted in capture order with ``worker`` (the pool
    worker's pid), ``cell`` (the cell's grid index), ``cell_seed`` and the
    worker-side ``ts`` added to the payload; original payload keys always
    win over attribution on a name collision.  Returns the number of events
    relayed (0 when the bus is absent or unobserved).
    """
    if bus is None or not bus.active or not captured:
        return 0
    for event in captured:
        payload = {"worker": worker, "cell": cell, "cell_seed": cell_seed,
                   "ts": event.ts}
        payload.update(event.payload)
        bus.publish(TelemetryEvent(kind=event.kind, source=event.source,
                                   round_index=event.round_index,
                                   payload=payload))
    return len(captured)


def event_signature(event, timing: bool = True) -> Tuple:
    """The comparable fingerprint of an event, minus relay attribution.

    Strips :data:`ATTRIBUTION_FIELDS` and — unless ``timing=False`` —
    :data:`TIMING_FIELDS` from the payload, so a relayed stream and a serial
    stream of the same cell compare equal exactly when they carry the same
    telemetry.  Accepts both :class:`~repro.obs.bus.TelemetryEvent` and
    :class:`CapturedEvent`.
    """
    dropped = set(ATTRIBUTION_FIELDS)
    if timing:
        dropped.update(TIMING_FIELDS)
    payload = tuple(sorted(
        (key, repr(value)) for key, value in event.payload.items()
        if key not in dropped))
    return (event.kind, event.source, event.round_index, payload)


def worker_pid() -> int:
    """The calling process's pid (the relay's worker identity)."""
    return os.getpid()
