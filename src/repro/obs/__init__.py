"""Observability: the telemetry bus and the per-round probes.

This package is the first of the three observability layers (bus → run store
→ regression reports; see ``README.md`` "Observability"):

* :class:`MetricsBus` — a synchronous in-process publish/subscribe hub for
  structured :class:`TelemetryEvent` records;
* :class:`RoundProbe` — attaches to any balancer and emits one ``"round"``
  event (discrepancy, kernel seconds, flow/dummy statistics) per executed
  round;
* :class:`EventLog` / :class:`ConsoleSubscriber` — ready-made subscribers for
  collecting and live-printing events;
* :class:`Tracer` (:mod:`repro.obs.trace`) — spans and counters out of the
  event stream, exported as Chrome trace-event JSON, with per-phase kernel
  timing from :mod:`repro.obs.kernels`;
* the cross-process relay (:mod:`repro.obs.relay`) — pool workers capture
  their private bus streams and the grid driver re-emits them attributed
  with ``(worker, cell, seed)``, so sharded grids are no longer
  telemetry-blind;
* :class:`GridProgress` (:mod:`repro.obs.progress`) — a live cells-done/ETA
  status line for long grids.

Every run entry point accepts an optional ``bus=`` keyword
(:func:`repro.simulation.engine.run_algorithm`,
:func:`repro.dynamic.stream.run_stream`,
:func:`repro.simulation.sweep.run_sweep_cell`,
:func:`repro.simulation.parallel.run_cells`).  Instrumentation is strictly
read-only — trajectories are bit-identical with and without a subscriber —
and unobserved runs pay a single attribute check per round.
"""

from .bus import EventLog, MetricsBus, TelemetryEvent
from .console import ConsoleSubscriber
from .kernels import KernelClock, kernel_phase
from .probe import RoundProbe
from .progress import GridProgress
from .relay import (CapturedEvent, TelemetryRecorder, event_signature,
                    relay_outcome)
from .trace import Tracer, cell_trace_summary, validate_chrome_trace

__all__ = [
    "MetricsBus",
    "TelemetryEvent",
    "EventLog",
    "RoundProbe",
    "ConsoleSubscriber",
    "Tracer",
    "cell_trace_summary",
    "validate_chrome_trace",
    "KernelClock",
    "kernel_phase",
    "GridProgress",
    "CapturedEvent",
    "TelemetryRecorder",
    "relay_outcome",
    "event_signature",
]
