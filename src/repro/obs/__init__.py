"""Observability: the telemetry bus and the per-round probes.

This package is the first of the three observability layers (bus → run store
→ regression reports; see ``README.md`` "Observability"):

* :class:`MetricsBus` — a synchronous in-process publish/subscribe hub for
  structured :class:`TelemetryEvent` records;
* :class:`RoundProbe` — attaches to any balancer and emits one ``"round"``
  event (discrepancy, kernel seconds, flow/dummy statistics) per executed
  round;
* :class:`EventLog` / :class:`ConsoleSubscriber` — ready-made subscribers for
  collecting and live-printing events.

Every run entry point accepts an optional ``bus=`` keyword
(:func:`repro.simulation.engine.run_algorithm`,
:func:`repro.dynamic.stream.run_stream`,
:func:`repro.simulation.sweep.run_sweep_cell`,
:func:`repro.simulation.parallel.run_cells`).  Instrumentation is strictly
read-only — trajectories are bit-identical with and without a subscriber —
and unobserved runs pay a single attribute check per round.
"""

from .bus import EventLog, MetricsBus, TelemetryEvent
from .console import ConsoleSubscriber
from .probe import RoundProbe

__all__ = [
    "MetricsBus",
    "TelemetryEvent",
    "EventLog",
    "RoundProbe",
    "ConsoleSubscriber",
]
