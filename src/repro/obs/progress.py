"""Live grid progress: a ``cell_done`` subscriber that renders a status line.

Long sharded grids (:mod:`repro.simulation.parallel`) otherwise run silent
until the pool drains.  :class:`GridProgress` subscribes to the driver bus's
``cell_done`` envelopes and keeps a single status line current::

    [grid] 17/64 cells · 26.6% · elapsed 12.4s · eta 34.3s · 4 workers busy 46.1s

On a TTY the line redraws in place (``\\r``); piped or captured output gets
one flushed line per update instead, so CI logs and ``tee`` stay readable.
:meth:`finish` prints a final utilization summary built from
:func:`repro.simulation.parallel.timing_summary`'s wall-clock fields.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional, TextIO

from .bus import TelemetryEvent

__all__ = ["GridProgress"]


class GridProgress:
    """Render cells-done / ETA / per-worker busy seconds from ``cell_done``.

    Subscribe it to the driver bus (``bus.subscribe(progress)``) before
    running a grid, or pass it as ``progress=`` to
    :func:`repro.simulation.parallel.run_cells`, which invokes it directly in
    completion order.
    """

    def __init__(self, total: int, label: str = "grid",
                 stream: Optional[TextIO] = None,
                 clock=time.perf_counter) -> None:
        self.total = int(total)
        self.label = label
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._started = clock()
        self.done = 0
        self.retries = 0
        self.failed = 0
        self.busy_by_worker: Dict[int, float] = {}
        self._is_tty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._line_open = False

    # ------------------------------------------------------------------ #

    def __call__(self, event: TelemetryEvent) -> None:
        if event.kind == "cell_retry":
            self.note_retry()
        elif event.kind == "cell_failed":
            self.note_failure()
        if event.kind != "cell_done":
            return
        self.update(worker_pid=event.payload.get("worker_pid"),
                    seconds=float(event.payload.get("seconds", 0.0)))

    def update(self, worker_pid: Optional[int] = None,
               seconds: float = 0.0) -> None:
        """Record one finished cell and redraw the status line.

        ``seconds`` is the cell's successful-attempt wall-clock only — the
        fault-tolerant driver reports wasted retry attempts via
        :meth:`note_retry`, so busy-seconds never double-count a cell.
        """
        self.done += 1
        if worker_pid is not None:
            pid = int(worker_pid)
            self.busy_by_worker[pid] = self.busy_by_worker.get(pid, 0.0) + seconds
        self._render()

    def note_retry(self) -> None:
        """Record one failed-and-requeued attempt (drawn as ``N retries``)."""
        self.retries += 1
        self._render()

    def note_failure(self) -> None:
        """Record one permanently failed cell: it is done, but failed."""
        self.done += 1
        self.failed += 1
        self._render()

    # ------------------------------------------------------------------ #

    @property
    def elapsed(self) -> float:
        return self._clock() - self._started

    @property
    def eta_seconds(self) -> Optional[float]:
        """Projected seconds remaining, from the mean per-cell rate so far."""
        if not self.done or self.done >= self.total:
            return None
        return self.elapsed / self.done * (self.total - self.done)

    def status_line(self) -> str:
        parts = [f"[{self.label}] {self.done}/{self.total} cells"]
        if self.total:
            parts.append(f"{self.done / self.total * 100.0:.1f}%")
        parts.append(f"elapsed {self.elapsed:.1f}s")
        eta = self.eta_seconds
        if eta is not None:
            parts.append(f"eta {eta:.1f}s")
        if self.busy_by_worker:
            busy = sum(self.busy_by_worker.values())
            parts.append(f"{len(self.busy_by_worker)} workers busy {busy:.1f}s")
        if self.retries:
            parts.append(f"{self.retries} retries")
        if self.failed:
            parts.append(f"{self.failed} failed")
        return " · ".join(parts)

    def _render(self) -> None:
        line = self.status_line()
        if self._is_tty:
            self._stream.write("\r\x1b[2K" + line)
            self._line_open = True
        else:
            self._stream.write(line + "\n")
        self._stream.flush()

    def finish(self) -> str:
        """Close the live line and print the utilization summary; returns it."""
        wall = self.elapsed
        busy = sum(self.busy_by_worker.values())
        workers = max(len(self.busy_by_worker), 1)
        utilization = busy / (wall * workers) if wall > 0 else 0.0
        summary = (f"[{self.label}] {self.done}/{self.total} cells in "
                   f"{wall:.1f}s wall · busy {busy:.1f}s across {workers} "
                   f"worker(s) · utilization {utilization * 100.0:.0f}%")
        if self.retries:
            summary += f" · {self.retries} retries"
        if self.failed:
            summary += f" · {self.failed} cells failed"
        if self._line_open:
            self._stream.write("\n")
            self._line_open = False
        self._stream.write(summary + "\n")
        self._stream.flush()
        return summary
