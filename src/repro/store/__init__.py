"""Experiment run store: append-only JSONL records plus regression reports.

Layer two and three of the observability subsystem (:mod:`repro.obs` is
layer one).  :mod:`repro.store.runstore` persists runs — configuration hash,
seeds, environment fingerprint, git revision, full result (trajectories
included) and timing envelope — as one JSONL line each;
:mod:`repro.store.report` renders cross-run comparison tables / trace charts
and gates CI on drift via :func:`check_store_regression`;
:mod:`repro.store.benchwriter` is the shared writer the
``benchmarks/bench_*.py`` scripts use for their ``BENCH_*.json`` records.
"""

from .benchwriter import benchmark_payload, write_benchmark_record
from .report import (
    RegressionOutcome,
    RegressionViolation,
    check_regression,
    check_store_regression,
    comparison_rows,
    diff_rows,
    render_comparison,
)
from .runstore import (
    RunRecord,
    RunStore,
    canonical_json,
    config_hash,
    env_fingerprint,
    git_revision,
    record_run,
    record_sweep_outcomes,
    result_payload,
)

__all__ = [
    "RunRecord",
    "RunStore",
    "canonical_json",
    "config_hash",
    "env_fingerprint",
    "git_revision",
    "record_run",
    "record_sweep_outcomes",
    "result_payload",
    "benchmark_payload",
    "write_benchmark_record",
    "RegressionOutcome",
    "RegressionViolation",
    "check_regression",
    "check_store_regression",
    "comparison_rows",
    "diff_rows",
    "render_comparison",
]
