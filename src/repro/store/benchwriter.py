"""Shared writer for benchmark records: one code path, two artefacts.

Every ``benchmarks/bench_*.py`` script used to hand-roll its own
``json.dumps`` payload.  :func:`write_benchmark_record` centralises that: it
writes the human-diffable ``BENCH_<name>.json`` file in the historical format
(``benchmark`` / ``description`` / ``python`` / ``numpy`` / ``rows``) and —
when given a store path — appends the same rows to the append-only run store
as a ``kind="benchmark"`` :class:`~repro.store.runstore.RunRecord`, so
benchmark timings become diffable across commits with ``repro report`` just
like engine runs.
"""

from __future__ import annotations

import json
import pathlib
import platform
from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

from .runstore import RunStore, _jsonify, record_run

__all__ = ["benchmark_payload", "write_benchmark_record"]

PathLike = Union[str, pathlib.Path]


def benchmark_payload(name: str, description: str,
                      rows: Sequence[Dict[str, object]],
                      extra: Optional[Dict[str, object]] = None) -> Dict[str, object]:
    """The historical ``BENCH_*.json`` payload shape, numpy-safe.

    ``extra`` merges additional top-level keys (e.g. a scaling benchmark's
    ``cpus`` / ``cell_seconds``) between the interpreter stamp and ``rows``.
    """
    payload = {
        "benchmark": name,
        "description": description,
        "python": platform.python_version(),
        "numpy": np.__version__,
    }
    if extra:
        payload.update(_jsonify(extra))
    payload["rows"] = _jsonify(list(rows))
    return payload


def write_benchmark_record(name: str, description: str,
                           rows: Sequence[Dict[str, object]],
                           path: PathLike,
                           store: Optional[PathLike] = None,
                           config: Optional[Dict[str, object]] = None,
                           seeds: Iterable[int] = (),
                           extra: Optional[Dict[str, object]] = None) -> pathlib.Path:
    """Write ``BENCH_*.json`` and optionally append to a run store.

    Parameters
    ----------
    name / description / rows:
        The benchmark identity and its result table.
    path:
        Where the ``BENCH_*.json`` record goes (the checked-in perf record).
    store:
        Optional run-store path; when given, the rows are additionally
        appended as one ``kind="benchmark"`` record whose timing envelope
        holds the row table.
    config:
        The benchmark's configuration knobs (sizes, suites, seeds) — what
        makes two benchmark records comparable.  Defaults to ``{"benchmark":
        name}``.
    seeds:
        Seeds the benchmark ran with, if any.
    extra:
        Additional top-level payload keys (see :func:`benchmark_payload`).
    """
    payload = benchmark_payload(name, description, rows, extra=extra)
    path = pathlib.Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    if store is not None:
        record_run(
            RunStore(store), label=name, kind="benchmark",
            config={"benchmark": name, **(config or {})},
            seeds=seeds, result=None,
            timing={"rows": payload["rows"]},
        )
    return path
