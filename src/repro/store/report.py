"""Cross-run comparison tables and the regression instrument.

This is layer three of the observability subsystem: given
:class:`~repro.store.runstore.RunRecord` entries (from one store or two), it
renders side-by-side comparison tables and sparkline trace charts
(re-using :mod:`repro.simulation.reporting`), and — the CI teeth —
:func:`check_store_regression` decides whether a candidate store has drifted
from a stored baseline:

* **trajectory drift** — pointwise deviation of the stored max-min traces
  beyond ``max_trace_drift``.  Under ``rng_mode="counter"`` trajectories are
  bit-exact across processes and machines, so the default tolerance is 0.0:
  any drift means the algorithms changed behaviour.
* **metric drift** — the final discrepancies worsened by more than
  ``max_metric_drift``.
* **timing regression** — the run's wall-clock grew beyond
  ``max_timing_ratio`` × baseline.  Timings are machine-dependent, so this
  check is opt-in and should be used with generous ratios (or on matched
  hardware, e.g. a CI baseline recorded on the same runner class).
* **coverage** — every baseline record must have a comparable candidate
  (same ``config_hash``); a silently-vanished configuration is a regression
  of the experiment, not a pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..exceptions import ExperimentError
from ..simulation.reporting import trace_chart
from .runstore import RunRecord

__all__ = [
    "comparison_rows",
    "diff_rows",
    "render_comparison",
    "RegressionViolation",
    "RegressionOutcome",
    "check_regression",
    "check_store_regression",
]

#: The result metrics a diff/regression pass looks at (lower is better).
_HEADLINE_METRICS = ("final_max_min", "final_max_avg", "rounds", "dummy_tokens")


def _timing_seconds(record: RunRecord) -> Optional[float]:
    seconds = record.timing.get("seconds")
    return None if seconds is None else float(seconds)


def comparison_rows(records: Sequence[RunRecord]) -> List[Dict[str, object]]:
    """Flatten records into table rows (one per record, store order)."""
    if not records:
        raise ExperimentError("no run records to compare")
    rows = []
    for index, record in enumerate(records):
        row: Dict[str, object] = {
            "idx": f"#{index}",
            "label": record.label,
            "kind": record.kind,
            "hash": record.config_hash[:10],
            "algorithm": record.config.get("algorithm", "-"),
            "seeds": ",".join(str(seed) for seed in record.seeds) or "-",
            "max_min": record.metric("final_max_min", "-"),
            "max_avg": record.metric("final_max_avg", "-"),
            "rounds": record.metric("rounds", "-"),
            "seconds": _timing_seconds(record) or "-",
            "git": (record.git_rev or "-")[:10],
            "created": record.created,
        }
        rows.append(row)
    return rows


def diff_rows(baseline: RunRecord, candidate: RunRecord) -> List[Dict[str, object]]:
    """Per-metric baseline/candidate/delta rows for two records."""
    rows = []
    for metric in _HEADLINE_METRICS:
        base = baseline.metric(metric)
        cand = candidate.metric(metric)
        comparable = (isinstance(base, (int, float))
                      and isinstance(cand, (int, float)))
        delta = (cand - base) if comparable else None
        rows.append({"metric": metric,
                     "baseline": "-" if base is None else base,
                     "candidate": "-" if cand is None else cand,
                     "delta": "-" if delta is None else round(delta, 6)})
    base_seconds, cand_seconds = _timing_seconds(baseline), _timing_seconds(candidate)
    if base_seconds is not None and cand_seconds is not None:
        rows.append({"metric": "seconds", "baseline": round(base_seconds, 4),
                     "candidate": round(cand_seconds, 4),
                     "delta": round(cand_seconds - base_seconds, 4)})
    return rows


def render_comparison(records: Sequence[RunRecord], width: int = 60) -> str:
    """Sparkline trace chart of every record that stored a trajectory."""
    traces = {}
    for index, record in enumerate(records):
        trace = record.trace()
        if trace:
            traces[f"#{index} {record.label}"] = trace
    if not traces:
        return "(no stored trajectories to chart)"
    return trace_chart(traces, width=width,
                      title="max-min discrepancy per round")


@dataclass(frozen=True)
class RegressionViolation:
    """One way the candidate drifted from the baseline."""

    check: str
    baseline_label: str
    detail: str
    baseline_value: Optional[float] = None
    candidate_value: Optional[float] = None

    def as_row(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "baseline": self.baseline_label,
            "base_value": "-" if self.baseline_value is None else self.baseline_value,
            "cand_value": "-" if self.candidate_value is None else self.candidate_value,
            "detail": self.detail,
        }


@dataclass
class RegressionOutcome:
    """Aggregate verdict of a regression pass."""

    pairs_checked: int = 0
    violations: List[RegressionViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the candidate passed every check."""
        return self.pairs_checked > 0 and not self.violations

    def summary(self) -> str:
        if self.pairs_checked == 0:
            return "regression check: no comparable record pairs found"
        status = ("PASS" if self.ok
                  else f"FAIL ({len(self.violations)} violation(s))")
        return f"regression check over {self.pairs_checked} pair(s): {status}"


def check_regression(baseline: RunRecord, candidate: RunRecord,
                     max_metric_drift: float = 0.0,
                     max_trace_drift: float = 0.0,
                     max_timing_ratio: Optional[float] = None,
                     require_config_match: bool = True,
                     outcome: Optional[RegressionOutcome] = None) -> RegressionOutcome:
    """Compare one candidate record against one baseline record.

    Returns (and, if given, extends) a :class:`RegressionOutcome`.  All
    drift thresholds are "worsening" thresholds: a candidate that is *better*
    than the baseline never trips the metric checks, and trace drift is
    measured as absolute pointwise deviation.
    """
    result = outcome if outcome is not None else RegressionOutcome()
    result.pairs_checked += 1
    label = baseline.label

    if require_config_match and baseline.config_hash != candidate.config_hash:
        result.violations.append(RegressionViolation(
            "config-hash", label,
            f"baseline {baseline.config_hash[:10]} vs candidate "
            f"{candidate.config_hash[:10]} — not the same experiment"))
        return result

    for metric in ("final_max_min", "final_max_avg"):
        base = baseline.metric(metric)
        cand = candidate.metric(metric)
        if isinstance(base, (int, float)) and isinstance(cand, (int, float)):
            drift = cand - base
            if drift > max_metric_drift:
                result.violations.append(RegressionViolation(
                    metric, label,
                    f"{metric} worsened by {drift:g} "
                    f"(allowed {max_metric_drift:g})",
                    baseline_value=float(base), candidate_value=float(cand)))

    base_trace, cand_trace = baseline.trace(), candidate.trace()
    if base_trace and cand_trace:
        if len(base_trace) != len(cand_trace):
            result.violations.append(RegressionViolation(
                "trace-length", label,
                f"trajectory length changed: {len(base_trace)} -> {len(cand_trace)}",
                baseline_value=float(len(base_trace)),
                candidate_value=float(len(cand_trace))))
        else:
            worst = max((abs(c - b) for b, c in zip(base_trace, cand_trace)),
                        default=0.0)
            if worst > max_trace_drift:
                round_idx = max(range(len(base_trace)),
                                key=lambda i: abs(cand_trace[i] - base_trace[i]))
                result.violations.append(RegressionViolation(
                    "trace-drift", label,
                    f"max pointwise trajectory deviation {worst:g} at round "
                    f"{round_idx} (allowed {max_trace_drift:g})",
                    baseline_value=float(base_trace[round_idx]),
                    candidate_value=float(cand_trace[round_idx])))

    if max_timing_ratio is not None:
        base_seconds = _timing_seconds(baseline)
        cand_seconds = _timing_seconds(candidate)
        if base_seconds and cand_seconds and base_seconds > 0:
            ratio = cand_seconds / base_seconds
            if ratio > max_timing_ratio:
                result.violations.append(RegressionViolation(
                    "timing", label,
                    f"run took {ratio:.2f}x the baseline wall-clock "
                    f"(allowed {max_timing_ratio:g}x)",
                    baseline_value=base_seconds, candidate_value=cand_seconds))

    return result


def check_store_regression(baseline_records: Sequence[RunRecord],
                           candidate_records: Sequence[RunRecord],
                           max_metric_drift: float = 0.0,
                           max_trace_drift: float = 0.0,
                           max_timing_ratio: Optional[float] = None) -> RegressionOutcome:
    """Gate a candidate store against a baseline store.

    Every baseline record that carries a result must have at least one
    candidate record with the same ``config_hash`` (the latest such record
    is compared); baseline records nobody re-ran are coverage violations.
    Benchmark-only records (no stored result) are compared by timing alone
    when ``max_timing_ratio`` is set, and skipped otherwise.
    """
    outcome = RegressionOutcome()
    for baseline in baseline_records:
        if baseline.result is None and max_timing_ratio is None:
            continue
        matches = [record for record in candidate_records
                   if record.config_hash == baseline.config_hash]
        if not matches:
            outcome.violations.append(RegressionViolation(
                "coverage", baseline.label,
                f"no candidate record for config {baseline.config_hash[:10]} "
                f"(label {baseline.label!r})"))
            continue
        check_regression(baseline, matches[-1],
                         max_metric_drift=max_metric_drift,
                         max_trace_drift=max_trace_drift,
                         max_timing_ratio=max_timing_ratio,
                         outcome=outcome)
    return outcome
