"""Append-only JSONL experiment store: every run becomes a diffable record.

A :class:`RunStore` is a single JSON-Lines file; each line is one
:class:`RunRecord`: the run's configuration and its canonical hash, the seeds
used, an environment fingerprint, the git revision, the full
:class:`~repro.simulation.results.RunResult` (including trajectories) and a
timing envelope.  Append-only and newline-delimited means records from
different commits, machines and CI runs concatenate trivially, and the
``repro report`` subcommand (:mod:`repro.store.report`) can diff any two of
them — or gate CI on the drift between a stored baseline and a fresh run.

Identity model
--------------
``config_hash`` is the SHA-256 of the *canonical JSON* of the configuration
(sorted keys, no whitespace), so two runs are comparable iff their hashes
match — regardless of dict ordering, process, machine or commit.  The seeds
are part of the configuration: with ``rng_mode="counter"`` a (config, seeds)
pair pins the entire trajectory bit-for-bit (see
``tests/store/test_determinism.py``), which is what turns stored trajectories
into exact regression oracles rather than noisy statistics.

The environment fingerprint and timestamps are deliberately *excluded* from
the hash: they describe where a run happened, not what it computed.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import platform
import subprocess
import time
import warnings
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from ..exceptions import ExperimentError
from ..simulation.results import RunResult

__all__ = [
    "RunRecord",
    "RunStore",
    "config_hash",
    "canonical_json",
    "env_fingerprint",
    "git_revision",
    "result_payload",
    "record_run",
    "record_sweep_outcomes",
]

PathLike = Union[str, pathlib.Path]


def _jsonify(value):
    """Recursively convert numpy scalars/arrays so ``json.dumps`` succeeds."""
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, np.ndarray):
        return [_jsonify(item) for item in value.tolist()]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def canonical_json(value) -> str:
    """Canonical JSON text: sorted keys, compact separators, numpy-safe."""
    return json.dumps(_jsonify(value), sort_keys=True, separators=(",", ":"))


def config_hash(config: Dict[str, object]) -> str:
    """SHA-256 of the canonical JSON of ``config`` (order-insensitive)."""
    return hashlib.sha256(canonical_json(config).encode("utf-8")).hexdigest()


def env_fingerprint() -> Dict[str, object]:
    """Where a run executed: interpreter, numpy, platform (not hashed)."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def git_revision(root: Optional[PathLike] = None) -> Optional[str]:
    """The current git commit hash, or ``None`` outside a repository."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=None if root is None else str(root),
            capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return None
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else None


def result_payload(result: RunResult) -> Dict[str, object]:
    """The full JSON-friendly view of a result (traces and timeline included).

    Unlike :meth:`RunResult.as_dict` — a *flat* table row — this keeps the
    structure: trajectories stay lists, ``extra`` stays nested, nothing is
    dropped.  The store needs the whole thing to diff trajectories later.
    """
    return _jsonify(asdict(result))


@dataclass
class RunRecord:
    """One stored run: configuration identity plus everything it produced.

    Attributes
    ----------
    label:
        Free-form name chosen by whoever recorded the run (e.g. ``"ci-gate"``
        or a benchmark name); the handle ``repro report`` selects by.
    kind:
        What produced it: ``"engine"``, ``"sweep"``, ``"dynamic"``,
        ``"benchmark"`` — or anything else a caller finds descriptive.
    config:
        The JSON-friendly configuration (algorithm, topology, sizes, rng
        mode, **seeds** — everything that determines the trajectory).
    config_hash:
        :func:`config_hash` of ``config``; filled in automatically.
    seeds:
        The seeds used (also inside ``config``; surfaced for tables).
    env / git_rev / created:
        Provenance: environment fingerprint, commit hash, ISO-8601 UTC
        timestamp.  Excluded from ``config_hash``.
    result:
        :func:`result_payload` of the run's :class:`RunResult` (may be
        ``None`` for pure-benchmark records that only carry ``timing``).
    timing:
        The timing envelope: at least ``seconds`` (in-worker wall-clock)
        when known; benchmark records put their row tables here.
    """

    label: str
    kind: str
    config: Dict[str, object]
    config_hash: str = ""
    seeds: List[int] = field(default_factory=list)
    env: Dict[str, object] = field(default_factory=env_fingerprint)
    git_rev: Optional[str] = None
    created: str = ""
    result: Optional[Dict[str, object]] = None
    timing: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.config_hash:
            self.config_hash = config_hash(self.config)
        if not self.created:
            self.created = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())

    def as_line(self) -> str:
        """Serialise to one JSONL line."""
        return canonical_json(asdict(self))

    @classmethod
    def from_line(cls, line: str) -> "RunRecord":
        data = json.loads(line)
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ExperimentError(
                f"unknown run-record fields {sorted(unknown)} — "
                f"written by a newer version?")
        return cls(**data)

    def trace(self) -> Optional[List[float]]:
        """The stored max-min trajectory, if the run recorded one."""
        if not self.result:
            return None
        trace = self.result.get("trace_max_min")
        return None if trace is None else list(trace)

    def metric(self, name: str, default=None):
        """A top-level metric of the stored result (e.g. ``"final_max_min"``)."""
        if not self.result:
            return default
        return self.result.get(name, default)


class RunStore:
    """An append-only JSONL file of :class:`RunRecord` lines.

    The file is created lazily on the first append; reads of a missing store
    raise (a regression gate pointed at a non-existent baseline should fail
    loudly, not pass vacuously).
    """

    def __init__(self, path: PathLike) -> None:
        self._path = pathlib.Path(path)

    @property
    def path(self) -> pathlib.Path:
        """Location of the store file."""
        return self._path

    def exists(self) -> bool:
        """Whether the store file exists on disk."""
        return self._path.exists()

    def append(self, record: RunRecord) -> RunRecord:
        """Append one record (creating parent directories) and return it.

        The line is flushed and ``fsync``'d before the file closes, so a
        crash immediately after :meth:`append` returns cannot lose the
        record, and a crash *during* the append can at worst leave one
        truncated trailing line — which :meth:`records` tolerates.
        """
        self._path.parent.mkdir(parents=True, exist_ok=True)
        with self._path.open("a") as handle:
            handle.write(record.as_line() + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return record

    def records(self) -> List[RunRecord]:
        """All records, in append order.

        A *truncated* final line — unparseable JSON with no trailing
        newline, the signature of an append cut off mid-write by a crash —
        is skipped with a :class:`UserWarning`; the completed records before
        it stay readable.  Any other corruption (a garbage line that *was*
        newline-terminated, or damage mid-file) still raises: that means
        something worse than a torn write, and a regression gate must not
        silently run against it.
        """
        if not self._path.exists():
            raise ExperimentError(f"no such run store: {self._path}")
        text = self._path.read_text()
        truncated_tail = bool(text) and not text.endswith("\n")
        records = []
        numbered = [(number, line.strip())
                    for number, line in enumerate(text.splitlines(), start=1)
                    if line.strip()]
        for position, (number, line) in enumerate(numbered):
            try:
                records.append(RunRecord.from_line(line))
            except (json.JSONDecodeError, TypeError) as exc:
                if truncated_tail and position == len(numbered) - 1 \
                        and isinstance(exc, json.JSONDecodeError):
                    warnings.warn(
                        f"{self._path}:{number}: skipping truncated trailing "
                        f"record (interrupted append?)", stacklevel=2)
                    break
                raise ExperimentError(
                    f"{self._path}:{number}: corrupt run-store line ({exc})"
                ) from exc
        return records

    def select(self, selector: Optional[str] = None,
               records: Optional[Sequence[RunRecord]] = None) -> RunRecord:
        """Pick one record: by label (latest match), ``#index``, or hash prefix.

        ``None`` / ``"latest"`` returns the newest record.  ``"#3"`` is the
        fourth appended record.  Any other string matches first as an exact
        label (latest wins — a re-recorded label supersedes its past), then
        as a ``config_hash`` prefix.
        """
        pool = list(records) if records is not None else self.records()
        if not pool:
            raise ExperimentError(f"run store {self._path} is empty")
        if selector is None or selector == "latest":
            return pool[-1]
        if selector.startswith("#"):
            try:
                return pool[int(selector[1:])]
            except (ValueError, IndexError) as exc:
                raise ExperimentError(
                    f"bad record index {selector!r} (store has {len(pool)} records)"
                ) from exc
        labelled = [record for record in pool if record.label == selector]
        if labelled:
            return labelled[-1]
        hashed = [record for record in pool
                  if record.config_hash.startswith(selector)]
        if len(hashed) == 1:
            return hashed[0]
        if len(hashed) > 1:
            raise ExperimentError(
                f"hash prefix {selector!r} is ambiguous ({len(hashed)} matches)")
        raise ExperimentError(
            f"no record with label or hash prefix {selector!r} in {self._path}")


def record_run(store: RunStore, label: str, kind: str,
               config: Dict[str, object], seeds: Iterable[int],
               result: Optional[RunResult] = None,
               timing: Optional[Dict[str, object]] = None,
               git_root: Optional[PathLike] = None) -> RunRecord:
    """Build and append one record for a finished run (the common case)."""
    record = RunRecord(
        label=label, kind=kind, config=_jsonify(config),
        seeds=[int(seed) for seed in seeds],
        git_rev=git_revision(git_root),
        result=None if result is None else result_payload(result),
        timing=_jsonify(timing or {}),
    )
    return store.append(record)


def record_sweep_outcomes(store: RunStore, label: str, outcomes,
                          git_root: Optional[PathLike] = None) -> List[RunRecord]:
    """Append one record per finished sweep cell (``CellOutcome`` envelopes).

    The configuration stored for each cell is the sweep spec plus the seed
    and seeding mode — exactly the pure-function inputs of
    :func:`~repro.simulation.sweep.run_sweep_cell` — so identical cells from
    any process or commit hash identically.

    An outcome that carries a captured telemetry stream (a traced grid; see
    :mod:`repro.obs.relay`) additionally stores its span summary — rounds,
    kernel seconds, per-phase totals, flow counters — under
    ``timing["trace"]``, which is what the ``trace`` CLI subcommand reads
    back for hot-kernel tables and stored-trace conversion.
    """
    records = []
    for outcome in outcomes:
        cell = outcome.cell
        config = {**asdict(cell.spec), "seed": cell.seed,
                  "legacy_seeding": cell.legacy_seeding, "kind": cell.kind}
        timing = {"seconds": outcome.seconds, "worker_pid": outcome.worker_pid}
        if getattr(outcome, "attempts", 1) > 1:
            timing["attempts"] = outcome.attempts
            timing["retry_seconds"] = outcome.retry_seconds
        failure = getattr(outcome, "failure", None)
        if failure is not None:
            timing["failure"] = asdict(failure)
        if getattr(outcome, "events", None):
            from ..obs.trace import cell_trace_summary

            timing["trace"] = cell_trace_summary(outcome.events)
        records.append(record_run(
            store, label, cell.kind, config,
            seeds=[] if cell.seed is None else [cell.seed],
            result=outcome.result,
            timing=timing,
            git_root=git_root,
        ))
    return records
