"""Counter-based (Philox) randomness shared by every ``rng_mode="counter"`` process.

The default ``"sequential"`` rng mode draws from one shared ``numpy``
generator whose stream advances with every draw, so the value an edge or a
node receives depends on how many draws were consumed before it — the
trajectory is tied to the iteration order and cannot be batched.  The
``"counter"`` mode replaces the shared stream with a *counter-based*
generator (Philox4x64) keyed on ``(seed, round)``: the draw of entity ``k``
in round ``t`` is entry ``k`` of the per-round score block, a pure function
of ``(seed, round, k)``.  Draws are therefore **order-free** — iterating the
entities in any order, or computing all of them at once in a vectorised
kernel, yields bit-identical values — which is what makes the array kernels
in :mod:`repro.backend` possible and what keeps trajectories replayable
across sharded or asynchronous drivers.

Three keying schemes share this module:

* **per-node** rows — :class:`~repro.discrete.baselines.diffusion.ExcessTokenDiffusion`
  scores the candidates of node ``i`` with row ``i`` of an
  ``(n, max_degree + 1)`` block;
* **per-edge** entries — Algorithm 2
  (:class:`~repro.core.algorithm2.RandomizedFlowImitation`) and
  :class:`~repro.discrete.baselines.diffusion.RandomizedRoundingDiffusion`
  round edge ``e`` with entry ``e`` of a length-``m`` block
  (:func:`edge_scores`);
* a reserved stream (:data:`OFFSET_STREAM`) for one-off draws such as the
  round-robin starting offsets (round indices never reach it).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "RNG_MODES",
    "OFFSET_STREAM",
    "validate_rng_mode",
    "philox_generator",
    "normalize_counter_seed",
    "edge_scores",
]

#: Valid values of every ``rng_mode=`` parameter.
RNG_MODES = ("sequential", "counter")


def validate_rng_mode(rng_mode: str, error: type = None) -> str:
    """Return ``rng_mode`` or raise ``error`` (default: ``ProcessError``).

    The single validation shared by every process and the engine, so the
    accepted modes cannot diverge between entry points.
    """
    if rng_mode not in RNG_MODES:
        if error is None:
            from .exceptions import ProcessError as error
        raise error(f"unknown rng mode {rng_mode!r}; valid: {RNG_MODES}")
    return rng_mode

_MASK64 = (1 << 64) - 1

#: Philox stream id reserved for one-off draws (rounds never reach it).
OFFSET_STREAM = _MASK64


def philox_generator(key: int, stream: int) -> np.random.Generator:
    """A counter-based generator keyed on ``(key, stream)`` (Philox4x64)."""
    words = np.array([key & _MASK64, stream & _MASK64], dtype=np.uint64)
    return np.random.Generator(np.random.Philox(key=words))


def normalize_counter_seed(seed: Optional[int]) -> int:
    """The integer Philox key for ``seed`` (a fresh random key for ``None``)."""
    if seed is None:
        return int(np.random.default_rng().integers(1 << 63))
    return int(seed)


def edge_scores(key: int, round_index: int, num_edges: int) -> np.ndarray:
    """The per-round uniform score of every edge.

    Entry ``e`` is a pure function of ``(key, round_index, e)`` — the
    edge-keyed counter-RNG contract: scalar references that look entries up
    one edge at a time (in any order) and vectorised kernels that fancy-index
    the whole block consume bit-identical values.
    """
    return philox_generator(key, round_index).random(num_edges)
