"""Exception hierarchy for the :mod:`repro` load balancing library.

All library-specific errors derive from :class:`ReproError` so that callers
can distinguish configuration or modelling errors raised by this package from
generic Python exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class NetworkError(ReproError):
    """Raised when a network (graph/speed) specification is invalid."""


class TopologyError(NetworkError):
    """Raised when a topology generator receives unsupported parameters."""


class TaskError(ReproError):
    """Raised when a task or a task assignment is invalid."""


class ProcessError(ReproError):
    """Raised when a balancing process is misconfigured or misused."""


class NegativeLoadError(ProcessError):
    """Raised when a continuous process would create negative load.

    The flow-imitation framework (Algorithms 1 and 2 of the paper) requires
    the underlying continuous process not to induce negative load on the
    initial load vector (Definition 1).  Processes raise this error when the
    condition is violated and the caller asked for strict checking.
    """


class ConvergenceError(ProcessError):
    """Raised when a process fails to converge within the allowed rounds."""


class ScheduleError(ProcessError):
    """Raised when a matching schedule is invalid (e.g. not a matching)."""


class ExperimentError(ReproError):
    """Raised when an experiment or benchmark configuration is invalid."""


class CheckpointError(ExperimentError):
    """Raised when a stream checkpoint cannot be written, read or restored.

    Covers truncated or corrupt checkpoint files, format-version mismatches,
    configuration-hash mismatches (the checkpoint describes a different run
    than the one being resumed) and post-restore integrity failures.
    """


class FaultInjected(ReproError):
    """Raised by the fault-injection harness (:mod:`repro.faults`).

    Tests and the fault-recovery benchmark inject this into grid cells to
    exercise the retry and graceful-degradation paths of the parallel driver;
    seeing it escape anywhere else means a fault plan leaked into a
    production run.
    """
