"""Common interface for discrete (indivisible-task) balancing processes.

Two families of discrete processes live in this library:

* the paper's **flow imitation** algorithms (:mod:`repro.core`), which couple
  themselves to a continuous process and imitate its cumulative flow, and
* the **baselines** from the prior literature (:mod:`repro.discrete.baselines`),
  which each round compute the flow the continuous process *would* send given
  the current discrete load and round it (down, quasirandomly, or randomly).

Both expose the same minimal interface so the simulation engine, metrics and
benchmarks can treat them interchangeably.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from ..exceptions import ProcessError
from ..network.graph import Network
from ..tasks.load import LoadSummary, as_token_counts, summarize_loads

__all__ = ["DiscreteBalancer", "IntegerLoadBalancer"]


class DiscreteBalancer(ABC):
    """Abstract base class for discrete balancing processes.

    Subclasses maintain whatever internal representation they need (a
    :class:`~repro.tasks.assignment.TaskAssignment` for weighted tasks, a
    plain integer vector for token-only baselines) but must expose the load
    vector, the network and a synchronous :meth:`advance`.
    """

    def __init__(self, network: Network) -> None:
        network.require_connected()
        self._network = network
        self._round = 0
        self._probe = None

    @property
    def network(self) -> Network:
        """The network being balanced."""
        return self._network

    @property
    def round_index(self) -> int:
        """The index ``t`` of the next round to be executed."""
        return self._round

    @abstractmethod
    def loads(self, include_dummies: bool = True) -> np.ndarray:
        """Return the current load vector of the discrete process."""

    @abstractmethod
    def _execute_round(self) -> None:
        """Execute the balancing actions of the current round."""

    @property
    def probe(self):
        """The attached :class:`~repro.obs.probe.RoundProbe`, if any."""
        return self._probe

    def attach_probe(self, probe) -> None:
        """Attach a per-round telemetry probe (see :mod:`repro.obs`).

        The probe's ``after_round(balancer, seconds)`` is called once per
        executed round with the round's kernel wall-clock.  Probes are
        strictly observers — they read state, never mutate it — so attaching
        one cannot change the trajectory.  Pass ``None`` to detach.
        """
        self._probe = probe

    def advance(self) -> None:
        """Execute one synchronous round."""
        probe = self._probe
        if probe is None:
            self._execute_round()
            self._round += 1
            return
        start = time.perf_counter()  # repro: allow[R002] probe timing envelope
        self._execute_round()
        # repro: allow[R002] probe timing envelope (kernel seconds, read-only)
        seconds = time.perf_counter() - start
        self._round += 1
        probe.after_round(self, seconds)

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` rounds."""
        if rounds < 0:
            raise ProcessError("cannot run a negative number of rounds")
        for _ in range(rounds):
            self.advance()

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #

    def total_weight(self, include_dummies: bool = True) -> float:
        """Return the total weight currently in the system."""
        return float(self.loads(include_dummies=include_dummies).sum())

    def summary(self, include_dummies: bool = True,
                reference_weight: Optional[float] = None) -> LoadSummary:
        """Return a :class:`~repro.tasks.load.LoadSummary` of the current loads.

        ``reference_weight`` overrides the total weight used for the average
        makespan — pass the *original* workload weight when dummy tasks have
        been created so the max-avg discrepancy refers to the real workload.
        """
        return summarize_loads(self.loads(include_dummies=include_dummies),
                               self._network, total_weight=reference_weight)

    def max_min_discrepancy(self, include_dummies: bool = True) -> float:
        """Return the current max-min discrepancy of the makespans."""
        return self.summary(include_dummies=include_dummies).max_min_discrepancy

    def max_avg_discrepancy(self, include_dummies: bool = True,
                            reference_weight: Optional[float] = None) -> float:
        """Return the current max-avg discrepancy of the makespans."""
        return self.summary(include_dummies=include_dummies,
                            reference_weight=reference_weight).max_avg_discrepancy

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self._network.num_nodes}, round={self._round}, "
            f"W={self.total_weight():.1f})"
        )


class IntegerLoadBalancer(DiscreteBalancer):
    """Base class for token-only processes that track an integer load vector.

    The baselines of the prior literature are defined on identical unit-weight
    tokens; they only need the per-node token counts, not task identity.
    Loads are stored as a (possibly negative, for processes that can create
    negative load) integer vector.
    """

    def __init__(self, network: Network, initial_load) -> None:
        super().__init__(network)
        self._loads = self._validated_counts(initial_load)
        self._initial_loads = self._loads.copy()
        self._went_negative = False

    def _validated_counts(self, initial_load) -> np.ndarray:
        return as_token_counts(initial_load, self._network, error=ProcessError)

    def recouple(self, initial_load, seed: Optional[int] = None) -> None:
        """Rewind the process to round 0 on a new integer load vector.

        Network-derived data (diffusion weights, the SOS ``beta``, matching
        schedules) is reused; only the per-run state is reset via the
        :meth:`_reset_state` hook.  With the same ``seed`` this is equivalent
        to constructing a fresh balancer, at O(n) instead of recomputing
        spectral data — the re-coupling primitive of the dynamic streaming
        engine.
        """
        self._loads = self._validated_counts(initial_load)
        self._initial_loads = self._loads.copy()
        self._went_negative = False
        self._round = 0
        self._reset_state(seed)

    def _reset_state(self, seed: Optional[int]) -> None:
        """Hook for subclasses with extra per-run state (errors, momentum, rngs)."""

    @property
    def initial_loads(self) -> np.ndarray:
        """The initial integer load vector (copy)."""
        return self._initial_loads.copy()

    @property
    def went_negative(self) -> bool:
        """Whether any node's load ever became negative during the run."""
        return self._went_negative

    def loads(self, include_dummies: bool = True) -> np.ndarray:
        """Return the current integer load vector as floats (dummies do not apply)."""
        return self._loads.astype(float)

    def _apply_edge_moves(self, moves) -> None:
        """Apply a list of ``(source, destination, tokens)`` moves synchronously.

        All moves are computed against the pre-round load vector by the
        subclass; this helper applies them at once and records whether any
        load became negative.
        """
        for source, destination, tokens in moves:
            if tokens < 0:
                raise ProcessError("token moves must be non-negative")
            self._loads[source] -= tokens
            self._loads[destination] += tokens
        if np.any(self._loads < 0):
            self._went_negative = True
