"""Discrete balancing processes: the common interface and the literature baselines."""

from .base import DiscreteBalancer, IntegerLoadBalancer
from . import baselines

__all__ = ["DiscreteBalancer", "IntegerLoadBalancer", "baselines"]
