"""Discrete matching-model baselines (Section 2.2 / 2.3 of the paper).

In the matching model, balancing actions are restricted to the edges of a
matching each round (periodic matchings from an edge colouring, or a fresh
random matching each round).  For a matched edge ``(i, j)`` the continuous
dimension-exchange process would move

    ``delta = (s_j x_i - s_i x_j) / (s_i + s_j)``

from ``i`` to ``j`` (when positive), equalising the two makespans.  The
discrete baselines round ``delta``:

* :class:`RoundDownMatching` — round down (Rabani et al. [37]); never creates
  negative load; lower bound ``Omega(diam(G))``.
* :class:`RandomizedRoundingMatching` — randomized rounding in the style of
  Friedrich & Sauerwald [24] / Sauerwald & Sun [38]; either round up/down with
  probability 1/2 each (``probability="half"``, the rule of [24]) or with
  probability equal to the fractional part (``probability="fractional"``).
  The "half" rule can create negative load when the sender holds very little.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...exceptions import ProcessError
from ...network.graph import Network
from ...network.matchings import MatchingSchedule
from ..base import IntegerLoadBalancer

__all__ = ["MatchingBaseline", "RoundDownMatching", "RandomizedRoundingMatching"]


class MatchingBaseline(IntegerLoadBalancer):
    """Shared bookkeeping for the discrete matching-model baselines.

    Parameters
    ----------
    network:
        The network to balance on.
    initial_load:
        Integer token counts per node.
    schedule:
        The matching schedule; share the instance with any other process that
        should observe the same matchings.
    """

    def __init__(self, network: Network, initial_load: Sequence[int],
                 schedule: MatchingSchedule) -> None:
        super().__init__(network, initial_load)
        if schedule.network is not network:
            raise ProcessError("the matching schedule must be built on the same network")
        self._schedule = schedule

    @property
    def schedule(self) -> MatchingSchedule:
        """The matching schedule driving this process."""
        return self._schedule

    def _reset_state(self, seed) -> None:
        self._schedule.reseed(seed)

    def _matched_deltas(self) -> List[Tuple[int, int, float]]:
        """Return ``(sender, receiver, delta)`` for every matched edge with positive delta."""
        speeds = self.network.speeds
        loads = self._loads.astype(float)
        result = []
        for (u, v) in self._schedule.matching(self.round_index):
            delta = (speeds[v] * loads[u] - speeds[u] * loads[v]) / (speeds[u] + speeds[v])
            if delta > 0:
                result.append((u, v, delta))
            elif delta < 0:
                result.append((v, u, -delta))
        return result


class RoundDownMatching(MatchingBaseline):
    """Round the dimension-exchange amount of every matched edge down."""

    def _execute_round(self) -> None:
        moves = []
        for sender, receiver, delta in self._matched_deltas():
            amount = int(math.floor(delta + 1e-12))
            if amount > 0:
                moves.append((sender, receiver, amount))
        self._apply_edge_moves(moves)


class RandomizedRoundingMatching(MatchingBaseline):
    """Randomized rounding in the matching model ([24] / [38] style)."""

    def __init__(self, network: Network, initial_load: Sequence[int],
                 schedule: MatchingSchedule, probability: str = "half",
                 seed: Optional[int] = None) -> None:
        super().__init__(network, initial_load, schedule)
        if probability not in ("half", "fractional"):
            raise ProcessError(
                f"probability must be 'half' or 'fractional', got {probability!r}"
            )
        self._probability = probability
        self._rng = np.random.default_rng(seed)

    def _reset_state(self, seed) -> None:
        # Not called from __init__: re-coupling owns the schedule and may
        # reseed it, but a constructor must never touch a shared schedule.
        super()._reset_state(seed)
        self._rng = np.random.default_rng(seed)

    @property
    def probability_rule(self) -> str:
        """Which rounding probability rule is in use ('half' or 'fractional')."""
        return self._probability

    def _execute_round(self) -> None:
        moves = []
        for sender, receiver, delta in self._matched_deltas():
            base = int(math.floor(delta))
            fraction = delta - base
            if fraction == 0.0:
                amount = base
            elif self._probability == "half":
                amount = base + (1 if self._rng.random() < 0.5 else 0)
            else:
                amount = base + (1 if self._rng.random() < fraction else 0)
            if amount > 0:
                moves.append((sender, receiver, amount))
        self._apply_edge_moves(moves)
