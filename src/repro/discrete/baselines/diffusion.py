"""Discrete diffusion baselines from the prior literature (Section 2.2 / 2.3).

All baselines work on identical unit-weight tokens.  Each round they compute
the flow the continuous FOS process *would* send given the **current discrete
load vector** and round it:

* :class:`RoundDownDiffusion` — the classical scheme analysed by Rabani,
  Sinclair & Wanka [37]: round the per-edge net flow down.  Final max-min
  discrepancy ``O(d log n / (1 - lambda))``; lower bound ``Omega(d diam(G))``.
* :class:`QuasirandomDiffusion` — the deterministic rounding of Friedrich,
  Gairing & Sauerwald [26]: per edge, keep the accumulated rounding error
  bounded by choosing floor or ceiling (may create negative load).
* :class:`RandomizedRoundingDiffusion` — randomized rounding [26]: round the
  per-edge net flow up with probability equal to its fractional part (may
  create negative load).
* :class:`ExcessTokenDiffusion` — Berenbrink et al. [9]: round every directed
  flow down and forward the node's excess tokens to neighbours chosen at
  random without replacement (never creates negative load).

Except for :class:`ExcessTokenDiffusion` (whose mechanism is inherently
per-direction) the implementations round the *net* flow of each edge, i.e.
``alpha_{i,j} (x_i/s_i - x_j/s_j)`` is rounded by the endpoint with the larger
makespan.  This matches the "standard diffusion algorithm" described in the
paper's introduction and the framework of [37].
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...counter_rng import (
    OFFSET_STREAM as _OFFSET_STREAM,
    RNG_MODES,
    edge_scores,
    normalize_counter_seed,
    philox_generator as _philox_generator,
    validate_rng_mode,
)
from ...exceptions import ProcessError
from ...network.graph import Edge, Network
from ...network.spectral import AlphaScheme, compute_alphas
from ..base import IntegerLoadBalancer

__all__ = [
    "RNG_MODES",
    "DiffusionBaseline",
    "RoundDownDiffusion",
    "RoundDownSecondOrder",
    "QuasirandomDiffusion",
    "RandomizedRoundingDiffusion",
    "ExcessTokenDiffusion",
]


class DiffusionBaseline(IntegerLoadBalancer):
    """Shared FOS bookkeeping for the diffusion baselines.

    Parameters
    ----------
    network:
        The network to balance on.
    initial_load:
        Integer token counts per node.
    alphas / scheme:
        FOS edge weights, as in :class:`~repro.continuous.fos.FirstOrderDiffusion`.
    """

    def __init__(
        self,
        network: Network,
        initial_load: Sequence[int],
        alphas: Optional[Dict[Edge, float]] = None,
        scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE,
    ) -> None:
        super().__init__(network, initial_load)
        if alphas is None:
            alphas = compute_alphas(network, scheme)
        self._alphas = dict(alphas)
        self._alpha_array = np.zeros(network.num_edges, dtype=float)
        for (u, v), value in alphas.items():
            self._alpha_array[network.edge_index(u, v)] = value
        if np.any(self._alpha_array <= 0):
            raise ProcessError("every edge needs a positive alpha weight")
        edges = network.edges
        self._sources = np.fromiter((u for u, _ in edges), dtype=int, count=len(edges))
        self._targets = np.fromiter((v for _, v in edges), dtype=int, count=len(edges))

    @property
    def alphas(self) -> Dict[Edge, float]:
        """The symmetric FOS edge weights in use (copy)."""
        return dict(self._alphas)

    def _net_continuous_flows(self) -> np.ndarray:
        """Per-edge continuous net flow ``alpha_e (x_u/s_u - x_v/s_v)`` (canonical direction)."""
        speeds = self.network.speeds
        spans = self._loads.astype(float) / speeds
        return self._alpha_array * (spans[self._sources] - spans[self._targets])

    def _apply_net_moves(self, sent: np.ndarray) -> None:
        """Apply integer net moves (canonical direction, may be negative)."""
        moves: List[Tuple[int, int, int]] = []
        for edge_idx, amount in enumerate(sent):
            amount = int(amount)
            if amount == 0:
                continue
            u = int(self._sources[edge_idx])
            v = int(self._targets[edge_idx])
            if amount > 0:
                moves.append((u, v, amount))
            else:
                moves.append((v, u, -amount))
        self._apply_edge_moves(moves)


class RoundDownDiffusion(DiffusionBaseline):
    """Rabani et al. [37]: round the net continuous flow of every edge down.

    The sender of each edge is the endpoint with the larger makespan; it sends
    ``floor`` of the continuous net amount, which can never exceed its load,
    so negative load is impossible.
    """

    def _execute_round(self) -> None:
        net = self._net_continuous_flows()
        sent = np.where(net >= 0, np.floor(net + 1e-12), -np.floor(-net + 1e-12))
        self._apply_net_moves(sent.astype(int))


class RoundDownSecondOrder(DiffusionBaseline):
    """Discrete second-order scheme with round-down (Elsässer & Monien [18]).

    The continuous SOS flow is computed from the **discrete** load vector,
    using the same recursion as Equation (4) but applied to the net per-edge
    flow, and rounded down by the sending endpoint.  The (real-valued)
    previous-round flow is carried along so the momentum term matches the
    continuous scheme.  Like continuous SOS, the momentum can make the
    outgoing demand exceed a node's load, so the process may create negative
    load; the paper's Section 2.2 discusses the resulting analysis.
    """

    def __init__(self, network: Network, initial_load: Sequence[int],
                 beta: Optional[float] = None,
                 alphas: Optional[Dict[Edge, float]] = None,
                 scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE) -> None:
        super().__init__(network, initial_load, alphas=alphas, scheme=scheme)
        if beta is None:
            from ...network.spectral import (
                diffusion_matrix,
                optimal_sos_beta,
                second_largest_eigenvalue,
            )

            lam = second_largest_eigenvalue(diffusion_matrix(network, alphas=self._alphas))
            beta = optimal_sos_beta(min(lam, 1.0 - 1e-12))
        if not 0.0 < beta <= 2.0:
            raise ProcessError(f"beta must lie in (0, 2], got {beta}")
        self._beta = float(beta)
        self._previous_net = np.zeros(network.num_edges, dtype=float)

    def _reset_state(self, seed) -> None:
        self._previous_net[:] = 0.0  # beta and alphas are topology data: kept

    @property
    def beta(self) -> float:
        """The SOS relaxation parameter in use."""
        return self._beta

    def _execute_round(self) -> None:
        first_order = self._net_continuous_flows()
        if self.round_index == 0:
            net = first_order
        else:
            net = (self._beta - 1.0) * self._previous_net + self._beta * first_order
        self._previous_net = net
        sent = np.where(net >= 0, np.floor(net + 1e-12), -np.floor(-net + 1e-12))
        self._apply_net_moves(sent.astype(int))


class QuasirandomDiffusion(DiffusionBaseline):
    """Friedrich, Gairing & Sauerwald [26], deterministic rounding.

    Per edge the process keeps the accumulated rounding error
    ``hat_delta_e(t) = sum_{l <= t} (y_e(l) - sent_e(l))`` and each round sends
    the rounding (floor or ceiling) of the continuous amount that minimises
    the absolute accumulated error.  The process has the *bounded error
    property*; it may create negative load on some nodes.
    """

    def __init__(self, network: Network, initial_load: Sequence[int],
                 alphas: Optional[Dict[Edge, float]] = None,
                 scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE) -> None:
        super().__init__(network, initial_load, alphas=alphas, scheme=scheme)
        self._accumulated_error = np.zeros(network.num_edges, dtype=float)

    def _reset_state(self, seed) -> None:
        self._accumulated_error[:] = 0.0

    @property
    def accumulated_errors(self) -> np.ndarray:
        """The per-edge accumulated rounding error (copy)."""
        return self._accumulated_error.copy()

    def _execute_round(self) -> None:
        net = self._net_continuous_flows()
        floor = np.floor(net)
        ceiling = np.ceil(net)
        error_floor = np.abs(self._accumulated_error + net - floor)
        error_ceiling = np.abs(self._accumulated_error + net - ceiling)
        sent = np.where(error_floor <= error_ceiling, floor, ceiling)
        self._accumulated_error += net - sent
        self._apply_net_moves(sent.astype(int))


class RandomizedRoundingDiffusion(DiffusionBaseline):
    """Friedrich, Gairing & Sauerwald [26], randomized rounding.

    The net continuous amount of every edge is rounded up with probability
    equal to its fractional part, so the expected discrete flow matches the
    continuous flow.  Rounding up on too many edges can create negative load.

    The rounding randomness comes in two **rng modes** (see
    :mod:`repro.counter_rng`):

    * ``"sequential"`` (default) — one shared ``numpy`` generator whose
      stream advances by ``m`` draws per round; the draw an edge receives is
      tied to its position in that stream.
    * ``"counter"`` — Philox keyed on ``(seed, round)``: edge ``e``'s draw is
      entry ``e`` of the per-round score block, a pure function of
      ``(seed, round, edge)``.  Rounding the edges in any order — or all at
      once — consumes identical values, so trajectories are replayable
      independently of edge iteration order.  The array-backend variant
      (:class:`repro.backend.baselines.ArrayRandomizedRoundingDiffusion`)
      shares this round verbatim and only replaces the per-edge move loop
      with scatter-adds, so the two are bit-identical in both modes.
    """

    def __init__(self, network: Network, initial_load: Sequence[int],
                 alphas: Optional[Dict[Edge, float]] = None,
                 scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE,
                 seed: Optional[int] = None,
                 rng_mode: str = "sequential") -> None:
        super().__init__(network, initial_load, alphas=alphas, scheme=scheme)
        self._rng_mode = validate_rng_mode(rng_mode)
        self._reset_state(seed)

    def _reset_state(self, seed) -> None:
        if self._rng_mode == "counter":
            self._counter_key = normalize_counter_seed(seed)
        else:
            self._rng = np.random.default_rng(seed)

    @property
    def rng_mode(self) -> str:
        """How per-edge rounding randomness is drawn ("sequential" or "counter")."""
        return self._rng_mode

    def _rounding_draws(self) -> np.ndarray:
        """This round's per-edge uniform draws (edge-keyed in counter mode)."""
        if self._rng_mode == "counter":
            return edge_scores(self._counter_key, self._round, self.network.num_edges)
        return self._rng.random(self.network.num_edges)

    def _execute_round(self) -> None:
        net = self._net_continuous_flows()
        magnitude = np.abs(net)
        base = np.floor(magnitude)
        fraction = magnitude - base
        round_up = self._rounding_draws() < fraction
        sent_magnitude = base + round_up.astype(float)
        sent = np.sign(net) * sent_magnitude
        self._apply_net_moves(sent.astype(int))


class ExcessTokenDiffusion(DiffusionBaseline):
    """Berenbrink et al. [9]: round directed flows down, then spread excess tokens.

    Every node computes its directed FOS flows ``y_{i,j} = alpha_{i,j}/s_i x_i``,
    rounds each down, and forwards the remaining *excess tokens* (the integer
    number of tokens left over after all floors, including the floor of the
    load it keeps) to neighbours chosen without replacement.  The node never
    promises more than it holds, so negative load cannot occur.

    Two distribution strategies are supported (both analysed in the follow-up
    work cited as [5] in the paper):

    * ``"random"`` — neighbours chosen uniformly at random without replacement
      (the original scheme of [9]);
    * ``"round-robin"`` — neighbours served in round-robin order starting from
      a random offset that advances every round.

    Per-node randomness comes in two **rng modes**:

    * ``"sequential"`` (default) — one shared ``numpy`` generator consumed in
      node order, exactly the original scheme.  The draw a node receives
      depends on how many draws earlier nodes consumed, so the trajectory is
      tied to the node iteration order and cannot be vectorised.
    * ``"counter"`` — a *counter-based* (Philox) generator keyed on
      ``(seed, round)``; node ``i``'s draws are the ``i``-th row of the
      per-round score block and the ``excess`` candidates with the smallest
      scores are selected (a uniform random subset, stable-sorted so ties are
      deterministic).  Every node's draw is a pure function of
      ``(seed, round, node, candidate-slot)`` — order-free and therefore
      vectorisable; :class:`repro.backend.baselines.ArrayExcessTokenDiffusion`
      is the bit-identical columnar kernel.
    """

    STRATEGIES = ("random", "round-robin")

    def __init__(self, network: Network, initial_load: Sequence[int],
                 alphas: Optional[Dict[Edge, float]] = None,
                 scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE,
                 seed: Optional[int] = None, strategy: str = "random",
                 rng_mode: str = "sequential") -> None:
        super().__init__(network, initial_load, alphas=alphas, scheme=scheme)
        if strategy not in self.STRATEGIES:
            raise ProcessError(
                f"unknown excess-token strategy {strategy!r}; valid: {self.STRATEGIES}"
            )
        self._strategy = strategy
        self._rng_mode = validate_rng_mode(rng_mode)
        self._dir_offsets = None  # built lazily: only the counter mode reads them
        self._reset_state(seed)

    def _reset_state(self, seed) -> None:
        if self._rng_mode == "counter":
            self._counter_key = normalize_counter_seed(seed)
            offsets_rng = _philox_generator(self._counter_key, _OFFSET_STREAM)
            self._round_robin_offsets = offsets_rng.integers(
                0, np.maximum(self.network.degrees, 1))
        else:
            self._rng = np.random.default_rng(seed)
            self._round_robin_offsets = self._rng.integers(
                0, np.maximum(self.network.degrees, 1))

    @property
    def strategy(self) -> str:
        """The excess-token distribution strategy in use."""
        return self._strategy

    @property
    def rng_mode(self) -> str:
        """How per-node randomness is drawn ("sequential" or "counter")."""
        return self._rng_mode

    # ------------------------------------------------------------------ #
    # shared round math (counter mode and the columnar kernel)
    # ------------------------------------------------------------------ #

    def _ensure_directed_arrays(self) -> None:
        """Build the directed-edge arrays (sorted by source, then neighbour
        order) shared by the counter-mode reference and the columnar kernel.

        Topology data, built once on first counter-mode use — the default
        sequential mode never reads them, so it does not pay for them."""
        if self._dir_offsets is not None:
            return
        network = self.network
        degrees = network.degrees
        self._dir_offsets = np.concatenate(([0], np.cumsum(degrees))).astype(np.int64)
        self._dir_src = np.repeat(np.arange(network.num_nodes), degrees)
        self._dir_dst = np.fromiter(
            (nbr for node in network.nodes for nbr in network.neighbors(node)),
            dtype=np.int64, count=int(degrees.sum()))
        self._dir_alpha = self._alpha_array[
            [network.edge_index(int(u), int(v))
             for u, v in zip(self._dir_src, self._dir_dst)]
        ]

    def _counter_flow_plan(self):
        """Vectorised directed floors and per-node excess token counts.

        Shared verbatim by the scalar counter-mode reference below and the
        columnar kernel in :mod:`repro.backend.baselines`, so the two are
        bit-identical by construction on everything except how the random
        candidate selection is *computed* (per-node loop vs batched argsort).
        """
        self._ensure_directed_arrays()
        speeds = self.network.speeds
        loads = self._loads.astype(float)
        amounts = self._dir_alpha / speeds[self._dir_src] * loads[self._dir_src]
        floors = np.floor(amounts + 1e-12).astype(np.int64)
        outgoing = np.add.reduceat(amounts, self._dir_offsets[:-1])
        kept_floor = np.floor(loads - outgoing + 1e-12).astype(np.int64)
        total_floor = np.add.reduceat(floors, self._dir_offsets[:-1])
        excess = np.rint(loads - total_floor - kept_floor).astype(np.int64)
        excess = np.where(self._loads > 0, np.maximum(excess, 0), 0)
        return floors, excess

    def _counter_scores(self, round_index: int) -> np.ndarray:
        """The per-round ``(n, max_degree + 1)`` uniform score block.

        Entry ``(i, j)`` is a pure function of ``(seed, round, i, j)`` — the
        counter-RNG keying that makes per-node draws order-free.
        """
        rng = _philox_generator(self._counter_key, round_index)
        return rng.random((self.network.num_nodes, self.network.max_degree + 1))

    def _counter_chosen(self, node: int, num_candidates: int, count: int,
                        scores: np.ndarray) -> Sequence[int]:
        """Candidate slots ``node`` forwards its excess tokens to (counter mode)."""
        if self._strategy == "random":
            order = np.argsort(scores[node, :num_candidates], kind="stable")
            return order[:count]
        offset = int(self._round_robin_offsets[node])
        chosen = [(offset + k) % num_candidates for k in range(count)]
        self._round_robin_offsets[node] = (offset + count) % num_candidates
        return chosen

    def _execute_round(self) -> None:
        if self._rng_mode == "counter":
            self._execute_round_counter()
        else:
            self._execute_round_sequential()

    def _execute_round_counter(self) -> None:
        """Scalar counter-RNG reference: same flows, order-free draws.

        Nodes are still visited in a Python loop, but every draw depends only
        on ``(seed, round, node)`` — iterating the nodes in any other order
        yields the same moves, which is what the vectorised kernel exploits.
        """
        floors, excess = self._counter_flow_plan()
        scores = self._counter_scores(self._round) if self._strategy == "random" else None
        moves: List[Tuple[int, int, int]] = []
        for node in self.network.nodes:
            neighbors = self.network.neighbors(node)
            base = int(self._dir_offsets[node])
            for j, neighbor in enumerate(neighbors):
                amount = int(floors[base + j])
                if amount > 0:
                    moves.append((node, neighbor, amount))
            count = min(int(excess[node]), len(neighbors) + 1)
            if count > 0:
                for index in self._counter_chosen(node, len(neighbors) + 1,
                                                  count, scores):
                    index = int(index)
                    if index < len(neighbors):
                        moves.append((node, neighbors[index], 1))
        self._apply_edge_moves(moves)

    def _execute_round_sequential(self) -> None:
        speeds = self.network.speeds
        loads = self._loads.astype(float)
        moves: List[Tuple[int, int, int]] = []
        for node in self.network.nodes:
            load = loads[node]
            if load <= 0:
                continue
            neighbors = self.network.neighbors(node)
            directed = []
            total_floor = 0
            for neighbor in neighbors:
                alpha = self._alphas[(node, neighbor) if node < neighbor else (neighbor, node)]
                amount = alpha / speeds[node] * load
                floor_amount = int(math.floor(amount + 1e-12))
                directed.append((neighbor, floor_amount))
                total_floor += floor_amount
            kept = load - sum(
                self._alphas[(node, nbr) if node < nbr else (nbr, node)] / speeds[node] * load
                for nbr in neighbors
            )
            kept_floor = int(math.floor(kept + 1e-12))
            excess = int(round(load - total_floor - kept_floor))
            for neighbor, floor_amount in directed:
                if floor_amount > 0:
                    moves.append((node, neighbor, floor_amount))
            if excess > 0:
                # Distribute the excess tokens among N(i) plus the node itself,
                # without replacement; a token "sent to itself" is simply kept.
                candidates = list(neighbors) + [node]
                count = min(excess, len(candidates))
                if self._strategy == "random":
                    chosen = self._rng.choice(len(candidates), size=count, replace=False)
                else:
                    offset = int(self._round_robin_offsets[node])
                    chosen = [(offset + k) % len(candidates) for k in range(count)]
                    self._round_robin_offsets[node] = (offset + count) % len(candidates)
                for index in chosen:
                    target = candidates[int(index)]
                    if target != node:
                        moves.append((node, target, 1))
        self._apply_edge_moves(moves)
