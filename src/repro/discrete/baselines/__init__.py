"""Discrete baselines from the prior literature, used for the comparison tables."""

from .diffusion import (
    RNG_MODES,
    DiffusionBaseline,
    ExcessTokenDiffusion,
    QuasirandomDiffusion,
    RandomizedRoundingDiffusion,
    RoundDownDiffusion,
    RoundDownSecondOrder,
)
from .matching import (
    MatchingBaseline,
    RandomizedRoundingMatching,
    RoundDownMatching,
)
from .random_walk import RandomWalkFineBalancer, TwoPhaseRandomWalkBalancer

__all__ = [
    "RNG_MODES",
    "DiffusionBaseline",
    "RoundDownDiffusion",
    "RoundDownSecondOrder",
    "QuasirandomDiffusion",
    "RandomizedRoundingDiffusion",
    "ExcessTokenDiffusion",
    "MatchingBaseline",
    "RoundDownMatching",
    "RandomizedRoundingMatching",
    "RandomWalkFineBalancer",
    "TwoPhaseRandomWalkBalancer",
]
