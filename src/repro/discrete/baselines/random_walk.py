"""The two-phase random-walk approach to discrete load balancing (Section 2.3).

The "random walk approach" of Elsässer/Monien/Sauerwald [18, 19, 21] refines
a coarse diffusion phase with a token-level random-walk phase:

* **Phase 1** runs an ordinary discrete diffusion scheme (here: the
  round-down baseline of [37]) for a prescribed number of rounds, bringing
  every node close to the average.
* **Phase 2** ("fine balancing"): every node knows the target load
  ``avg = W s_i / S`` (obtainable by simulating the continuous process).
  Tokens above ``avg + c`` become *positive tokens*; nodes below ``avg``
  create *negative tokens* (holes).  Both kinds perform independent random
  walk steps each round; when a positive token meets a negative token, both
  are eliminated — which physically corresponds to a token moving from an
  overloaded node to an underloaded one.

This baseline is included because it is the strongest prior approach in
Table 1-style comparisons (constant discrepancy in ``O(T)`` rounds, per
[19]); in this reproduction it serves as an upper-bar reference for the
flow-imitation algorithms.  Like its originals it can transiently create
negative load when too many negative tokens concentrate on one node.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ...exceptions import ProcessError
from ...network.graph import Network
from ...network.spectral import AlphaScheme
from ..base import IntegerLoadBalancer
from .diffusion import RoundDownDiffusion

__all__ = ["RandomWalkFineBalancer", "TwoPhaseRandomWalkBalancer"]


class RandomWalkFineBalancer(IntegerLoadBalancer):
    """Phase 2 alone: positive/negative tokens performing random walks.

    Parameters
    ----------
    network:
        The network to balance on.
    initial_load:
        Integer token counts per node (typically the output of a coarse phase).
    threshold:
        The slack ``c``: tokens above ``avg + c`` are marked positive.
    seed:
        Randomness for the walk steps.
    """

    def __init__(self, network: Network, initial_load: Sequence[int],
                 threshold: int = 1, seed: Optional[int] = None) -> None:
        super().__init__(network, initial_load)
        if threshold < 0:
            raise ProcessError("threshold must be non-negative")
        self._threshold = threshold
        self._reset_state(seed)

    def _reset_state(self, seed) -> None:
        self._rng = np.random.default_rng(seed)
        total = float(self._loads.sum())
        speeds = self.network.speeds
        self._targets = total * speeds / speeds.sum()
        # Positive tokens: load above target + threshold.  Negative tokens: holes below target.
        self._positive = np.maximum(
            self._loads - np.ceil(self._targets).astype(np.int64) - self._threshold, 0)
        self._negative = np.maximum(
            np.floor(self._targets).astype(np.int64) - self._loads, 0)

    @property
    def positive_tokens(self) -> np.ndarray:
        """Current number of positive (excess) tokens per node (copy)."""
        return self._positive.copy()

    @property
    def negative_tokens(self) -> np.ndarray:
        """Current number of negative tokens (holes) per node (copy)."""
        return self._negative.copy()

    @property
    def unmatched_tokens(self) -> int:
        """Total number of positive plus negative tokens still alive."""
        return int(self._positive.sum() + self._negative.sum())

    def _walk(self, counts: np.ndarray) -> np.ndarray:
        """Move every token in ``counts`` to a uniformly random neighbour."""
        moved = np.zeros_like(counts)
        for node in self.network.nodes:
            amount = int(counts[node])
            if amount == 0:
                continue
            neighbors = self.network.neighbors(node)
            choices = self._rng.integers(0, len(neighbors), size=amount)
            for choice in choices:
                moved[neighbors[int(choice)]] += 1
        return moved

    def _execute_round(self) -> None:
        new_positive = self._walk(self._positive)
        new_negative = self._walk(self._negative)

        # Physical load change: a positive token moving i -> j carries one unit
        # of load with it; a negative token moving i -> j pulls one unit j -> i.
        self._loads -= self._positive
        self._loads += new_positive
        self._loads += self._negative
        self._loads -= new_negative
        if np.any(self._loads < 0):
            self._went_negative = True

        # Annihilate positive/negative pairs that landed on the same node.
        matched = np.minimum(new_positive, new_negative)
        self._positive = new_positive - matched
        self._negative = new_negative - matched

    def run_until_matched(self, max_rounds: int = 100_000) -> int:
        """Run until every positive or negative token has been annihilated."""
        rounds = 0
        while self.unmatched_tokens > 0 and min(self._positive.sum(),
                                                self._negative.sum()) > 0:
            if rounds >= max_rounds:
                break
            self.advance()
            rounds += 1
        return rounds


class TwoPhaseRandomWalkBalancer(IntegerLoadBalancer):
    """The full two-phase algorithm: coarse diffusion, then random-walk fine balancing.

    Parameters
    ----------
    network / initial_load:
        The instance to balance.
    phase1_rounds:
        Number of coarse (round-down diffusion) rounds.  When ``None`` a
        heuristic of ``ceil(4 log2(n + 1))`` diameter-ish rounds per token
        magnitude is used; pass the continuous balancing time for a faithful
        comparison against the other algorithms.
    threshold:
        Slack ``c`` used when marking positive tokens in phase 2.
    """

    def __init__(self, network: Network, initial_load: Sequence[int],
                 phase1_rounds: Optional[int] = None, threshold: int = 1,
                 seed: Optional[int] = None,
                 scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE) -> None:
        super().__init__(network, initial_load)
        if phase1_rounds is not None and phase1_rounds < 0:
            raise ProcessError("phase1_rounds must be non-negative")
        self._phase1_rounds = phase1_rounds
        self._threshold = threshold
        self._scheme = scheme
        self._reset_state(seed)

    def _reset_state(self, seed) -> None:
        self._seed = seed
        self._phase1: Optional[RoundDownDiffusion] = RoundDownDiffusion(
            self.network, self._loads, scheme=self._scheme)
        self._phase2: Optional[RandomWalkFineBalancer] = None
        self._phase1_executed = 0

    @property
    def in_fine_phase(self) -> bool:
        """Whether the balancer has switched to the random-walk fine phase."""
        return self._phase2 is not None

    def _default_phase1_rounds(self) -> int:
        n = self.network.num_nodes
        return int(math.ceil(8 * math.log2(n + 1)))

    def _execute_round(self) -> None:
        budget = self._phase1_rounds if self._phase1_rounds is not None \
            else self._default_phase1_rounds()
        if self._phase2 is None and self._phase1_executed < budget:
            self._phase1.advance()
            self._phase1_executed += 1
            self._loads = self._phase1.loads().astype(np.int64)
            return
        if self._phase2 is None:
            self._phase2 = RandomWalkFineBalancer(
                self.network, self._loads, threshold=self._threshold, seed=self._seed)
        self._phase2.advance()
        self._loads = self._phase2.loads().astype(np.int64)
        if self._phase2.went_negative:
            self._went_negative = True
