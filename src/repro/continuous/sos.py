"""Second-order diffusion (SOS) with heterogeneous speeds.

The second order schedule (Muthukrishnan, Ghosh & Schultz; generalised to
speeds by Elsässer, Monien & Preis) is inspired by successive over-relaxation.
The first round is identical to FOS; subsequent rounds use

    ``y_{i,j}(t) = (beta - 1) * y_{i,j}(t-1) + beta * (alpha_{i,j}/s_i) * x_i(t)``

(Equation (4) of the paper), which yields the round equation
``x(t+1) = beta * x(t) P + (1 - beta) * x(t-1)``.  For the optimal
``beta = 2 / (1 + sqrt(1 - lambda^2))`` SOS converges in
``O(log(Kn) / sqrt(1 - lambda))`` rounds — quadratically faster than FOS in
terms of the spectral gap.

Unlike FOS, SOS *may* induce negative load (its outgoing demand can exceed
the available load); Definition 1 and the corresponding pre-condition of
Theorems 3 and 8 exist precisely because of this process.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence


from ..exceptions import ProcessError
from ..network.graph import Edge, Network
from ..network.spectral import (
    AlphaScheme,
    compute_alphas,
    diffusion_matrix,
    optimal_sos_beta,
    second_largest_eigenvalue,
)
from .base import ContinuousProcess, RoundFlows
from .fos import _alphas_to_array

__all__ = ["SecondOrderDiffusion"]


class SecondOrderDiffusion(ContinuousProcess):
    """The second-order diffusion process (SOS).

    Parameters
    ----------
    network:
        The network to balance on.
    initial_load:
        Initial load vector ``x(0)``.
    beta:
        Relaxation parameter in ``(0, 2]``.  ``None`` (default) selects the
        optimal value ``2 / (1 + sqrt(1 - lambda^2))`` from the spectrum of
        the diffusion matrix.
    alphas / scheme:
        Edge weights, as for :class:`~repro.continuous.fos.FirstOrderDiffusion`.
    """

    def __init__(
        self,
        network: Network,
        initial_load: Sequence[float],
        beta: Optional[float] = None,
        alphas: Optional[Dict[Edge, float]] = None,
        scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE,
        check_negative_load: bool = False,
    ) -> None:
        super().__init__(network, initial_load, check_negative_load=check_negative_load)
        if alphas is None:
            alphas = compute_alphas(network, scheme)
        self._alphas = dict(alphas)
        self._alpha_array = _alphas_to_array(network, alphas)
        if beta is None:
            lam = second_largest_eigenvalue(diffusion_matrix(network, alphas=alphas))
            beta = optimal_sos_beta(min(lam, 1.0 - 1e-12))
        if not 0.0 < beta <= 2.0:
            raise ProcessError(f"beta must lie in (0, 2], got {beta}")
        self._beta = float(beta)
        speeds = network.speeds
        sources, targets = self._edge_endpoint_arrays()
        self._rate_forward = self._alpha_array / speeds[sources]
        self._rate_backward = self._alpha_array / speeds[targets]

    @property
    def beta(self) -> float:
        """The relaxation parameter ``beta`` in use."""
        return self._beta

    @property
    def alphas(self) -> Dict[Edge, float]:
        """The symmetric edge weights used by this process (copy)."""
        return dict(self._alphas)

    def _compute_flows(self) -> RoundFlows:
        sources, targets = self._edge_endpoint_arrays()
        load = self._load
        fos_forward = self._rate_forward * load[sources]
        fos_backward = self._rate_backward * load[targets]
        if self.round_index == 0 or self.last_flows is None:
            forward = fos_forward
            backward = fos_backward
        else:
            beta = self._beta
            forward = (beta - 1.0) * self.last_flows.forward + beta * fos_forward
            backward = (beta - 1.0) * self.last_flows.backward + beta * fos_backward
        return RoundFlows(self.network, forward=forward, backward=backward)
