"""Dimension exchange: matching-based continuous balancing.

In the matching model every node balances with at most one neighbour per
round: load transfer is restricted to the edges of a matching.  For a matched
edge ``(i, j)`` both endpoints equalise their makespans using

    ``y_{i,j}(t) = (alpha_{i,j} / s_i) * x_i(t)``  with
    ``alpha_{i,j} = s_i * s_j / (s_i + s_j)``                (Equation (5))

so that ``x_i(t+1) = s_i / (s_i + s_j) * (x_i(t) + x_j(t))``.  The matching
used in each round comes from a :class:`~repro.network.matchings.MatchingSchedule`
— either a periodic schedule derived from an edge colouring or an independent
random matching per round.  Dimension exchange is additive and terminating
(Lemma 1) and never induces negative load.
"""

from __future__ import annotations

from typing import Optional, Sequence


from ..exceptions import ProcessError
from ..network.graph import Network
from ..network.matchings import (
    MatchingSchedule,
    PeriodicMatchingSchedule,
    RandomMatchingSchedule,
)
from .base import ContinuousProcess, RoundFlows

__all__ = ["DimensionExchange", "periodic_dimension_exchange", "random_matching_exchange"]


class DimensionExchange(ContinuousProcess):
    """Continuous dimension-exchange process driven by a matching schedule.

    Parameters
    ----------
    network:
        The network to balance on.
    initial_load:
        Initial load vector ``x(0)``.
    schedule:
        The matching schedule.  Share the same schedule instance with any
        discretization of this process so both see identical matchings.
    """

    def __init__(
        self,
        network: Network,
        initial_load: Sequence[float],
        schedule: MatchingSchedule,
        check_negative_load: bool = False,
    ) -> None:
        super().__init__(network, initial_load, check_negative_load=check_negative_load)
        if schedule.network is not network:
            raise ProcessError("the matching schedule must be built on the same network")
        self._schedule = schedule

    @property
    def schedule(self) -> MatchingSchedule:
        """The matching schedule driving this process."""
        return self._schedule

    def _compute_flows(self) -> RoundFlows:
        flows = RoundFlows(self.network)
        speeds = self.network.speeds
        load = self._load
        for (u, v) in self._schedule.matching(self.round_index):
            index = self.network.edge_index(u, v)
            total_speed = speeds[u] + speeds[v]
            # alpha_{u,v} = s_u s_v / (s_u + s_v); y_{u,v} = alpha / s_u * x_u.
            flows.forward[index] = speeds[v] / total_speed * load[u]
            flows.backward[index] = speeds[u] / total_speed * load[v]
        return flows


def periodic_dimension_exchange(network: Network, initial_load: Sequence[float],
                                check_negative_load: bool = False) -> DimensionExchange:
    """Convenience constructor: dimension exchange with an edge-colouring schedule."""
    schedule = PeriodicMatchingSchedule(network)
    return DimensionExchange(network, initial_load, schedule,
                             check_negative_load=check_negative_load)


def random_matching_exchange(network: Network, initial_load: Sequence[float],
                             seed: Optional[int] = None,
                             check_negative_load: bool = False) -> DimensionExchange:
    """Convenience constructor: dimension exchange with a random matching schedule."""
    schedule = RandomMatchingSchedule(network, seed=seed)
    return DimensionExchange(network, initial_load, schedule,
                             check_negative_load=check_negative_load)
