"""The general linear process class of Lemma 1 (Equations (10)-(11)).

The proof of Lemma 1 observes that FOS, SOS and the matching-based processes
are all instances of one recursion, parameterised by a sequence of matrices
``P(0), P(1), ...`` and a relaxation parameter ``beta``:

    ``y_{i,j}(0) = P_{i,j}(0) * x_i(0)``
    ``y_{i,j}(t) = (beta - 1) * y_{i,j}(t-1) + beta * P_{i,j}(t) * x_i(t)``

Every process of this form (with symmetric ``alpha_{i,j} = P_{i,j} s_i``) is
additive and terminating, so the paper's discretization framework applies.
:class:`GeneralLinearProcess` implements the recursion directly, which lets
users plug in their own matrix sequences (e.g. time-varying topologies,
weighted matchings, hybrid diffusion/matching schemes) and immediately obtain
a discrete version via Algorithm 1 or Algorithm 2.

A *matrix provider* is a callable ``provider(t) -> dict[edge, alpha]`` giving
the symmetric edge weights active in round ``t`` (absent edges are inactive
that round).  The diffusion entry is then ``P_{i,j}(t) = alpha_{i,j} / s_i``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..exceptions import ProcessError
from ..network.graph import Edge, Network
from ..network.matchings import MatchingSchedule
from ..network.spectral import AlphaScheme, compute_alphas
from .base import ContinuousProcess, RoundFlows

__all__ = [
    "AlphaProvider",
    "GeneralLinearProcess",
    "constant_alpha_provider",
    "matching_alpha_provider",
]

AlphaProvider = Callable[[int], Dict[Edge, float]]


def constant_alpha_provider(network: Network,
                            alphas: Optional[Dict[Edge, float]] = None,
                            scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE) -> AlphaProvider:
    """Provider that activates every edge with fixed weights each round (diffusion)."""
    if alphas is None:
        alphas = compute_alphas(network, scheme)
    fixed = dict(alphas)
    return lambda round_index: fixed


def matching_alpha_provider(network: Network, schedule: MatchingSchedule) -> AlphaProvider:
    """Provider that activates only the matched edges with the dimension-exchange weights."""
    if schedule.network is not network:
        raise ProcessError("the matching schedule must be built on the same network")
    speeds = network.speeds

    def provider(round_index: int) -> Dict[Edge, float]:
        active: Dict[Edge, float] = {}
        for (u, v) in schedule.matching(round_index):
            active[(u, v)] = speeds[u] * speeds[v] / (speeds[u] + speeds[v])
        return active

    return provider


class GeneralLinearProcess(ContinuousProcess):
    """A continuous process defined by the general recursion of Lemma 1.

    Parameters
    ----------
    network:
        The network to balance on.
    initial_load:
        Initial load vector ``x(0)``.
    alpha_provider:
        Callable returning the symmetric edge weights active in a round.
    beta:
        Relaxation parameter in ``(0, 2]``; ``beta = 1`` recovers the
        first-order behaviour (no memory of the previous round's flows).
    validate_rows:
        When ``True`` (default), every round the provider's weights are
        checked against ``sum_j alpha_{i,j} < s_i``, which guarantees the
        first-order (``beta = 1``) instance never induces negative load.
    """

    def __init__(
        self,
        network: Network,
        initial_load: Sequence[float],
        alpha_provider: AlphaProvider,
        beta: float = 1.0,
        validate_rows: bool = True,
        check_negative_load: bool = False,
    ) -> None:
        super().__init__(network, initial_load, check_negative_load=check_negative_load)
        if not 0.0 < beta <= 2.0:
            raise ProcessError(f"beta must lie in (0, 2], got {beta}")
        self._beta = float(beta)
        self._provider = alpha_provider
        self._validate_rows = validate_rows

    @property
    def beta(self) -> float:
        """The relaxation parameter of the recursion."""
        return self._beta

    def _active_rates(self) -> RoundFlows:
        """Evaluate ``P_{i,j}(t) * x_i(t)`` for the edges active this round."""
        alphas = self._provider(self.round_index)
        flows = RoundFlows(self.network)
        speeds = self.network.speeds
        if self._validate_rows and alphas:
            sums = np.zeros(self.network.num_nodes)
            for (u, v), alpha in alphas.items():
                if alpha <= 0:
                    raise ProcessError(f"alpha for edge {(u, v)} must be positive")
                sums[u] += alpha
                sums[v] += alpha
            if np.any(sums >= speeds):
                node = int(np.argmax(sums - speeds))
                raise ProcessError(
                    f"round {self.round_index}: sum of alphas at node {node} "
                    f"({sums[node]:.4f}) must stay below its speed ({speeds[node]:.4f})"
                )
        for (u, v), alpha in alphas.items():
            index = self.network.edge_index(u, v)
            flows.forward[index] = alpha / speeds[u] * self._load[u]
            flows.backward[index] = alpha / speeds[v] * self._load[v]
        return flows

    def _compute_flows(self) -> RoundFlows:
        first_order = self._active_rates()
        if self.round_index == 0 or self.last_flows is None or self._beta == 1.0:
            return first_order
        beta = self._beta
        forward = (beta - 1.0) * self.last_flows.forward + beta * first_order.forward
        backward = (beta - 1.0) * self.last_flows.backward + beta * first_order.backward
        return RoundFlows(self.network, forward=forward, backward=backward)
