"""Continuous (divisible-load) balancing processes: FOS, SOS and dimension exchange."""

from .base import BALANCE_TOLERANCE, ContinuousProcess, RoundFlows
from .dimension_exchange import (
    DimensionExchange,
    periodic_dimension_exchange,
    random_matching_exchange,
)
from .fos import FirstOrderDiffusion
from .general import (
    GeneralLinearProcess,
    constant_alpha_provider,
    matching_alpha_provider,
)
from .sos import SecondOrderDiffusion

__all__ = [
    "BALANCE_TOLERANCE",
    "ContinuousProcess",
    "RoundFlows",
    "FirstOrderDiffusion",
    "SecondOrderDiffusion",
    "DimensionExchange",
    "periodic_dimension_exchange",
    "random_matching_exchange",
    "GeneralLinearProcess",
    "constant_alpha_provider",
    "matching_alpha_provider",
]
