"""Base classes for continuous (divisible-load) balancing processes.

A continuous process maintains a real-valued load vector ``x(t)`` and, in
every synchronous round, transfers a non-negative amount ``y_{i,j}(t)`` of
load over (a subset of) the edges.  The paper's discretization framework
(Algorithms 1 and 2) only interacts with a continuous process through

* the per-round flows ``y_{i,j}(t)`` and
* the cumulative net flow ``f_{i,j}(t) = sum_{tau<=t} (y_{i,j} - y_{j,i})``,

so this module provides exactly that interface.  Processes are *stateful*
simulators: :meth:`ContinuousProcess.advance` computes the flows of the
current round, applies them to the load vector, accumulates them into the
per-edge cumulative flow, and increments the round counter.

The framework applies to *additive* and *terminating* processes
(Definitions 2 and 3 of the paper); those properties are validated for the
concrete subclasses by the property-based tests in ``tests/``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConvergenceError, NegativeLoadError, ProcessError
from ..network.graph import Network
from ..tasks.load import as_load_vector, balanced_allocation

__all__ = ["RoundFlows", "ContinuousProcess", "BALANCE_TOLERANCE"]

#: Default tolerance used in the definition of the balancing time
#: ``T = min { t : |x_i(t) - W s_i / S| <= 1 for all i }`` (Section 3).
BALANCE_TOLERANCE = 1.0


class RoundFlows:
    """The directed flows of a single round, stored per canonical edge.

    For every edge ``(u, v)`` with ``u < v`` of the network, ``forward[e]``
    is the amount sent from ``u`` to ``v`` and ``backward[e]`` the amount
    sent from ``v`` to ``u`` during the round.
    """

    __slots__ = ("_network", "forward", "backward")

    def __init__(self, network: Network,
                 forward: Optional[np.ndarray] = None,
                 backward: Optional[np.ndarray] = None) -> None:
        m = network.num_edges
        self._network = network
        self.forward = np.zeros(m, dtype=float) if forward is None else np.asarray(forward, dtype=float)
        self.backward = np.zeros(m, dtype=float) if backward is None else np.asarray(backward, dtype=float)
        if self.forward.shape != (m,) or self.backward.shape != (m,):
            raise ProcessError("flow arrays must have one entry per edge")

    @property
    def network(self) -> Network:
        """The network these flows refer to."""
        return self._network

    def sent(self, i: int, j: int) -> float:
        """Return ``y_{i,j}``: the amount sent from ``i`` to ``j`` this round."""
        index = self._network.edge_index(i, j)
        if i < j:
            return float(self.forward[index])
        return float(self.backward[index])

    def net(self) -> np.ndarray:
        """Return the per-edge net flow ``y_{u,v} - y_{v,u}`` (canonical direction)."""
        return self.forward - self.backward

    def net_between(self, i: int, j: int) -> float:
        """Return the net flow from ``i`` to ``j`` this round (may be negative)."""
        return self.sent(i, j) - self.sent(j, i)

    def outgoing(self, node: int) -> float:
        """Return the total outgoing demand ``sum_j y_{node, j}`` of ``node``."""
        total = 0.0
        for neighbor in self._network.neighbors(node):
            total += self.sent(node, neighbor)
        return total

    def outgoing_all(self) -> np.ndarray:
        """Return the vector of outgoing demands for every node (vectorised)."""
        demand = np.zeros(self._network.num_nodes, dtype=float)
        edges = self._network.edges
        sources = np.fromiter((u for u, _ in edges), dtype=int, count=len(edges))
        targets = np.fromiter((v for _, v in edges), dtype=int, count=len(edges))
        np.add.at(demand, sources, self.forward)
        np.add.at(demand, targets, self.backward)
        return demand

    def apply_to(self, loads: np.ndarray) -> np.ndarray:
        """Return a new load vector after applying the net flows of this round."""
        edges = self._network.edges
        sources = np.fromiter((u for u, _ in edges), dtype=int, count=len(edges))
        targets = np.fromiter((v for _, v in edges), dtype=int, count=len(edges))
        net = self.net()
        updated = loads.astype(float).copy()
        np.subtract.at(updated, sources, net)
        np.add.at(updated, targets, net)
        return updated


class ContinuousProcess(ABC):
    """Abstract base for continuous neighbourhood load balancing processes.

    Parameters
    ----------
    network:
        The network to balance on.
    initial_load:
        Initial real-valued load vector ``x(0)``.
    check_negative_load:
        When ``True``, :meth:`advance` raises :class:`NegativeLoadError`
        whenever the outgoing demand of a node exceeds its current load
        (i.e. the process "induces negative load" in the sense of
        Definition 1).  When ``False`` (default) the violation is only
        recorded in :attr:`induced_negative_load`.
    """

    def __init__(self, network: Network, initial_load: Sequence[float],
                 check_negative_load: bool = False) -> None:
        network.require_connected()
        self._network = network
        # Copy: the process mutates its load vector in place every round.
        self._load = as_load_vector(initial_load, network).copy()
        if np.any(self._load < 0):
            raise ProcessError("initial load must be non-negative")
        self._initial_load = self._load.copy()
        self._round = 0
        self._check_negative = check_negative_load
        self._induced_negative = False
        self._cumulative = np.zeros(network.num_edges, dtype=float)
        self._edge_sources = np.fromiter((u for u, _ in network.edges), dtype=int,
                                         count=network.num_edges)
        self._edge_targets = np.fromiter((v for _, v in network.edges), dtype=int,
                                         count=network.num_edges)
        self._last_flows: Optional[RoundFlows] = None

    # ------------------------------------------------------------------ #
    # read-only state
    # ------------------------------------------------------------------ #

    @property
    def network(self) -> Network:
        """The network being balanced."""
        return self._network

    @property
    def load(self) -> np.ndarray:
        """The current load vector ``x(t)`` (copy)."""
        return self._load.copy()

    @property
    def initial_load(self) -> np.ndarray:
        """The initial load vector ``x(0)`` (copy)."""
        return self._initial_load.copy()

    @property
    def round_index(self) -> int:
        """The index ``t`` of the next round to be executed."""
        return self._round

    @property
    def total_weight(self) -> float:
        """The total load ``W`` (invariant across rounds)."""
        return float(self._initial_load.sum())

    @property
    def induced_negative_load(self) -> bool:
        """Whether any executed round had outgoing demand exceeding a node's load."""
        return self._induced_negative

    @property
    def last_flows(self) -> Optional[RoundFlows]:
        """The flows of the most recently executed round (``None`` before round 0)."""
        return self._last_flows

    @property
    def cumulative_flows(self) -> np.ndarray:
        """Per-edge cumulative net flow ``f_{u,v}(t-1)`` in canonical direction (copy)."""
        return self._cumulative.copy()

    def cumulative_flow_between(self, i: int, j: int) -> float:
        """Return ``f_{i,j}``: cumulative net flow sent from ``i`` to ``j`` so far."""
        index = self._network.edge_index(i, j)
        value = float(self._cumulative[index])
        return value if i < j else -value

    def balanced_target(self) -> np.ndarray:
        """Return the perfectly balanced allocation ``(W / S) * s``."""
        return balanced_allocation(self.total_weight, self._network)

    def reset(self, initial_load: Sequence[float]) -> None:
        """Rewind the process to round 0 with a new initial load vector.

        The network-derived data (edge weights, transfer rates, spectral
        parameters such as the SOS ``beta``) is kept — only the per-run state
        (loads, cumulative flows, round counter) is cleared.  This is the
        O(n) re-coupling primitive used by the dynamic streaming engine when
        events change the workload but not the topology.
        """
        load = as_load_vector(initial_load, self._network).copy()
        if np.any(load < 0):
            raise ProcessError("initial load must be non-negative")
        self._load = load
        self._initial_load = load.copy()
        self._round = 0
        self._induced_negative = False
        self._cumulative[:] = 0.0
        self._last_flows = None
        self._on_reset()

    def _on_reset(self) -> None:
        """Hook for subclasses that keep extra per-run state."""

    def is_balanced(self, tolerance: float = BALANCE_TOLERANCE) -> bool:
        """Whether every node is within ``tolerance`` of its balanced load."""
        return bool(np.all(np.abs(self._load - self.balanced_target()) <= tolerance))

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    @abstractmethod
    def _compute_flows(self) -> RoundFlows:
        """Compute the flows ``y_{i,j}(t)`` of the current round from the current state."""

    def advance(self) -> RoundFlows:
        """Execute one round: compute flows, apply them and return them."""
        flows = self._compute_flows()
        demand = flows.outgoing_all()
        if np.any(self._load - demand < -1e-9):
            self._induced_negative = True
            if self._check_negative:
                node = int(np.argmax(demand - self._load))
                raise NegativeLoadError(
                    f"round {self._round}: node {node} has load {self._load[node]:.4f} "
                    f"but outgoing demand {demand[node]:.4f}"
                )
        net = flows.net()
        np.subtract.at(self._load, self._edge_sources, net)
        np.add.at(self._load, self._edge_targets, net)
        self._cumulative += net
        self._on_round_applied(flows)
        self._last_flows = flows
        self._round += 1
        return flows

    def _on_round_applied(self, flows: RoundFlows) -> None:
        """Hook for subclasses that keep extra per-round state (e.g. SOS)."""

    def run(self, rounds: int) -> None:
        """Execute ``rounds`` rounds."""
        if rounds < 0:
            raise ProcessError("cannot run a negative number of rounds")
        for _ in range(rounds):
            self.advance()

    def run_until_balanced(self, tolerance: float = BALANCE_TOLERANCE,
                           max_rounds: int = 1_000_000) -> int:
        """Run until the load vector is within ``tolerance`` of balanced everywhere.

        Returns the balancing time ``T`` (number of rounds executed from the
        start of the process, i.e. the current round index when balance is
        reached).  Raises :class:`ConvergenceError` if ``max_rounds`` rounds
        pass without balancing.
        """
        while not self.is_balanced(tolerance):
            if self._round >= max_rounds:
                raise ConvergenceError(
                    f"{type(self).__name__} did not balance within {max_rounds} rounds "
                    f"(current discrepancy {self._current_discrepancy():.4f})"
                )
            self.advance()
        return self._round

    def _current_discrepancy(self) -> float:
        target = self.balanced_target()
        return float(np.max(np.abs(self._load - target)))

    # ------------------------------------------------------------------ #
    # helpers for subclasses
    # ------------------------------------------------------------------ #

    def _edge_endpoint_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return the (sources, targets) arrays of the canonical edge list."""
        return self._edge_sources, self._edge_targets

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self._network.num_nodes}, "
            f"round={self._round}, W={self.total_weight:.1f})"
        )
