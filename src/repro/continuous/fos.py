"""First-order diffusion (FOS) with heterogeneous speeds.

The first order schedule (Cybenko; Boillat; generalised to speeds by
Elsässer, Monien & Preis) transfers, in every round and over every edge,

    ``y_{i,j}(t) = (alpha_{i,j} / s_i) * x_i(t)``            (Equation (1))

so that the load evolves as ``x(t+1) = x(t) P`` for the diffusion matrix
``P`` built in :mod:`repro.network.spectral`.  FOS is additive and
terminating (Lemma 1) and never induces negative load because
``sum_j alpha_{i,j} < s_i``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..exceptions import ProcessError
from ..network.graph import Edge, Network
from ..network.spectral import AlphaScheme, compute_alphas
from .base import ContinuousProcess, RoundFlows

__all__ = ["FirstOrderDiffusion"]


class FirstOrderDiffusion(ContinuousProcess):
    """The first-order diffusion process (FOS).

    Parameters
    ----------
    network:
        The network to balance on.
    initial_load:
        Initial load vector ``x(0)``.
    alphas:
        Optional explicit symmetric edge weights ``alpha_{i,j}`` (mapping from
        canonical edge to value).  When omitted they are derived from
        ``scheme``.
    scheme:
        One of the :class:`~repro.network.spectral.AlphaScheme` names; ignored
        when ``alphas`` is given.
    """

    def __init__(
        self,
        network: Network,
        initial_load: Sequence[float],
        alphas: Optional[Dict[Edge, float]] = None,
        scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE,
        check_negative_load: bool = False,
    ) -> None:
        super().__init__(network, initial_load, check_negative_load=check_negative_load)
        if alphas is None:
            alphas = compute_alphas(network, scheme)
        self._alpha_array = _alphas_to_array(network, alphas)
        self._alphas = dict(alphas)
        speeds = network.speeds
        sources, targets = self._edge_endpoint_arrays()
        # Pre-compute the per-edge transfer rates alpha_e / s_u and alpha_e / s_v.
        self._rate_forward = self._alpha_array / speeds[sources]
        self._rate_backward = self._alpha_array / speeds[targets]

    @property
    def alphas(self) -> Dict[Edge, float]:
        """The symmetric edge weights used by this process (copy)."""
        return dict(self._alphas)

    def _compute_flows(self) -> RoundFlows:
        sources, targets = self._edge_endpoint_arrays()
        load = self._load
        forward = self._rate_forward * load[sources]
        backward = self._rate_backward * load[targets]
        return RoundFlows(self.network, forward=forward, backward=backward)


def _alphas_to_array(network: Network, alphas: Dict[Edge, float]) -> np.ndarray:
    """Convert an alpha mapping into an array aligned with the network edge order."""
    array = np.zeros(network.num_edges, dtype=float)
    for (u, v), value in alphas.items():
        if value <= 0:
            raise ProcessError(f"alpha for edge {(u, v)} must be positive")
        array[network.edge_index(u, v)] = value
    if np.any(array == 0):
        missing = [edge for edge in network.edges if alphas.get(edge, 0) == 0]
        raise ProcessError(f"alphas missing for edges {missing[:5]}")
    return array
