"""repro: discrete neighbourhood load balancing via continuous-flow imitation.

This package reproduces "A Simple Approach for Adapting Continuous Load
Balancing Processes to Discrete Settings" (Akbari, Berenbrink & Sauerwald,
PODC 2012).  The public API is re-exported here; see ``README.md`` for a
quickstart and ``DESIGN.md`` for the system inventory.
"""

from .backend import (
    BACKEND_KINDS,
    ArrayBackend,
    ArrayDeterministicFlowImitation,
    ArrayExcessTokenDiffusion,
    ArrayRandomizedFlowImitation,
    ArrayRandomizedRoundingDiffusion,
    ArrayWeightedDeterministicFlowImitation,
    BackendChoice,
    ObjectBackend,
    get_backend,
    resolve_backend,
    resolve_backend_name,
)
from .counter_rng import RNG_MODES
from .core import (
    DeterministicFlowImitation,
    FlowCoupledBalancer,
    RandomizedFlowImitation,
    TaskSelectionPolicy,
    theorem3_discrepancy_bound,
    theorem8_max_avg_bound,
)
from .continuous import (
    DimensionExchange,
    FirstOrderDiffusion,
    SecondOrderDiffusion,
    periodic_dimension_exchange,
    random_matching_exchange,
)
from .network import (
    AlphaScheme,
    Network,
    PeriodicMatchingSchedule,
    RandomMatchingSchedule,
    spectral_summary,
    topologies,
)
from .simulation import (
    ALL_ALGORITHMS,
    DynamicScenario,
    RunResult,
    Scenario,
    SweepConfiguration,
    SweepResult,
    compare_algorithms,
    determine_balancing_time,
    expand_seeds,
    grid_sweep,
    make_balancer,
    parallel_dynamic_grid,
    parallel_grid_sweep,
    parallel_sweep,
    run_algorithm,
    run_dynamic_grid,
    run_dynamic_scenario,
    run_scenario,
    run_scenario_grid,
    run_sweep,
)
from .dynamic import (
    EVENT_PROFILES,
    DynamicEvent,
    EventGenerator,
    make_event_generator,
    run_stream,
    summarize_dynamic,
)
from .obs import ConsoleSubscriber, EventLog, MetricsBus, RoundProbe, TelemetryEvent
from .store import (
    RunRecord,
    RunStore,
    check_store_regression,
    config_hash,
    record_run,
    record_sweep_outcomes,
    write_benchmark_record,
)
from .tasks import (
    Task,
    TaskAssignment,
    TaskFactory,
    WeightedLoads,
    generators,
    max_avg_discrepancy,
    max_min_discrepancy,
    summarize_loads,
    weighted_loads_from_task_counts,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core contribution
    "DeterministicFlowImitation",
    "RandomizedFlowImitation",
    "FlowCoupledBalancer",
    "TaskSelectionPolicy",
    # load-state backends
    "BACKEND_KINDS",
    "BackendChoice",
    "ObjectBackend",
    "ArrayBackend",
    "ArrayDeterministicFlowImitation",
    "ArrayRandomizedFlowImitation",
    "ArrayWeightedDeterministicFlowImitation",
    "ArrayExcessTokenDiffusion",
    "ArrayRandomizedRoundingDiffusion",
    "RNG_MODES",
    "get_backend",
    "resolve_backend",
    "resolve_backend_name",
    "theorem3_discrepancy_bound",
    "theorem8_max_avg_bound",
    # continuous substrates
    "FirstOrderDiffusion",
    "SecondOrderDiffusion",
    "DimensionExchange",
    "periodic_dimension_exchange",
    "random_matching_exchange",
    # network substrate
    "Network",
    "AlphaScheme",
    "PeriodicMatchingSchedule",
    "RandomMatchingSchedule",
    "spectral_summary",
    "topologies",
    # tasks and metrics
    "Task",
    "TaskFactory",
    "TaskAssignment",
    "WeightedLoads",
    "weighted_loads_from_task_counts",
    "generators",
    "max_min_discrepancy",
    "max_avg_discrepancy",
    "summarize_loads",
    # simulation
    "ALL_ALGORITHMS",
    "RunResult",
    "Scenario",
    "DynamicScenario",
    "run_algorithm",
    "run_scenario",
    "run_scenario_grid",
    "run_dynamic_scenario",
    "run_dynamic_grid",
    "expand_seeds",
    "compare_algorithms",
    "determine_balancing_time",
    "make_balancer",
    # sweeps and sharded parallel grids
    "SweepConfiguration",
    "SweepResult",
    "run_sweep",
    "grid_sweep",
    "parallel_sweep",
    "parallel_grid_sweep",
    "parallel_dynamic_grid",
    # dynamic workloads
    "EVENT_PROFILES",
    "DynamicEvent",
    "EventGenerator",
    "make_event_generator",
    "run_stream",
    "summarize_dynamic",
    # observability: telemetry bus + run store + regression reports
    "MetricsBus",
    "TelemetryEvent",
    "EventLog",
    "RoundProbe",
    "ConsoleSubscriber",
    "RunRecord",
    "RunStore",
    "config_hash",
    "record_run",
    "record_sweep_outcomes",
    "check_store_regression",
    "write_benchmark_record",
]
