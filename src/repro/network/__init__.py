"""Network substrate: graphs, speeds, topologies, matchings and spectra."""

from .graph import Edge, Network
from .matchings import (
    MatchingSchedule,
    PeriodicMatchingSchedule,
    RandomMatchingSchedule,
    SingleMatchingSchedule,
    edge_coloring,
    validate_matching,
)
from .spectral import (
    AlphaScheme,
    SpectralSummary,
    compute_alphas,
    diffusion_matrix,
    laplacian_second_smallest,
    optimal_sos_beta,
    predicted_fos_rounds,
    predicted_random_matching_rounds,
    predicted_sos_rounds,
    second_largest_eigenvalue,
    spectral_gap,
    spectral_summary,
)
from . import topologies

__all__ = [
    "Edge",
    "Network",
    "MatchingSchedule",
    "PeriodicMatchingSchedule",
    "RandomMatchingSchedule",
    "SingleMatchingSchedule",
    "edge_coloring",
    "validate_matching",
    "AlphaScheme",
    "SpectralSummary",
    "compute_alphas",
    "diffusion_matrix",
    "laplacian_second_smallest",
    "optimal_sos_beta",
    "predicted_fos_rounds",
    "predicted_random_matching_rounds",
    "predicted_sos_rounds",
    "second_largest_eigenvalue",
    "spectral_gap",
    "spectral_summary",
    "topologies",
]
