"""Topology generators for the graph families used in the paper.

Tables 1 and 2 of the paper compare discrepancy bounds on four graph classes:
arbitrary graphs, constant-degree expanders, hypercubes and ``r``-dimensional
tori.  This module provides constructors for those families plus a number of
auxiliary topologies (cycles, paths, stars, complete graphs, trees, barbells,
random geometric graphs) used by tests, examples and ablation benchmarks.

Every constructor returns a :class:`~repro.network.graph.Network` with uniform
speed 1; pass the result through :meth:`Network.with_speeds` to attach a speed
profile.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import networkx as nx
import numpy as np

from ..exceptions import TopologyError
from .graph import Network

__all__ = [
    "hypercube",
    "torus",
    "grid",
    "cycle",
    "path",
    "complete",
    "star",
    "binary_tree",
    "random_regular",
    "expander",
    "erdos_renyi",
    "random_geometric",
    "barbell",
    "lollipop",
    "two_cliques_bridge",
    "cube_connected_cycles",
    "ring_of_cliques",
    "from_edge_list",
    "named_topology",
]


def hypercube(dimension: int) -> Network:
    """Return the ``dimension``-dimensional hypercube on ``2**dimension`` nodes.

    The hypercube is one of the benchmark graph classes of Tables 1 and 2;
    its maximum degree equals ``dimension`` and ``1 - lambda = Theta(1/d)``.
    """
    if dimension < 1:
        raise TopologyError("hypercube dimension must be >= 1")
    graph = nx.hypercube_graph(dimension)
    return Network(nx.convert_node_labels_to_integers(graph), name=f"hypercube-{dimension}")


def torus(side: int, dims: int = 2) -> Network:
    """Return a ``dims``-dimensional torus with ``side`` nodes per dimension.

    ``dims=1`` gives a cycle, ``dims=2`` the standard wrap-around grid, etc.
    Each node has degree ``2 * dims`` (when ``side >= 3``).
    """
    if side < 2:
        raise TopologyError("torus side must be >= 2")
    if dims < 1:
        raise TopologyError("torus dimension must be >= 1")
    graph = nx.grid_graph(dim=[side] * dims, periodic=True)
    return Network(
        nx.convert_node_labels_to_integers(graph), name=f"torus-{dims}d-{side}"
    )


def grid(rows: int, cols: int) -> Network:
    """Return a non-periodic 2-dimensional grid."""
    if rows < 1 or cols < 1:
        raise TopologyError("grid dimensions must be >= 1")
    graph = nx.grid_2d_graph(rows, cols)
    return Network(nx.convert_node_labels_to_integers(graph), name=f"grid-{rows}x{cols}")


def cycle(n: int) -> Network:
    """Return the cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise TopologyError("a cycle needs at least 3 nodes")
    return Network(nx.cycle_graph(n), name=f"cycle-{n}")


def path(n: int) -> Network:
    """Return the path on ``n >= 2`` nodes (worst-case diameter topology)."""
    if n < 2:
        raise TopologyError("a path needs at least 2 nodes")
    return Network(nx.path_graph(n), name=f"path-{n}")


def complete(n: int) -> Network:
    """Return the complete graph on ``n >= 2`` nodes."""
    if n < 2:
        raise TopologyError("a complete graph needs at least 2 nodes")
    return Network(nx.complete_graph(n), name=f"complete-{n}")


def star(n: int) -> Network:
    """Return the star with one hub and ``n - 1`` leaves (``n >= 2`` nodes)."""
    if n < 2:
        raise TopologyError("a star needs at least 2 nodes")
    return Network(nx.star_graph(n - 1), name=f"star-{n}")


def binary_tree(depth: int) -> Network:
    """Return the complete binary tree of the given depth (``2**(depth+1)-1`` nodes)."""
    if depth < 1:
        raise TopologyError("binary tree depth must be >= 1")
    graph = nx.balanced_tree(r=2, h=depth)
    return Network(graph, name=f"binary-tree-{depth}")


def random_regular(n: int, degree: int, seed: Optional[int] = None) -> Network:
    """Return a random ``degree``-regular graph on ``n`` nodes.

    Random regular graphs of constant degree are expanders with high
    probability and serve as the "constant-degree expander" column of
    Tables 1 and 2.  The constructor retries a few times until the sampled
    graph is connected.
    """
    if degree < 1 or degree >= n:
        raise TopologyError("need 1 <= degree < n for a random regular graph")
    if (n * degree) % 2 != 0:
        raise TopologyError("n * degree must be even for a regular graph")
    rng = np.random.default_rng(seed)
    last_error: Optional[Exception] = None
    for _ in range(20):
        try:
            graph = nx.random_regular_graph(degree, n, seed=int(rng.integers(2**31)))
        except nx.NetworkXError as exc:  # pragma: no cover - defensive
            last_error = exc
            continue
        if nx.is_connected(graph):
            return Network(graph, name=f"random-regular-{degree}-{n}")
    raise TopologyError(
        f"failed to sample a connected {degree}-regular graph on {n} nodes"
    ) from last_error


def expander(n: int, degree: int = 4, seed: Optional[int] = None) -> Network:
    """Return a constant-degree expander (alias for :func:`random_regular`)."""
    return random_regular(n, degree, seed=seed)


def erdos_renyi(n: int, p: float, seed: Optional[int] = None) -> Network:
    """Return a connected Erdős–Rényi graph ``G(n, p)``.

    The constructor resamples until the graph is connected (a handful of
    retries); use ``p`` above the connectivity threshold ``ln(n)/n``.
    """
    if not 0.0 < p <= 1.0:
        raise TopologyError("edge probability must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    for _ in range(50):
        graph = nx.gnp_random_graph(n, p, seed=int(rng.integers(2**31)))
        if graph.number_of_nodes() > 0 and nx.is_connected(graph):
            return Network(graph, name=f"gnp-{n}-{p:g}")
    raise TopologyError(
        f"failed to sample a connected G({n}, {p}); increase p (threshold ~ ln(n)/n)"
    )


def random_geometric(n: int, radius: Optional[float] = None, seed: Optional[int] = None) -> Network:
    """Return a connected random geometric graph on the unit square.

    Random geometric graphs are a natural "arbitrary graph" family with poor
    expansion, useful for stressing expansion-dependent baselines.
    """
    if n < 2:
        raise TopologyError("a random geometric graph needs at least 2 nodes")
    if radius is None:
        radius = 1.5 * math.sqrt(math.log(max(n, 3)) / n)
    rng = np.random.default_rng(seed)
    for _ in range(50):
        graph = nx.random_geometric_graph(n, radius, seed=int(rng.integers(2**31)))
        if nx.is_connected(graph):
            return Network(graph, name=f"geometric-{n}")
        radius *= 1.1
    raise TopologyError(f"failed to sample a connected geometric graph on {n} nodes")


def barbell(clique_size: int, bridge_length: int = 0) -> Network:
    """Return a barbell graph: two cliques joined by a path.

    Barbells have very poor expansion, which makes them a good stress test for
    algorithms whose discrepancy bounds depend on ``1 - lambda``.
    """
    if clique_size < 3:
        raise TopologyError("barbell cliques need at least 3 nodes")
    if bridge_length < 0:
        raise TopologyError("bridge length must be >= 0")
    graph = nx.barbell_graph(clique_size, bridge_length)
    return Network(graph, name=f"barbell-{clique_size}-{bridge_length}")


def lollipop(clique_size: int, path_length: int) -> Network:
    """Return a lollipop graph: a clique with a path attached."""
    if clique_size < 3:
        raise TopologyError("lollipop clique needs at least 3 nodes")
    if path_length < 1:
        raise TopologyError("lollipop path length must be >= 1")
    graph = nx.lollipop_graph(clique_size, path_length)
    return Network(graph, name=f"lollipop-{clique_size}-{path_length}")


def two_cliques_bridge(clique_size: int) -> Network:
    """Return two cliques joined by a single edge (minimal-conductance cut)."""
    return barbell(clique_size, 0)


def cube_connected_cycles(dimension: int) -> Network:
    """Return the cube-connected-cycles network CCC(dimension).

    CCC replaces every hypercube node with a cycle of ``dimension`` nodes;
    the result is 3-regular with ``dimension * 2**dimension`` nodes — a
    classical constant-degree interconnection topology, useful as another
    "constant-degree, moderate-expansion" test case.
    """
    if dimension < 3:
        raise TopologyError("cube-connected cycles need dimension >= 3")
    graph = nx.Graph()
    size = 2**dimension
    for word in range(size):
        for position in range(dimension):
            graph.add_edge((word, position), (word, (position + 1) % dimension))
            neighbour = word ^ (1 << position)
            graph.add_edge((word, position), (neighbour, position))
    return Network(nx.convert_node_labels_to_integers(graph), name=f"ccc-{dimension}")


def ring_of_cliques(num_cliques: int, clique_size: int) -> Network:
    """Return a ring of cliques: ``num_cliques`` cliques connected in a cycle.

    A standard low-conductance family between the single-bridge barbell and a
    plain ring; each clique is joined to the next by a single edge.
    """
    if num_cliques < 3:
        raise TopologyError("a ring of cliques needs at least 3 cliques")
    if clique_size < 2:
        raise TopologyError("cliques need at least 2 nodes")
    graph = nx.ring_of_cliques(num_cliques, clique_size)
    return Network(nx.convert_node_labels_to_integers(graph),
                   name=f"ring-of-cliques-{num_cliques}x{clique_size}")


def from_edge_list(edges: Sequence[Sequence[int]], speeds: Optional[Sequence[float]] = None,
                   name: str = "custom") -> Network:
    """Build a network from an explicit edge list.

    Nodes are inferred from the edge endpoints; isolated nodes cannot be
    expressed this way (construct a :class:`networkx.Graph` directly instead).
    """
    if not edges:
        raise TopologyError("edge list must be non-empty")
    graph = nx.Graph()
    graph.add_edges_from((int(u), int(v)) for u, v in edges)
    return Network(graph, speeds=speeds, name=name)


_NAMED = {
    "hypercube": lambda n, seed: hypercube(max(1, int(round(math.log2(n))))),
    "torus": lambda n, seed: torus(max(2, int(round(math.sqrt(n)))), dims=2),
    "torus3d": lambda n, seed: torus(max(2, int(round(n ** (1.0 / 3.0)))), dims=3),
    "cycle": lambda n, seed: cycle(n),
    "path": lambda n, seed: path(n),
    "complete": lambda n, seed: complete(n),
    "star": lambda n, seed: star(n),
    "expander": lambda n, seed: expander(n, degree=4, seed=seed),
    "random-regular-8": lambda n, seed: random_regular(n, 8, seed=seed),
    "geometric": lambda n, seed: random_geometric(n, seed=seed),
    "ccc": lambda n, seed: cube_connected_cycles(
        max(3, int(round(math.log2(max(n, 24) / math.log2(max(n, 24))))))),
    "ring-of-cliques": lambda n, seed: ring_of_cliques(max(3, n // 5), 5),
}


def named_topology(name: str, n: int, seed: Optional[int] = None) -> Network:
    """Construct one of the named topology families at (approximately) size ``n``.

    This is the entry point used by the CLI and the benchmark sweeps: hypercube
    and torus sizes are rounded to the nearest valid size for the family.
    """
    key = name.lower()
    if key not in _NAMED:
        raise TopologyError(
            f"unknown topology {name!r}; valid names: {sorted(_NAMED)}"
        )
    return _NAMED[key](n, seed)
