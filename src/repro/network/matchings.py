"""Matching schedules for dimension-exchange (matching-based) balancing.

The matching model restricts the load exchange of every round to the edges of
a matching.  The paper considers two variants (Section 2.1):

* the **periodic matching model**: a fixed set of matchings covering every
  edge (obtained from a proper edge colouring) is used cyclically with period
  ``d~``;
* the **random matching model**: every round an independent random matching is
  generated.

A schedule is an object that answers "which matching is active in round
``t``?".  Crucially, a single schedule instance can be shared between the
continuous process and any number of discretizations so that all of them see
*exactly the same* matchings — this coupling is what the additivity argument
of the paper (Definition 3, footnote 6) requires.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..exceptions import ScheduleError
from .graph import Edge, Network

__all__ = [
    "MatchingSchedule",
    "PeriodicMatchingSchedule",
    "RandomMatchingSchedule",
    "SingleMatchingSchedule",
    "edge_coloring",
    "validate_matching",
]


def validate_matching(network: Network, matching: Sequence[Edge]) -> Tuple[Edge, ...]:
    """Validate that ``matching`` is a matching of ``network`` and canonicalise it.

    Raises
    ------
    ScheduleError
        If an edge is missing from the network or two edges share a node.
    """
    seen_nodes = set()
    canonical: List[Edge] = []
    for (u, v) in matching:
        if not network.has_edge(u, v):
            raise ScheduleError(f"edge {(u, v)} is not an edge of the network")
        edge = (u, v) if u < v else (v, u)
        if edge[0] in seen_nodes or edge[1] in seen_nodes:
            raise ScheduleError(f"edges in a matching must be disjoint; node clash at {edge}")
        seen_nodes.update(edge)
        canonical.append(edge)
    return tuple(sorted(canonical))


def edge_coloring(network: Network) -> List[Tuple[Edge, ...]]:
    """Return a proper edge colouring of the network as a list of matchings.

    Uses a greedy colouring of the line graph, which yields at most
    ``2 d - 1`` colours (the paper's periodic model assumes roughly ``d``
    matchings; greedy is within a factor two of that and keeps the
    implementation dependency-free).  Every edge appears in exactly one
    matching and every matching is non-empty.
    """
    if network.num_edges == 0:
        return []
    line_graph = nx.line_graph(network.graph)
    coloring = nx.coloring.greedy_color(line_graph, strategy="largest_first")
    buckets: Dict[int, List[Edge]] = {}
    for edge, color in coloring.items():
        u, v = edge
        canonical = (u, v) if u < v else (v, u)
        buckets.setdefault(color, []).append(canonical)
    matchings = [
        validate_matching(network, bucket) for _, bucket in sorted(buckets.items())
    ]
    return matchings


class MatchingSchedule:
    """Abstract base class: a (possibly random) sequence of matchings.

    Subclasses must implement :meth:`matching`.  Results are memoised so that
    the continuous process and every discrete process coupled to it observe
    the same matching for a given round, even across repeated queries.
    """

    def __init__(self, network: Network) -> None:
        self._network = network
        self._cache: Dict[int, Tuple[Edge, ...]] = {}

    @property
    def network(self) -> Network:
        """The network the schedule is defined on."""
        return self._network

    def matching(self, round_index: int) -> Tuple[Edge, ...]:
        """Return the matching active in round ``round_index`` (cached)."""
        if round_index < 0:
            raise ScheduleError("round index must be non-negative")
        if round_index not in self._cache:
            self._cache[round_index] = validate_matching(
                self._network, self._generate(round_index)
            )
        return self._cache[round_index]

    def _generate(self, round_index: int) -> Sequence[Edge]:
        raise NotImplementedError

    def reseed(self, seed: Optional[int] = None) -> None:
        """Restart the schedule from round 0 as if freshly constructed.

        Deterministic schedules only drop their memoised matchings; random
        schedules additionally re-initialise their generator from ``seed``.
        Sharing processes must be rewound together (the streaming engine's
        re-coupling does exactly that), otherwise they would observe different
        matchings for the same round index.
        """
        self._cache.clear()
        self._reseed_rng(seed)

    def _reseed_rng(self, seed: Optional[int]) -> None:
        """Hook for schedules that carry randomness."""

    @property
    def period(self) -> Optional[int]:
        """The period of the schedule, or ``None`` for aperiodic schedules."""
        return None


class PeriodicMatchingSchedule(MatchingSchedule):
    """Cycle through a fixed list of matchings (the periodic matching model).

    Parameters
    ----------
    network:
        The network.
    matchings:
        Optional explicit list of matchings.  When omitted, a proper edge
        colouring of the network is computed with :func:`edge_coloring`.
    """

    def __init__(self, network: Network, matchings: Optional[Sequence[Sequence[Edge]]] = None) -> None:
        super().__init__(network)
        if matchings is None:
            prepared = edge_coloring(network)
        else:
            prepared = [validate_matching(network, m) for m in matchings]
        if not prepared:
            raise ScheduleError("a periodic schedule needs at least one matching")
        covered = {edge for matching in prepared for edge in matching}
        missing = set(network.edges) - covered
        if missing:
            raise ScheduleError(
                f"periodic matchings must cover every edge; missing {sorted(missing)[:5]}"
            )
        self._matchings: List[Tuple[Edge, ...]] = list(prepared)

    @property
    def matchings(self) -> List[Tuple[Edge, ...]]:
        """The underlying list of matchings (one per colour)."""
        return list(self._matchings)

    @property
    def period(self) -> int:
        return len(self._matchings)

    def _generate(self, round_index: int) -> Sequence[Edge]:
        return self._matchings[round_index % len(self._matchings)]


class RandomMatchingSchedule(MatchingSchedule):
    """Generate an independent random matching every round.

    The sampling follows the classical distributed procedure of Ghosh and
    Muthukrishnan: edges are examined in a uniformly random order and greedily
    added to the matching when both endpoints are still free.  The schedule is
    seeded, and matchings are cached per round, so all coupled processes see
    identical randomness.
    """

    def __init__(self, network: Network, seed: Optional[int] = None) -> None:
        super().__init__(network)
        self._rng = np.random.default_rng(seed)
        self._edges = list(network.edges)

    def _reseed_rng(self, seed: Optional[int]) -> None:
        self._rng = np.random.default_rng(seed)

    def _generate(self, round_index: int) -> Sequence[Edge]:
        order = self._rng.permutation(len(self._edges))
        used = set()
        matching: List[Edge] = []
        for index in order:
            u, v = self._edges[index]
            if u in used or v in used:
                continue
            used.add(u)
            used.add(v)
            matching.append((u, v))
        return matching


class SingleMatchingSchedule(MatchingSchedule):
    """Use the same fixed matching in every round (useful for tests)."""

    def __init__(self, network: Network, matching: Sequence[Edge]) -> None:
        super().__init__(network)
        self._matching = validate_matching(network, matching)

    @property
    def period(self) -> int:
        return 1

    def _generate(self, round_index: int) -> Sequence[Edge]:
        return self._matching
