"""Network model for neighbourhood load balancing.

A :class:`Network` is an undirected graph whose nodes represent processors
(resources) and whose edges represent communication links.  Every node ``i``
carries an integer *speed* ``s_i >= 1`` (heterogeneous processing rates, see
Section 3 of the paper).  The class pre-computes the data every balancing
process needs each round: neighbour lists, degrees, the edge index used to
store per-edge flows, and convenience matrices (adjacency, Laplacian).

Nodes are always labelled ``0 .. n-1``.  Graphs supplied as
:class:`networkx.Graph` instances with arbitrary hashable labels are relabelled
to integers (the original labels are kept in :attr:`Network.node_labels`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..exceptions import NetworkError

__all__ = ["Edge", "Network"]

#: An undirected edge, always stored with ``u < v``.
Edge = Tuple[int, int]


def _canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical (sorted) representation of an undirected edge."""
    return (u, v) if u < v else (v, u)


class Network:
    """An undirected network of processors with per-node speeds.

    Parameters
    ----------
    graph:
        A :class:`networkx.Graph`.  Self loops are rejected; multi-edges are
        collapsed by networkx automatically.  The graph may be disconnected,
        but most balancing processes only make sense on connected graphs, so
        a warning-level validation helper :meth:`require_connected` is
        provided.
    speeds:
        Optional sequence of integer speeds, one per node, each ``>= 1``.
        Defaults to uniform speed 1.
    name:
        Optional human readable name (topology generators fill this in).

    Notes
    -----
    The per-edge flow bookkeeping used throughout the library indexes
    undirected edges by position in :attr:`edges`; :meth:`edge_index` maps an
    unordered node pair to that position.
    """

    def __init__(
        self,
        graph: nx.Graph,
        speeds: Optional[Sequence[float]] = None,
        name: Optional[str] = None,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise NetworkError("a network must contain at least one node")
        if any(u == v for u, v in graph.edges()):
            raise NetworkError("self loops are not allowed in a network")

        node_labels = list(graph.nodes())
        relabelled = nx.convert_node_labels_to_integers(
            graph, ordering="sorted" if _is_sortable(node_labels) else "default"
        )

        self._graph: nx.Graph = relabelled
        self.node_labels: List = sorted(node_labels) if _is_sortable(node_labels) else node_labels
        self.name: str = name or "network"

        self._n = relabelled.number_of_nodes()
        self._edges: List[Edge] = sorted(
            _canonical_edge(u, v) for u, v in relabelled.edges()
        )
        self._edge_index: Dict[Edge, int] = {e: k for k, e in enumerate(self._edges)}
        self._neighbors: List[Tuple[int, ...]] = [
            tuple(sorted(relabelled.neighbors(i))) for i in range(self._n)
        ]
        self._degrees = np.array([len(nbrs) for nbrs in self._neighbors], dtype=int)

        if speeds is None:
            speeds = np.ones(self._n, dtype=float)
        speeds = np.asarray(list(speeds), dtype=float)
        if speeds.shape != (self._n,):
            raise NetworkError(
                f"expected {self._n} speeds, got shape {speeds.shape}"
            )
        if np.any(speeds < 1):
            raise NetworkError("all speeds must be >= 1 (scale so min speed is 1)")
        if not np.all(np.isfinite(speeds)):
            raise NetworkError("speeds must be finite")
        self._speeds = speeds

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> nx.Graph:
        """The underlying :class:`networkx.Graph` with integer labels."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self._edges)

    @property
    def nodes(self) -> range:
        """The node identifiers ``0 .. n-1``."""
        return range(self._n)

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All undirected edges in canonical ``(u, v), u < v`` form."""
        return tuple(self._edges)

    @property
    def speeds(self) -> np.ndarray:
        """Per-node speeds (read-only copy)."""
        return self._speeds.copy()

    @property
    def total_speed(self) -> float:
        """The network capacity ``S = s_1 + ... + s_n``."""
        return float(self._speeds.sum())

    @property
    def degrees(self) -> np.ndarray:
        """Per-node degrees (read-only copy)."""
        return self._degrees.copy()

    @property
    def max_degree(self) -> int:
        """The maximum degree ``d`` of the network."""
        return int(self._degrees.max())

    @property
    def min_degree(self) -> int:
        """The minimum degree of the network."""
        return int(self._degrees.min())

    @property
    def is_regular(self) -> bool:
        """Whether every node has the same degree."""
        return bool(self._degrees.min() == self._degrees.max())

    @property
    def has_uniform_speeds(self) -> bool:
        """Whether every node has speed exactly 1."""
        return bool(np.all(self._speeds == 1.0))

    # ------------------------------------------------------------------ #
    # topology queries
    # ------------------------------------------------------------------ #

    def speed(self, node: int) -> float:
        """Return the speed of ``node``."""
        self._check_node(node)
        return float(self._speeds[node])

    def degree(self, node: int) -> int:
        """Return the degree of ``node``."""
        self._check_node(node)
        return int(self._degrees[node])

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """Return the sorted tuple of neighbours of ``node``."""
        self._check_node(node)
        return self._neighbors[node]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        return _canonical_edge(u, v) in self._edge_index

    def edge_index(self, u: int, v: int) -> int:
        """Return the index of edge ``{u, v}`` in :attr:`edges`.

        Raises
        ------
        NetworkError
            If the edge does not exist.
        """
        key = _canonical_edge(u, v)
        try:
            return self._edge_index[key]
        except KeyError:
            raise NetworkError(f"edge {key} does not exist") from None

    def incident_edges(self, node: int) -> List[int]:
        """Return the indices of all edges incident to ``node``."""
        self._check_node(node)
        return [self.edge_index(node, j) for j in self._neighbors[node]]

    def is_connected(self) -> bool:
        """Whether the network is connected (single-node networks are)."""
        if self._n == 1:
            return True
        return nx.is_connected(self._graph)

    def require_connected(self) -> None:
        """Raise :class:`NetworkError` unless the network is connected."""
        if not self.is_connected():
            raise NetworkError(
                f"network '{self.name}' must be connected for this operation"
            )

    def diameter(self) -> int:
        """Return the graph diameter (requires a connected network)."""
        self.require_connected()
        if self._n == 1:
            return 0
        return int(nx.diameter(self._graph))

    # ------------------------------------------------------------------ #
    # matrices
    # ------------------------------------------------------------------ #

    def adjacency_matrix(self) -> np.ndarray:
        """Return the dense ``n x n`` adjacency matrix."""
        a = np.zeros((self._n, self._n), dtype=float)
        for u, v in self._edges:
            a[u, v] = 1.0
            a[v, u] = 1.0
        return a

    def laplacian_matrix(self) -> np.ndarray:
        """Return the dense combinatorial Laplacian ``L = D - A``."""
        lap = -self.adjacency_matrix()
        np.fill_diagonal(lap, self._degrees.astype(float))
        return lap

    # ------------------------------------------------------------------ #
    # derived networks
    # ------------------------------------------------------------------ #

    def with_speeds(self, speeds: Sequence[float]) -> "Network":
        """Return a copy of this network with different node speeds."""
        return Network(self._graph.copy(), speeds=speeds, name=self.name)

    def subnetwork(self, nodes: Iterable[int]) -> "Network":
        """Return the sub-network induced by ``nodes`` (relabelled 0..k-1)."""
        nodes = sorted(set(nodes))
        for node in nodes:
            self._check_node(node)
        sub = self._graph.subgraph(nodes).copy()
        speeds = [self._speeds[node] for node in nodes]
        return Network(sub, speeds=speeds, name=f"{self.name}[sub]")

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network(name={self.name!r}, n={self._n}, m={self.num_edges}, "
            f"max_degree={self.max_degree}, uniform_speeds={self.has_uniform_speeds})"
        )

    def _check_node(self, node: int) -> None:
        if not (isinstance(node, (int, np.integer)) and 0 <= node < self._n):
            raise NetworkError(f"node {node!r} is not a valid node id (0..{self._n - 1})")


def _is_sortable(labels: List) -> bool:
    """Whether a list of node labels can be sorted with ``sorted``."""
    try:
        sorted(labels)
        return True
    except TypeError:
        return False
