"""Spectral toolkit: diffusion matrices, eigenvalues and predicted balancing times.

The convergence of every continuous process in the paper is governed by the
spectrum of its diffusion matrix ``P`` (Section 2.1):

* first-order diffusion (FOS) balances in ``T = O(log(K n) / (1 - lambda))``
  rounds, where ``lambda`` is the second largest eigenvalue of ``P`` in
  absolute value and ``K`` the initial discrepancy;
* the second-order scheme (SOS) with the optimal relaxation parameter
  ``beta = 2 / (1 + sqrt(1 - lambda^2))`` balances in
  ``T = O(log(K n) / sqrt(1 - lambda))`` rounds;
* the random matching model balances in ``T = O(d log(K n) / gamma)`` rounds,
  where ``gamma`` is the second smallest eigenvalue of the Laplacian.

This module builds the (speed-aware) diffusion matrices, extracts ``lambda``
and ``gamma`` and evaluates the predicted balancing times, which the
benchmarks compare against the empirically measured convergence of the
continuous processes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..exceptions import NetworkError, ProcessError
from .graph import Edge, Network

__all__ = [
    "AlphaScheme",
    "compute_alphas",
    "diffusion_matrix",
    "second_largest_eigenvalue",
    "laplacian_second_smallest",
    "spectral_gap",
    "optimal_sos_beta",
    "SpectralSummary",
    "spectral_summary",
    "predicted_fos_rounds",
    "predicted_sos_rounds",
    "predicted_random_matching_rounds",
]


class AlphaScheme:
    """Named schemes for the symmetric edge weights ``alpha_{i,j}``.

    The FOS/SOS round equations (Equations (1), (2) and (4) of the paper)
    are parameterised by symmetric values ``alpha_{i,j} = alpha_{j,i}``
    subject to ``sum_{j in N(i)} alpha_{i,j} < s_i``.  The schemes below
    generalise the two "common choices" quoted in the paper to heterogeneous
    speeds by scaling with ``min(s_i, s_j)``; for uniform speeds they reduce
    exactly to the textbook values.
    """

    #: ``alpha_{i,j} = min(s_i, s_j) / (max(d_i, d_j) + 1)``
    MAX_DEGREE_PLUS_ONE = "max-degree-plus-one"
    #: ``alpha_{i,j} = min(s_i, s_j) / (2 * max(d_i, d_j))``
    HALF_MAX_DEGREE = "half-max-degree"
    #: ``alpha_{i,j} = min(s_i, s_j) / (d + 1)`` with ``d`` the global max degree
    GLOBAL_DEGREE = "global-degree"

    ALL = (MAX_DEGREE_PLUS_ONE, HALF_MAX_DEGREE, GLOBAL_DEGREE)


def compute_alphas(network: Network, scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE) -> Dict[Edge, float]:
    """Compute the symmetric diffusion weights ``alpha_{i,j}`` for every edge.

    Parameters
    ----------
    network:
        The network (its speeds and degrees determine the weights).
    scheme:
        One of the :class:`AlphaScheme` names.

    Returns
    -------
    dict
        Mapping from canonical edge ``(u, v)`` (``u < v``) to ``alpha_{u,v}``.
    """
    degrees = network.degrees
    speeds = network.speeds
    d_max = network.max_degree
    alphas: Dict[Edge, float] = {}
    for (u, v) in network.edges:
        smin = min(speeds[u], speeds[v])
        if scheme == AlphaScheme.MAX_DEGREE_PLUS_ONE:
            denom = max(degrees[u], degrees[v]) + 1
        elif scheme == AlphaScheme.HALF_MAX_DEGREE:
            denom = 2 * max(degrees[u], degrees[v])
        elif scheme == AlphaScheme.GLOBAL_DEGREE:
            denom = d_max + 1
        else:
            raise ProcessError(
                f"unknown alpha scheme {scheme!r}; valid schemes: {AlphaScheme.ALL}"
            )
        alphas[(u, v)] = float(smin) / float(denom)
    _validate_alphas(network, alphas)
    return alphas


def _validate_alphas(network: Network, alphas: Dict[Edge, float]) -> None:
    """Check ``alpha_{i,j} > 0`` and ``sum_{j in N(i)} alpha_{i,j} < s_i``."""
    sums = np.zeros(network.num_nodes)
    for (u, v), value in alphas.items():
        if value <= 0:
            raise ProcessError(f"alpha for edge {(u, v)} must be positive, got {value}")
        sums[u] += value
        sums[v] += value
    speeds = network.speeds
    bad = np.nonzero(sums >= speeds)[0]
    if bad.size > 0:
        node = int(bad[0])
        raise ProcessError(
            f"alpha weights violate sum_j alpha_ij < s_i at node {node}: "
            f"sum={sums[node]:.4f} >= s={speeds[node]:.4f}"
        )


def diffusion_matrix(
    network: Network,
    alphas: Optional[Dict[Edge, float]] = None,
    scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE,
) -> np.ndarray:
    """Return the dense diffusion matrix ``P`` of the FOS process.

    ``P_{i,j} = alpha_{i,j} / s_i`` for neighbours, ``P_{i,i} = 1 - sum_j
    alpha_{i,j} / s_i`` and zero elsewhere.  ``P`` is row-stochastic, and the
    vector of speeds is a left fixed point, so repeatedly applying ``x P``
    converges to the speed-proportional balanced allocation.
    """
    if alphas is None:
        alphas = compute_alphas(network, scheme)
    n = network.num_nodes
    speeds = network.speeds
    matrix = np.zeros((n, n), dtype=float)
    for (u, v), alpha in alphas.items():
        matrix[u, v] = alpha / speeds[u]
        matrix[v, u] = alpha / speeds[v]
    np.fill_diagonal(matrix, 1.0 - matrix.sum(axis=1))
    return matrix


def second_largest_eigenvalue(matrix: np.ndarray) -> float:
    """Return ``lambda``: the second largest eigenvalue of ``matrix`` in absolute value.

    For non-symmetric matrices (heterogeneous speeds) we symmetrise with the
    similarity transform ``D^{1/2} P D^{-1/2}`` where ``D`` is the diagonal of
    the stationary distribution; eigenvalues are preserved and real.
    Falls back to a general eigen-decomposition when the matrix is not
    reversible.
    """
    n = matrix.shape[0]
    if n == 1:
        return 0.0
    if np.allclose(matrix, matrix.T, atol=1e-12):
        eigenvalues = np.linalg.eigvalsh(matrix)
    else:
        eigenvalues = np.linalg.eigvals(matrix)
    magnitudes = np.sort(np.abs(eigenvalues))[::-1]
    # The largest is 1 (stochastic matrix); guard against numerical noise.
    return float(min(magnitudes[1], 1.0))


def laplacian_second_smallest(network: Network) -> float:
    """Return ``gamma``: the algebraic connectivity (second smallest Laplacian eigenvalue)."""
    if network.num_nodes == 1:
        return 0.0
    eigenvalues = np.linalg.eigvalsh(network.laplacian_matrix())
    return float(np.sort(eigenvalues)[1])


def spectral_gap(matrix: np.ndarray) -> float:
    """Return ``1 - lambda`` for the given diffusion matrix."""
    return 1.0 - second_largest_eigenvalue(matrix)


def optimal_sos_beta(lambda_value: float) -> float:
    """Return the optimal SOS relaxation parameter ``beta = 2 / (1 + sqrt(1 - lambda^2))``."""
    if not 0.0 <= lambda_value < 1.0:
        raise ProcessError(f"lambda must lie in [0, 1), got {lambda_value}")
    return 2.0 / (1.0 + math.sqrt(1.0 - lambda_value**2))


@dataclass(frozen=True)
class SpectralSummary:
    """Summary of the spectral quantities governing convergence.

    Attributes
    ----------
    lambda_value:
        Second largest eigenvalue (absolute value) of the diffusion matrix.
    gap:
        ``1 - lambda_value``.
    gamma:
        Second smallest eigenvalue of the graph Laplacian.
    optimal_beta:
        The optimal SOS relaxation parameter for this ``lambda``.
    """

    lambda_value: float
    gap: float
    gamma: float
    optimal_beta: float


def spectral_summary(network: Network, scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE) -> SpectralSummary:
    """Compute the :class:`SpectralSummary` of ``network`` under an alpha scheme."""
    network.require_connected()
    matrix = diffusion_matrix(network, scheme=scheme)
    lam = second_largest_eigenvalue(matrix)
    gamma = laplacian_second_smallest(network)
    beta = optimal_sos_beta(min(lam, 1.0 - 1e-12))
    return SpectralSummary(lambda_value=lam, gap=1.0 - lam, gamma=gamma, optimal_beta=beta)


def _log_term(initial_discrepancy: float, n: int) -> float:
    return math.log(max(initial_discrepancy, 2.0) * max(n, 2))


def predicted_fos_rounds(network: Network, initial_discrepancy: float,
                         scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE) -> float:
    """Predicted FOS balancing time ``log(K n) / (1 - lambda)`` (up to constants)."""
    summary = spectral_summary(network, scheme)
    if summary.gap <= 0:
        raise ConvergenceWarningError(network)
    return _log_term(initial_discrepancy, network.num_nodes) / summary.gap


def predicted_sos_rounds(network: Network, initial_discrepancy: float,
                         scheme: str = AlphaScheme.MAX_DEGREE_PLUS_ONE) -> float:
    """Predicted SOS balancing time ``log(K n) / sqrt(1 - lambda)`` (up to constants)."""
    summary = spectral_summary(network, scheme)
    if summary.gap <= 0:
        raise ConvergenceWarningError(network)
    return _log_term(initial_discrepancy, network.num_nodes) / math.sqrt(summary.gap)


def predicted_random_matching_rounds(network: Network, initial_discrepancy: float) -> float:
    """Predicted random-matching balancing time ``d log(K n) / gamma`` (up to constants)."""
    gamma = laplacian_second_smallest(network)
    if gamma <= 0:
        raise ConvergenceWarningError(network)
    return network.max_degree * _log_term(initial_discrepancy, network.num_nodes) / gamma


class ConvergenceWarningError(NetworkError):
    """Raised when a spectral prediction is requested for a non-ergodic network."""

    def __init__(self, network: Network) -> None:
        super().__init__(
            f"network {network.name!r} has a zero spectral gap; "
            "the continuous process does not converge"
        )
