"""Pluggable load-state backends: object-per-token vs numpy count vectors.

See :mod:`repro.backend.base` for the registry and the semantics of the
``backend=`` parameter threaded through the simulation engine, the dynamic
streaming engine and the CLI.
"""

from .base import (
    BACKEND_KINDS,
    ArrayBackend,
    LoadBackend,
    ObjectBackend,
    get_backend,
    resolve_backend_name,
)
from .baselines import (
    ArrayQuasirandomDiffusion,
    ArrayRandomizedRoundingDiffusion,
    ArrayRoundDownDiffusion,
    ArrayRoundDownSecondOrder,
)
from .flow import (
    ArrayDeterministicFlowImitation,
    ArrayFlowImitation,
    ArrayRandomizedFlowImitation,
)
from .state import TokenCountState

__all__ = [
    "BACKEND_KINDS",
    "LoadBackend",
    "ObjectBackend",
    "ArrayBackend",
    "get_backend",
    "resolve_backend_name",
    "ArrayFlowImitation",
    "ArrayDeterministicFlowImitation",
    "ArrayRandomizedFlowImitation",
    "ArrayRoundDownDiffusion",
    "ArrayRoundDownSecondOrder",
    "ArrayQuasirandomDiffusion",
    "ArrayRandomizedRoundingDiffusion",
    "TokenCountState",
]
