"""Pluggable load-state backends: object-per-token vs numpy count vectors.

See :mod:`repro.backend.base` for the registry and the semantics of the
``backend=`` parameter threaded through the simulation engine, the dynamic
streaming engine and the CLI.
"""

from .base import (
    BACKEND_KINDS,
    ArrayBackend,
    BackendChoice,
    LoadBackend,
    ObjectBackend,
    get_backend,
    resolve_backend,
    resolve_backend_name,
)
from .baselines import (
    ArrayExcessTokenDiffusion,
    ArrayQuasirandomDiffusion,
    ArrayRandomizedRoundingDiffusion,
    ArrayRoundDownDiffusion,
    ArrayRoundDownSecondOrder,
)
from .flow import (
    ArrayDeterministicFlowImitation,
    ArrayFlowImitation,
    ArrayRandomizedFlowImitation,
)
from .state import TokenCountState
from .weighted import ArrayWeightedDeterministicFlowImitation, WeightedRunState

__all__ = [
    "BACKEND_KINDS",
    "BackendChoice",
    "LoadBackend",
    "ObjectBackend",
    "ArrayBackend",
    "get_backend",
    "resolve_backend",
    "resolve_backend_name",
    "ArrayFlowImitation",
    "ArrayDeterministicFlowImitation",
    "ArrayRandomizedFlowImitation",
    "ArrayWeightedDeterministicFlowImitation",
    "ArrayRoundDownDiffusion",
    "ArrayRoundDownSecondOrder",
    "ArrayQuasirandomDiffusion",
    "ArrayRandomizedRoundingDiffusion",
    "ArrayExcessTokenDiffusion",
    "TokenCountState",
    "WeightedRunState",
]
