"""Columnar unit-token state: count vectors plus run-length FIFO queues.

The array backend stores the workload of every node as a single ``int64``
count (one entry per node) instead of one Python object per token.  Token
identity is irrelevant for unit-weight tokens with one exception: whether a
token is *real* or a *dummy* drawn from the paper's infinite source, because
dummy tokens are eliminated at the end (and at every re-coupling boundary of
a dynamic stream) and their per-node distribution therefore feeds back into
the real workload.

The object backend resolves real-vs-dummy through FIFO queues of task
objects.  :class:`TokenCountState` reproduces those semantics exactly with
*run-length* queues: each node holds a deque of ``[count, is_dummy]`` runs.
While no dummy exists anywhere the queues are not materialised at all —
every token is real and interchangeable, so per-round work is a handful of
vectorised scatter-adds.  Only when a node has to draw from the infinite
source do the queues come into existence, and even then the per-round cost
is proportional to the number of *transfers*, never to the number of tokens.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from ..exceptions import TaskError

__all__ = ["TokenCountState"]

#: A run of consecutive queue positions holding the same token kind.
#: Mutable on purpose: partial pops shrink the head run in place.
Run = List  # [count: int, is_dummy: bool]


class TokenCountState:
    """Per-node unit-token counts with object-backend-faithful FIFO semantics."""

    def __init__(self, counts: np.ndarray) -> None:
        counts = np.asarray(counts)
        if counts.ndim != 1:
            raise TaskError("token counts must be a one-dimensional vector")
        if np.any(counts < 0):
            raise TaskError("token counts must be non-negative")
        self.counts = counts.astype(np.int64)
        self.dummy_counts = np.zeros(counts.shape[0], dtype=np.int64)
        self._dummy_total = 0
        self._queues: Optional[List[Deque[Run]]] = None

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def dummy_total(self) -> int:
        """Total number of dummy tokens currently in the system."""
        return self._dummy_total

    def loads(self, include_dummies: bool = True) -> np.ndarray:
        """Return the load vector as floats (matching the object backend)."""
        if include_dummies:
            return self.counts.astype(float)
        return (self.counts - self.dummy_counts).astype(float)

    # ------------------------------------------------------------------ #
    # queue lifecycle
    # ------------------------------------------------------------------ #

    def materialize_queues(self) -> None:
        """Create the run queues if they do not exist yet.

        Only legal while no dummy exists: then every queue is all-real and a
        single run per node is exactly the object backend's queue state (the
        order of indistinguishable real tokens cannot be observed).
        """
        if self._queues is not None:
            return
        if self._dummy_total:
            raise TaskError("cannot rebuild queues while dummy tokens exist")
        self._queues = [
            deque([[int(count), False]]) if count else deque()
            for count in self.counts.tolist()
        ]

    def drop_queues(self) -> None:
        """Forget the run queues (legal only while no dummy exists)."""
        if self._dummy_total:
            raise TaskError("cannot drop queues while dummy tokens exist")
        self._queues = None

    # ------------------------------------------------------------------ #
    # FIFO moves (queue path)
    # ------------------------------------------------------------------ #

    def pop_front(self, node: int, amount: int) -> Tuple[List[Run], int]:
        """Pop up to ``amount`` tokens from the head of ``node``'s queue.

        Returns ``(runs, missing)`` where ``runs`` preserves the popped order
        and ``missing`` is how many tokens the node was short of — the number
        of dummies the caller must draw from the infinite source.
        """
        queue = self._queues[node]
        runs: List[Run] = []
        popped_real = 0
        popped_dummy = 0
        need = amount
        while need and queue:
            head = queue[0]
            take = min(head[0], need)
            if take == head[0]:
                queue.popleft()
            else:
                head[0] -= take
            runs.append([take, head[1]])
            if head[1]:
                popped_dummy += take
            else:
                popped_real += take
            need -= take
        self.counts[node] -= popped_real + popped_dummy
        self.dummy_counts[node] -= popped_dummy
        self._dummy_total -= popped_dummy
        return runs, need

    def push(self, node: int, runs: List[Run]) -> None:
        """Append popped runs to the tail of ``node``'s queue (order preserved)."""
        queue = self._queues[node]
        for count, is_dummy in runs:
            if queue and queue[-1][1] == is_dummy:
                queue[-1][0] += count
            else:
                queue.append([count, is_dummy])
            self.counts[node] += count
            if is_dummy:
                self.dummy_counts[node] += count
                self._dummy_total += count

    def push_dummies(self, node: int, count: int) -> None:
        """Create ``count`` fresh dummy tokens at the tail of ``node``'s queue."""
        self.push(node, [[count, True]])

    # ------------------------------------------------------------------ #
    # dummy elimination
    # ------------------------------------------------------------------ #

    def remove_dummies(self) -> int:
        """Drop every dummy token (the paper's final clean-up step)."""
        removed = self._dummy_total
        self.counts -= self.dummy_counts
        self.dummy_counts[:] = 0
        self._dummy_total = 0
        self._queues = None
        return removed
