"""Vectorized rounding baselines for the array backend.

The literature baselines already keep their state as an ``int64`` load vector
(:class:`~repro.discrete.base.IntegerLoadBalancer` is columnar by
construction), so the array backend shares their rounding logic and only
replaces the one remaining per-edge Python loop — applying the rounded net
moves — with scatter-adds.  The results are bit-identical: the same integer
amounts move over the same edges, and the negative-load flag is evaluated on
the same post-round vector.

:class:`~repro.discrete.baselines.diffusion.ExcessTokenDiffusion` in its
default *sequential* rng mode is not specialised here: its per-node random
choices are consumed from one shared generator in node order, which a
vectorised rewrite could not reproduce.  In the **counter** rng mode
(``rng_mode="counter"``, Philox keyed on ``(seed, round)`` with per-node
score rows) the draws are order-free, and
:class:`ArrayExcessTokenDiffusion` batches the whole round — directed
floors, excess counts and the random candidate selection — into a handful of
array operations, bit-identical to the scalar counter-mode reference.  The
matching baselines touch at most ``n/2`` edges per round and stay shared.
"""

from __future__ import annotations

import numpy as np

from ..discrete.baselines.diffusion import (
    ExcessTokenDiffusion,
    QuasirandomDiffusion,
    RandomizedRoundingDiffusion,
    RoundDownDiffusion,
    RoundDownSecondOrder,
)
from ..exceptions import ProcessError
from ..obs.kernels import kernel_phase

__all__ = [
    "ArrayRoundDownDiffusion",
    "ArrayRoundDownSecondOrder",
    "ArrayQuasirandomDiffusion",
    "ArrayRandomizedRoundingDiffusion",
    "ArrayExcessTokenDiffusion",
]


class _VectorizedNetMoves:
    """Apply rounded per-edge net moves with scatter-adds instead of a loop."""

    def _apply_net_moves(self, sent: np.ndarray) -> None:
        sent = np.asarray(sent, dtype=np.int64)
        np.subtract.at(self._loads, self._sources, sent)
        np.add.at(self._loads, self._targets, sent)
        if np.any(self._loads < 0):
            self._went_negative = True


class ArrayRoundDownDiffusion(_VectorizedNetMoves, RoundDownDiffusion):
    """Rabani et al. round-down diffusion with vectorised move application."""


class ArrayRoundDownSecondOrder(_VectorizedNetMoves, RoundDownSecondOrder):
    """Discrete second-order round-down with vectorised move application."""


class ArrayQuasirandomDiffusion(_VectorizedNetMoves, QuasirandomDiffusion):
    """Quasirandom (bounded-error) diffusion with vectorised move application."""


class ArrayRandomizedRoundingDiffusion(_VectorizedNetMoves, RandomizedRoundingDiffusion):
    """Randomized-rounding diffusion with vectorised move application.

    Works in both rng modes: the rounding maths and the per-round draw block
    are shared verbatim with the scalar class, so the kernel is bit-identical
    to it under either mode; ``rng_mode="counter"`` additionally makes each
    edge's draw a pure function of ``(seed, round, edge)`` (see
    :mod:`repro.counter_rng`), so the trajectory is replayable independently
    of edge iteration order.
    """


class ArrayExcessTokenDiffusion(ExcessTokenDiffusion):
    """Fully vectorised excess-token forwarding (counter rng mode only).

    The scalar counter-mode reference (:class:`ExcessTokenDiffusion` with
    ``rng_mode="counter"``) already computes the directed floors and per-node
    excess through the shared vectorised ``_counter_flow_plan``; this kernel
    additionally batches the random candidate selection — the ``excess``
    smallest entries of each node's per-round Philox score row — with one
    stable argsort over the whole score block, and applies every transfer
    with scatter-adds.  The per-round cost is O(n·d log d) array work with no
    Python loop over nodes; trajectories are bit-identical to the scalar
    reference by construction (asserted in ``tests/discrete/test_counter_rng.py``).
    """

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("rng_mode", "counter")
        super().__init__(*args, **kwargs)
        if self.rng_mode != "counter":
            raise ProcessError(
                "the vectorised excess-token kernel requires rng_mode='counter'; "
                "sequential draws are order-sensitive and cannot be batched"
            )

    def _execute_round(self) -> None:
        with kernel_phase("baseline/excess-array"):
            self._vectorized_round()

    def _vectorized_round(self) -> None:
        floors, excess = self._counter_flow_plan()
        degrees = self.network.degrees
        num_candidates = degrees + 1  # every node may also keep a token
        counts = np.minimum(excess, num_candidates)

        max_candidates = int(num_candidates.max())
        columns = np.arange(max_candidates)[np.newaxis, :]
        valid = columns < num_candidates[:, np.newaxis]
        if self._strategy == "random":
            scores = self._counter_scores(self._round)
            scores = np.where(valid, scores, np.inf)
            order = np.argsort(scores, axis=1, kind="stable")
            ranks = np.empty_like(order)
            np.put_along_axis(ranks, order,
                              np.broadcast_to(columns, order.shape).copy(), axis=1)
            chosen = ranks < counts[:, np.newaxis]
        else:  # round-robin: slots offset..offset+count-1 modulo the candidate count
            relative = (columns - self._round_robin_offsets[:, np.newaxis]) \
                % num_candidates[:, np.newaxis]
            chosen = valid & (relative < counts[:, np.newaxis])
            self._round_robin_offsets = (self._round_robin_offsets + counts) \
                % num_candidates

        # Column j < degree(i) is node i's j-th neighbour; column degree(i)
        # is the node itself (a token "sent to itself" is simply kept).
        neighbor_mask = columns < degrees[:, np.newaxis]
        extra = (chosen & neighbor_mask)[neighbor_mask].astype(np.int64)
        sent = floors + extra
        np.subtract.at(self._loads, self._dir_src, sent)
        np.add.at(self._loads, self._dir_dst, sent)
        if np.any(self._loads < 0):
            self._went_negative = True
