"""Vectorized rounding baselines for the array backend.

The literature baselines already keep their state as an ``int64`` load vector
(:class:`~repro.discrete.base.IntegerLoadBalancer` is columnar by
construction), so the array backend shares their rounding logic and only
replaces the one remaining per-edge Python loop — applying the rounded net
moves — with scatter-adds.  The results are bit-identical: the same integer
amounts move over the same edges, and the negative-load flag is evaluated on
the same post-round vector.

:class:`~repro.discrete.baselines.diffusion.ExcessTokenDiffusion` and the
matching baselines are *not* specialised here: excess-token forwarding draws
per-node random choices whose order a vectorised rewrite could not reproduce,
and the matching baselines touch at most ``n/2`` edges per round anyway.
Both are already O(n·d) per round with no per-token state, so the array
backend simply reuses the shared implementations for them.
"""

from __future__ import annotations

import numpy as np

from ..discrete.baselines.diffusion import (
    QuasirandomDiffusion,
    RandomizedRoundingDiffusion,
    RoundDownDiffusion,
    RoundDownSecondOrder,
)

__all__ = [
    "ArrayRoundDownDiffusion",
    "ArrayRoundDownSecondOrder",
    "ArrayQuasirandomDiffusion",
    "ArrayRandomizedRoundingDiffusion",
]


class _VectorizedNetMoves:
    """Apply rounded per-edge net moves with scatter-adds instead of a loop."""

    def _apply_net_moves(self, sent: np.ndarray) -> None:
        sent = np.asarray(sent, dtype=np.int64)
        np.subtract.at(self._loads, self._sources, sent)
        np.add.at(self._loads, self._targets, sent)
        if np.any(self._loads < 0):
            self._went_negative = True


class ArrayRoundDownDiffusion(_VectorizedNetMoves, RoundDownDiffusion):
    """Rabani et al. round-down diffusion with vectorised move application."""


class ArrayRoundDownSecondOrder(_VectorizedNetMoves, RoundDownSecondOrder):
    """Discrete second-order round-down with vectorised move application."""


class ArrayQuasirandomDiffusion(_VectorizedNetMoves, QuasirandomDiffusion):
    """Quasirandom (bounded-error) diffusion with vectorised move application."""


class ArrayRandomizedRoundingDiffusion(_VectorizedNetMoves, RandomizedRoundingDiffusion):
    """Randomized-rounding diffusion with vectorised move application."""
