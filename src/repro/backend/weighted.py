"""Columnar weighted-task state and Algorithm 1 on weight buckets.

This module lifts the array backend's last restriction: weighted
:class:`~repro.tasks.assignment.TaskAssignment` workloads no longer fall
back to the object-per-task path.  The state (:class:`WeightedRunState`)
stores, per node, a *run-length queue* of ``[count, weight, is_dummy]``
runs — the weighted generalisation of the unit-token run queues in
:mod:`repro.backend.state` — plus int64 load and dummy-count vectors, all
derived from the CSR weight buckets of
:class:`~repro.tasks.weighted.WeightedLoads`.

:class:`ArrayWeightedDeterministicFlowImitation` runs the paper's Algorithm 1
on this state.  Per round it computes the per-edge residual flows and orders
the requests exactly like the object backend (senders ascending, receivers
ascending within a sender), then executes one of two kernels:

* **Single-weight-class fast path** — while every task in the system shares
  one weight ``w`` and no dummy exists, queue order is unobservable (all
  tasks are interchangeable), so the round collapses to the unit-token
  scatter-add kernel scaled by ``w``: the per-edge send count is
  ``floor(residual)`` for unit tokens and the closed form of the pseudocode's
  greedy while-loop (:func:`_take_counts_vector`) for ``w > 1``, and — as
  long as every sender covers its plans with its own tasks — the transfers
  reduce to two scatter-adds on the load vector.  No Python loop over edges
  remains; the run queues stay implicit (a single run per node) and are only
  materialised again on demand.

* **Grouped-per-sender general path** — once weight classes mix or dummies
  exist, queue order matters and the plans are replayed per *run* instead of
  per task: the active edges are grouped by sender and each group is planned
  in one :meth:`WeightedRunState.plan_sender` call that walks the sender's
  queue with the exact closed form

      ``k = |{ i >= 0 : residual - (committed + i * w) > w_max + 1e-9 }|``

  (:func:`_take_count`), evaluating the float comparison at the boundaries so
  the count is exactly what the object backend's one-task-at-a-time loop
  would produce.  Deliveries are applied in plan order (the FIFO contract)
  while the cumulative-flow and report bookkeeping is batched with numpy.

Because the paper's task weights are integers, every weight, committed sum
and load value is exactly representable in float64, and the two backends
agree bit for bit on loads, cumulative flows and dummy distributions
(enforced by ``tests/backend/test_weighted_equivalence.py``).

The per-round cost is O(m) array work on the fast path and
O(m + runs touched) on the general path — independent of the number of
tasks ``W`` — versus the object backend's O(W) queue snapshots and per-task
moves, which is what makes 10^5-task weighted dynamic streams feasible.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..continuous.base import ContinuousProcess
from ..core.algorithm1 import theorem3_discrepancy_bound
from ..core.flow_imitation import FlowCoupledBalancer, RoundReport, TaskSelectionPolicy
from ..exceptions import ProcessError, TaskError
from ..obs.kernels import kernel_phase
from ..tasks.assignment import TaskAssignment
from ..tasks.load import as_token_counts
from ..tasks.weighted import WeightedLoads, task_integer_weight

__all__ = ["WeightedRunState", "ArrayWeightedDeterministicFlowImitation"]

#: A run of consecutive queue positions holding interchangeable tasks.
#: Mutable on purpose: partial takes shrink the run in place.
Run = List  # [count: int, weight: int, is_dummy: bool]

#: Effectively unbounded cap for dummy draws from the infinite source.
_NO_CAP = 1 << 62


def _take_count(residual: float, committed: float, weight: float,
                cap: int, threshold: float) -> int:
    """How many tasks of ``weight`` the pseudocode's while-loop takes.

    Replays ``while residual - committed > threshold: committed += weight``
    in closed form: an arithmetic estimate followed by boundary fix-ups that
    evaluate the *same float comparison* the scalar loop evaluates, so the
    count matches the object backend exactly even at rounding boundaries.
    """
    if cap <= 0 or not residual - committed > threshold:
        return 0
    estimate = int((residual - threshold - committed) / weight) + 1
    k = min(cap, max(1, estimate))
    while k > 1 and not residual - (committed + (k - 1) * weight) > threshold:
        k -= 1
    while k < cap and residual - (committed + k * weight) > threshold:
        k += 1
    return k


def _take_counts_vector(residual: np.ndarray, weight: float,
                        threshold: float) -> np.ndarray:
    """Uncapped :func:`_take_count` (``committed = 0``) for a residual vector.

    The arithmetic estimate and both boundary fix-up loops evaluate the same
    float64 comparisons as the scalar closed form, element-wise, so the
    vectorised counts are bit-identical to calling :func:`_take_count` per
    edge.  The fix-up loops run until no element needs adjusting (one pass in
    all but pathological rounding cases).
    """
    counts = np.zeros(residual.size, dtype=np.int64)
    active = residual > threshold
    if not np.any(active):
        return counts
    taking = residual[active]
    k = ((taking - threshold) / weight).astype(np.int64) + 1
    np.maximum(k, 1, out=k)
    while True:
        over = (k > 1) & ~(taking - (k - 1) * weight > threshold)
        if not np.any(over):
            break
        k[over] -= 1
    while True:
        under = taking - k * weight > threshold
        if not np.any(under):
            break
        k[under] += 1
    counts[active] = k
    return counts


class WeightedRunState:
    """Per-node weighted task multisets with object-backend-faithful FIFO order.

    Every node holds a list of runs ``[count, weight, is_dummy]`` in queue
    order; tasks of equal weight and dummy status are interchangeable, so the
    run queue is exactly the object backend's task deque up to identity.

    While all tasks share a single weight class and no dummy exists, the
    queues may be dropped entirely (``single_class`` mode): each node's queue
    is then the implicit single run ``[load // w, w, False]``, rebuilt on
    demand — which is what lets the fast-path round skip queue maintenance
    altogether.  The maximum run weight and the per-node real weight buckets
    are cached instead of being re-derived by scanning all queues per call.
    """

    def __init__(self, queues: List[List[Run]], num_nodes: int) -> None:
        self._queues: Optional[List[List[Run]]] = queues
        self.loads = np.zeros(num_nodes, dtype=np.int64)
        self.dummy_counts = np.zeros(num_nodes, dtype=np.int64)
        max_weight = 0
        classes: set = set()
        any_dummy = False
        for node, queue in enumerate(queues):
            for count, weight, is_dummy in queue:
                self.loads[node] += count * weight
                if is_dummy:
                    self.dummy_counts[node] += count
                    any_dummy = True
                else:
                    classes.add(weight)
                if weight > max_weight:
                    max_weight = weight
        self._max_weight = max_weight
        if any_dummy or len(classes) > 1:
            self._single_class: Optional[int] = None
        else:
            self._single_class = next(iter(classes)) if classes else 1
        self._buckets_cache: Optional[List[Dict[int, int]]] = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_weighted_loads(cls, weighted: WeightedLoads) -> "WeightedRunState":
        """Canonical construction: one run per bucket, ascending weight."""
        queues = [
            [[count, weight, False] for weight, count in weighted.node_buckets(node)]
            for node in range(weighted.num_nodes)
        ]
        return cls(queues, weighted.num_nodes)

    @classmethod
    def from_assignment(cls, assignment: TaskAssignment) -> "WeightedRunState":
        """Snapshot an assignment preserving its actual queue order."""
        queues: List[List[Run]] = []
        for node in assignment.network.nodes:
            queue: List[Run] = []
            for task in assignment.tasks_at(node):
                weight = task_integer_weight(task)
                if weight is None:
                    raise TaskError(
                        f"task {task.task_id} has non-integer weight {task.weight}; "
                        "the columnar weighted backend requires integer weights")
                if queue and queue[-1][1] == weight and queue[-1][2] == task.is_dummy:
                    queue[-1][0] += 1
                else:
                    queue.append([1, weight, task.is_dummy])
            queues.append(queue)
        return cls(queues, assignment.network.num_nodes)

    # ------------------------------------------------------------------ #
    # cache/queue lifecycle
    # ------------------------------------------------------------------ #

    def _touch(self) -> None:
        """Invalidate derived caches after any mutation of the task state."""
        self._buckets_cache = None

    def _ensure_queues(self) -> List[List[Run]]:
        """Materialise the run queues from the implicit single-class state."""
        if self._queues is None:
            w = self._single_class
            self._queues = [
                [[int(load) // w, w, False]] if load else []
                for load in self.loads.tolist()
            ]
        return self._queues

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def load_vector(self, include_dummies: bool = True) -> np.ndarray:
        """The float load vector (dummy tasks always have unit weight)."""
        if include_dummies:
            return self.loads.astype(float)
        return (self.loads - self.dummy_counts).astype(float)

    @property
    def max_run_weight(self) -> int:
        """Maximum task weight currently present (0 when empty), cached.

        Maintained incrementally: balancing moves tasks but never creates
        weights (dummies are unit weight), so the cache only needs updating
        on deliveries and after dummy elimination.
        """
        return self._max_weight

    def max_weight(self) -> int:
        """Maximum task weight currently present (0 when empty)."""
        return self._max_weight

    @property
    def single_class(self) -> Optional[int]:
        """The one weight class every task shares (``None`` once classes mix
        or any dummy exists; ``1`` for an empty workload)."""
        return self._single_class

    def real_buckets(self) -> List[Dict[int, int]]:
        """Per-node ``{weight: count}`` of the real (non-dummy) tasks.

        In single-class mode the buckets are pure arithmetic on the load
        vector; otherwise the queue scan is cached until the next mutation.
        """
        if self._buckets_cache is None:
            if self._queues is None:
                w = self._single_class
                self._buckets_cache = [
                    {w: int(load) // w} if load else {}
                    for load in self.loads.tolist()
                ]
            else:
                buckets: List[Dict[int, int]] = []
                for queue in self._queues:
                    bucket: Dict[int, int] = {}
                    for count, weight, is_dummy in queue:
                        if not is_dummy:
                            bucket[weight] = bucket.get(weight, 0) + count
                    buckets.append(bucket)
                self._buckets_cache = buckets
        return [dict(bucket) for bucket in self._buckets_cache]

    # ------------------------------------------------------------------ #
    # planning (mutates the source queue, as the plans own the tasks)
    # ------------------------------------------------------------------ #

    def plan_sender(self, node: int, positions: Iterable[int],
                    magnitudes: List[float], threshold: float, policy: str,
                    unit_tokens: bool) -> List[Tuple[int, List[Run], int, int, int]]:
        """Plan every edge of one sender against its queue, in request order.

        ``positions`` indexes this sender's contiguous slice of the round's
        (sender-sorted) request arrays; ``magnitudes[pos]`` is the residual of
        the request at ``pos``.  Returns one
        ``(pos, takes, dummies, total_weight, tasks_moved)`` tuple per
        non-empty plan.  Grouping the per-edge planning by sender keeps the
        queue lookup and policy dispatch out of the per-edge hot loop.
        """
        plans: List[Tuple[int, List[Run], int, int, int]] = []
        for pos in positions:
            amount = magnitudes[pos]
            if unit_tokens:
                send = int(math.floor(amount + 1e-9))
                if send <= 0:
                    continue
                takes = self.take_front(node, send)
                moved = sum(run[0] for run in takes)
                dummies = send - moved
                total = send  # every task (and dummy) has unit weight
            else:
                takes = self.plan_takes(node, amount, threshold, policy)
                dummies = self.planned_dummies(amount, threshold)
                moved = sum(run[0] for run in takes)
                total = sum(run[0] * run[1] for run in takes) + dummies
            if moved or dummies:
                plans.append((pos, takes, dummies, total, moved))
        return plans

    def plan_takes(self, node: int, residual: float, threshold: float,
                   policy: str) -> List[Run]:
        """Select the tasks ``node`` commits to one edge this round.

        Implements the pseudocode's ``while residual - committed > w_max``
        loop at run granularity for the given selection policy, removing the
        selected tasks from the node's queue and returning them as runs in
        selection order.  Dummy draws from the infinite source are *not*
        included — the caller batches them separately via :func:`_take_count`
        on the final committed value (see :meth:`planned_dummies`).
        """
        queue = self._ensure_queues()[node]
        takes: List[Run] = []
        committed = 0.0
        while queue and residual - committed > threshold:
            if policy == TaskSelectionPolicy.FIFO:
                index = 0
            else:
                weights = [run[1] for run in queue]
                target = max(weights) if policy == TaskSelectionPolicy.LARGEST_FIRST \
                    else min(weights)
                index = next(i for i, run in enumerate(queue) if run[1] == target)
            run = queue[index]
            k = _take_count(residual, committed, float(run[1]), run[0], threshold)
            self._remove_from_run(node, queue, index, k)
            if takes and takes[-1][1] == run[1] and takes[-1][2] == run[2]:
                takes[-1][0] += k
            else:
                takes.append([k, run[1], run[2]])
            committed += k * float(run[1])
        self._planned_committed = committed
        return takes

    def planned_dummies(self, residual: float, threshold: float) -> int:
        """Dummy tokens the last :meth:`plan_takes` call must draw (weight 1)."""
        return _take_count(residual, self._planned_committed, 1.0, _NO_CAP, threshold)

    def take_front(self, node: int, amount: int) -> List[Run]:
        """Unit-token FIFO path: pop up to ``amount`` tasks from the head."""
        queue = self._ensure_queues()[node]
        takes: List[Run] = []
        need = amount
        while need and queue:
            run = queue[0]
            k = min(run[0], need)
            self._remove_from_run(node, queue, 0, k)
            if takes and takes[-1][1] == run[1] and takes[-1][2] == run[2]:
                takes[-1][0] += k
            else:
                takes.append([k, run[1], run[2]])
            need -= k
        return takes

    def _remove_from_run(self, node: int, queue: List[Run], index: int, k: int) -> None:
        run = queue[index]
        self.loads[node] -= k * run[1]
        if run[2]:
            self.dummy_counts[node] -= k
        if k == run[0]:
            queue.pop(index)
            if 0 < index < len(queue) and queue[index - 1][1] == queue[index][1] \
                    and queue[index - 1][2] == queue[index][2]:
                queue[index - 1][0] += queue.pop(index)[0]
        else:
            run[0] -= k
        self._touch()

    # ------------------------------------------------------------------ #
    # delivery
    # ------------------------------------------------------------------ #

    def deliver(self, node: int, takes: List[Run]) -> None:
        """Append taken runs to the tail of ``node``'s queue (order preserved)."""
        queue = self._ensure_queues()[node]
        for count, weight, is_dummy in takes:
            if queue and queue[-1][1] == weight and queue[-1][2] == is_dummy:
                queue[-1][0] += count
            else:
                queue.append([count, weight, is_dummy])
            self.loads[node] += count * weight
            if is_dummy:
                self.dummy_counts[node] += count
                self._single_class = None
            elif self._single_class is not None and weight != self._single_class:
                self._single_class = None
            if weight > self._max_weight:
                self._max_weight = weight
        self._touch()

    def deliver_dummies(self, node: int, count: int) -> None:
        """Create ``count`` fresh unit-weight dummies at the tail of the queue."""
        if count:
            self.deliver(node, [[count, 1, True]])

    def apply_single_class_moves(self, outgoing_tasks: np.ndarray,
                                 incoming_tasks: np.ndarray) -> None:
        """Fast-path round application: scatter-added task counts, no queues.

        Only legal in single-class mode when every sender covers its outgoing
        tasks (the caller checks both): then every queue is a single all-real
        run whose length follows from the load, so the queues are dropped and
        rebuilt lazily instead of being maintained.
        """
        w = self._single_class
        self.loads += (incoming_tasks - outgoing_tasks) * w
        self._queues = None
        self._touch()

    # ------------------------------------------------------------------ #
    # dummy elimination
    # ------------------------------------------------------------------ #

    def remove_dummies(self) -> int:
        """Drop every dummy task (the paper's final clean-up step).

        A no-op on clean queues: only the queues of nodes that actually hold
        dummies are compacted, the rest are left untouched.
        """
        removed = int(self.dummy_counts.sum())
        if removed:
            queues = self._ensure_queues()
            for node in np.flatnonzero(self.dummy_counts).tolist():
                queues[node] = [run for run in queues[node] if not run[2]]
            self.loads -= self.dummy_counts
            self.dummy_counts[:] = 0
            self._touch()
            # Dummies are unit weight, so only an all-unit maximum (or the
            # single-class invariant) can change; recompute in that rare case.
            if self._max_weight <= 1:
                self._max_weight = max(
                    (run[1] for queue in queues for run in queue), default=0)
            classes = {run[1] for queue in queues for run in queue}
            self._single_class = (next(iter(classes)) if len(classes) == 1
                                  else 1 if not classes else None)
        return removed


class ArrayWeightedDeterministicFlowImitation(FlowCoupledBalancer):
    """Algorithm 1 over columnar weight buckets (integer task weights only).

    Parameters
    ----------
    continuous:
        The continuous process ``A`` to imitate (fresh, round 0, starting
        from the workload's load vector).
    workload:
        A :class:`WeightedLoads` (canonical ascending-weight queue order) or
        a :class:`TaskAssignment` whose queue order is preserved.
    selection_policy:
        How the pseudocode's "arbitrary" task is chosen; one of
        :class:`TaskSelectionPolicy`.
    """

    def __init__(
        self,
        continuous: ContinuousProcess,
        workload: Union[WeightedLoads, TaskAssignment],
        selection_policy: str = TaskSelectionPolicy.FIFO,
    ) -> None:
        if selection_policy not in TaskSelectionPolicy.ALL:
            raise ProcessError(
                f"unknown selection policy {selection_policy!r}; "
                f"valid policies: {TaskSelectionPolicy.ALL}")
        network = continuous.network
        if isinstance(workload, TaskAssignment):
            if workload.network is not network:
                raise ProcessError(
                    "the task assignment and the continuous process must share the same network"
                )
            state = WeightedRunState.from_assignment(workload)
        else:
            if workload.num_nodes != network.num_nodes:
                raise ProcessError(
                    f"workload spans {workload.num_nodes} nodes, "
                    f"network has {network.num_nodes}")
            state = WeightedRunState.from_weighted_loads(workload)
        if continuous.round_index == 0 and not np.allclose(
                state.load_vector(), continuous.load, atol=1e-9):
            raise ProcessError(
                "the continuous process must start from the load vector induced by the assignment"
            )
        max_weight = state.max_weight()
        super().__init__(continuous, max_task_weight=max(1.0, float(max_weight)),
                         original_weight=float(state.loads.sum()))
        self._policy = selection_policy
        self._state = state
        self._unit_tokens_only = max_weight <= 1
        edges = network.edges
        self._edge_u = np.fromiter((u for u, _ in edges), dtype=np.int64, count=len(edges))
        self._edge_v = np.fromiter((v for _, v in edges), dtype=np.int64, count=len(edges))

    # ------------------------------------------------------------------ #
    # state inspection
    # ------------------------------------------------------------------ #

    @property
    def selection_policy(self) -> str:
        """The task-selection policy in use."""
        return self._policy

    @property
    def unit_tokens_only(self) -> bool:
        """Whether the workload consists exclusively of unit-weight tokens."""
        return self._unit_tokens_only

    def discrepancy_bound(self) -> float:
        """The Theorem 3 bound ``2 d w_max + 2`` for this instance."""
        return theorem3_discrepancy_bound(self.network.max_degree, self.w_max)

    def loads(self, include_dummies: bool = True) -> np.ndarray:
        """Return the current discrete load vector."""
        return self._state.load_vector(include_dummies=include_dummies)

    def dummy_loads(self) -> np.ndarray:
        """Return the per-node total weight of dummy tasks (as floats)."""
        return self._state.dummy_counts.astype(float)

    def real_weight_buckets(self) -> List[Dict[int, int]]:
        """Per-node ``{weight: count}`` of the real tasks (for streaming sync)."""
        return self._state.real_buckets()

    def remove_dummies(self) -> float:
        """Eliminate all dummy tasks (the final step of the balancing process)."""
        return float(self._state.remove_dummies())

    # ------------------------------------------------------------------ #
    # re-coupling
    # ------------------------------------------------------------------ #

    def _reset_workload(self, workload) -> None:
        if isinstance(workload, WeightedLoads):
            self._state = WeightedRunState.from_weighted_loads(workload)
        else:
            counts = as_token_counts(workload, self.network, error=ProcessError)
            self._state = WeightedRunState.from_weighted_loads(
                WeightedLoads.from_unit_counts(counts))
        self._unit_tokens_only = self._state.max_weight() <= 1

    # ------------------------------------------------------------------ #
    # the round
    # ------------------------------------------------------------------ #

    def _execute_round(self) -> None:
        with kernel_phase("continuous/advance"):
            self._continuous.advance()
        with kernel_phase("flow/weighted-round"):
            self._imitate_round()

    def _imitate_round(self) -> None:
        residual = self._continuous.cumulative_flows - self._discrete_cumulative
        active = np.nonzero(residual != 0.0)[0]
        if active.size == 0:
            self._reports.append(RoundReport(self._round, 0, 0, 0.0, 0))
            return

        # Orient each active edge from its sender and order the requests the
        # way the object backend iterates them: by sender, then by receiver.
        res = residual[active]
        forward = res > 0.0
        senders = np.where(forward, self._edge_u[active], self._edge_v[active])
        receivers = np.where(forward, self._edge_v[active], self._edge_u[active])
        order = np.lexsort((receivers, senders))
        active = active[order]
        forward = forward[order]
        senders = senders[order]
        receivers = receivers[order]
        magnitude = np.abs(res[order])

        if not self._single_class_round(active, forward, senders, receivers,
                                        magnitude):
            self._general_round(active, forward, senders, receivers, magnitude)

    def _single_class_round(self, active: np.ndarray, forward: np.ndarray,
                            senders: np.ndarray, receivers: np.ndarray,
                            magnitude: np.ndarray) -> bool:
        """The fully vectorised round for a single global weight class.

        With one weight class and no dummies, every per-edge plan is a pure
        function of the residual (floor for unit tokens, the closed-form
        greedy count otherwise) and queue order is unobservable; if every
        sender also covers its plans with its own tasks, the transfers reduce
        to two scatter-adds.  Returns ``False`` — leaving the state untouched
        — when these conditions do not hold, so the queue-faithful general
        path can replay the round instead.
        """
        state = self._state
        w = state.single_class
        if w is None:
            return False
        if self._unit_tokens_only:
            amounts = np.floor(magnitude + 1e-9).astype(np.int64)
        else:
            amounts = _take_counts_vector(magnitude, float(w), self._w_max + 1e-9)
        mask = amounts > 0
        transfers = int(np.count_nonzero(mask))
        if transfers == 0:
            self._reports.append(RoundReport(self._round, 0, 0, 0.0, 0))
            return True
        amounts = amounts[mask]
        n = self.network.num_nodes
        outgoing = np.zeros(n, dtype=np.int64)
        np.add.at(outgoing, senders[mask], amounts)
        if np.any(outgoing * w > state.loads):
            return False  # some sender would need the infinite source
        incoming = np.zeros(n, dtype=np.int64)
        np.add.at(incoming, receivers[mask], amounts)
        state.apply_single_class_moves(outgoing, incoming)

        moved_weight = amounts * w
        signed = np.where(forward[mask], moved_weight, -moved_weight).astype(float)
        self._discrete_cumulative[active[mask]] += signed
        self._reports.append(
            RoundReport(
                round_index=self._round,
                transfers=transfers,
                tasks_moved=int(amounts.sum()),
                weight_moved=float(moved_weight.sum()),
                dummy_tokens_created=0,
            )
        )
        return True

    def _general_round(self, active: np.ndarray, forward: np.ndarray,
                       senders: np.ndarray, receivers: np.ndarray,
                       magnitude: np.ndarray) -> None:
        """The queue-faithful path: per-sender grouped planning, FIFO deliveries."""
        senders_list = senders.tolist()
        receivers_list = receivers.tolist()
        magnitudes = magnitude.tolist()
        threshold = self._w_max + 1e-9
        state = self._state

        starts = np.r_[0, np.flatnonzero(np.diff(senders)) + 1, senders.size]
        plans: List[Tuple[int, List[Run], int, int, int]] = []
        for group in range(starts.size - 1):
            begin = int(starts[group])
            plans.extend(state.plan_sender(
                senders_list[begin], range(begin, int(starts[group + 1])),
                magnitudes, threshold, self._policy, self._unit_tokens_only))

        if not plans:
            self._reports.append(RoundReport(self._round, 0, 0, 0.0, 0))
            return
        tasks_moved = 0
        dummies_this_round = 0
        for pos, takes, dummies, _total, moved in plans:
            state.deliver(receivers_list[pos], takes)
            state.deliver_dummies(receivers_list[pos], dummies)
            tasks_moved += moved
            dummies_this_round += dummies

        positions = np.fromiter((plan[0] for plan in plans), dtype=np.int64,
                                count=len(plans))
        totals = np.fromiter((plan[3] for plan in plans), dtype=np.int64,
                             count=len(plans))
        signed = np.where(forward[positions], totals, -totals).astype(float)
        self._discrete_cumulative[active[positions]] += signed

        if dummies_this_round:
            self._used_infinite_source = True
            self._dummy_tokens_created += dummies_this_round
        self._reports.append(
            RoundReport(
                round_index=self._round,
                transfers=len(plans),
                tasks_moved=tasks_moved,
                weight_moved=float(totals.sum()),
                dummy_tokens_created=dummies_this_round,
            )
        )
