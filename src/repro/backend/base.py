"""Pluggable load-state backends.

A *backend* decides how the discrete workload of a balancing process is
represented:

* ``"object"`` — one Python :class:`~repro.tasks.task.Task` per token, held
  in a :class:`~repro.tasks.assignment.TaskAssignment`.  The original path,
  and the only one that supports weighted tasks and task-identity analyses
  (locality, selection policies).
* ``"array"`` — a single numpy ``int64`` count vector for unit-weight
  tokens (:mod:`repro.backend.flow`).  O(m) per round instead of O(W),
  which is what makes million-token dynamic streams feasible.
* ``"auto"`` — the array backend whenever the workload allows it (an
  integer token load vector), the object backend otherwise (an explicit
  ``TaskAssignment``, i.e. weighted tasks or callers that need task
  identity).  This is the default everywhere: the backends are
  bit-equivalent, so ``auto`` is purely a performance choice.

Backends are deliberately thin: they only choose *classes*.  The simulation
engine keeps ownership of substrate construction, schedules and seeds so
that a given ``(algorithm, substrate, seed)`` triple produces the same
coupled system — and therefore the same trajectory — on every backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Type

from ..continuous.base import ContinuousProcess
from ..core.algorithm1 import DeterministicFlowImitation
from ..core.algorithm2 import RandomizedFlowImitation
from ..core.flow_imitation import FlowCoupledBalancer, TaskSelectionPolicy
from ..discrete.base import IntegerLoadBalancer
from ..discrete.baselines.diffusion import (
    ExcessTokenDiffusion,
    QuasirandomDiffusion,
    RandomizedRoundingDiffusion,
    RoundDownDiffusion,
)
from ..exceptions import ExperimentError
from ..tasks.assignment import TaskAssignment
from .baselines import (
    ArrayQuasirandomDiffusion,
    ArrayRandomizedRoundingDiffusion,
    ArrayRoundDownDiffusion,
)
from .flow import ArrayDeterministicFlowImitation, ArrayRandomizedFlowImitation

__all__ = [
    "BACKEND_KINDS",
    "LoadBackend",
    "ObjectBackend",
    "ArrayBackend",
    "get_backend",
    "resolve_backend_name",
]

#: Valid values of every ``backend=`` parameter.
BACKEND_KINDS = ("auto", "object", "array")


def resolve_backend_name(backend: str, assignment: Optional[TaskAssignment] = None) -> str:
    """Resolve a requested backend to a concrete one (``"object"``/``"array"``).

    An explicit :class:`TaskAssignment` always selects the object backend —
    it may hold weighted tasks, and its task identities are part of the
    caller-visible contract — so ``"array"`` and ``"auto"`` silently fall
    back to ``"object"`` for it.
    """
    if backend not in BACKEND_KINDS:
        raise ExperimentError(
            f"unknown backend {backend!r}; valid backends: {BACKEND_KINDS}"
        )
    if backend == "object" or assignment is not None:
        return "object"
    return "array"


class LoadBackend(ABC):
    """Factory for the balancer implementations of one load-state representation."""

    name: str

    @abstractmethod
    def build_flow_imitation(
        self,
        algorithm: str,
        continuous: ContinuousProcess,
        initial_load: Optional[Sequence[int]] = None,
        assignment: Optional[TaskAssignment] = None,
        seed: Optional[int] = None,
        selection_policy: str = TaskSelectionPolicy.FIFO,
    ) -> FlowCoupledBalancer:
        """Couple Algorithm 1 or 2 to ``continuous`` on this backend."""

    @abstractmethod
    def diffusion_class(self, algorithm: str) -> Type[IntegerLoadBalancer]:
        """Return the implementation class of a diffusion baseline."""


class ObjectBackend(LoadBackend):
    """The object-per-token path: ``TaskAssignment`` + task-moving balancers."""

    name = "object"

    def build_flow_imitation(
        self,
        algorithm: str,
        continuous: ContinuousProcess,
        initial_load: Optional[Sequence[int]] = None,
        assignment: Optional[TaskAssignment] = None,
        seed: Optional[int] = None,
        selection_policy: str = TaskSelectionPolicy.FIFO,
    ) -> FlowCoupledBalancer:
        if assignment is None:
            assignment = TaskAssignment.from_unit_loads(continuous.network, initial_load)
        if algorithm == "algorithm1":
            return DeterministicFlowImitation(continuous, assignment,
                                              selection_policy=selection_policy)
        return RandomizedFlowImitation(continuous, assignment, seed=seed)

    _DIFFUSION = {
        "round-down": RoundDownDiffusion,
        "quasirandom": QuasirandomDiffusion,
        "randomized-rounding": RandomizedRoundingDiffusion,
        "excess-tokens": ExcessTokenDiffusion,
    }

    def diffusion_class(self, algorithm: str) -> Type[IntegerLoadBalancer]:
        return self._DIFFUSION[algorithm]


class ArrayBackend(LoadBackend):
    """The columnar path: numpy count vectors and vectorised rounding."""

    name = "array"

    def build_flow_imitation(
        self,
        algorithm: str,
        continuous: ContinuousProcess,
        initial_load: Optional[Sequence[int]] = None,
        assignment: Optional[TaskAssignment] = None,
        seed: Optional[int] = None,
        selection_policy: str = TaskSelectionPolicy.FIFO,
    ) -> FlowCoupledBalancer:
        if assignment is not None:
            raise ExperimentError(
                "the array backend stores token counts only; task assignments "
                "(weighted tasks) require the object backend"
            )
        if algorithm == "algorithm1":
            # The selection policy is irrelevant for indistinguishable unit
            # tokens, so the array variant does not take one.
            return ArrayDeterministicFlowImitation(continuous, initial_load)
        return ArrayRandomizedFlowImitation(continuous, initial_load, seed=seed)

    _DIFFUSION = {
        "round-down": ArrayRoundDownDiffusion,
        "quasirandom": ArrayQuasirandomDiffusion,
        "randomized-rounding": ArrayRandomizedRoundingDiffusion,
        # Excess-token forwarding draws order-sensitive per-node randomness;
        # the shared implementation is already columnar (see backend.baselines).
        "excess-tokens": ExcessTokenDiffusion,
    }

    def diffusion_class(self, algorithm: str) -> Type[IntegerLoadBalancer]:
        return self._DIFFUSION[algorithm]


_BACKENDS = {"object": ObjectBackend(), "array": ArrayBackend()}


def get_backend(name: str, assignment: Optional[TaskAssignment] = None) -> LoadBackend:
    """Return the backend instance for ``name`` (resolving ``"auto"``)."""
    return _BACKENDS[resolve_backend_name(name, assignment=assignment)]
