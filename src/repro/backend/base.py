"""Pluggable load-state backends.

A *backend* decides how the discrete workload of a balancing process is
represented:

* ``"object"`` — one Python :class:`~repro.tasks.task.Task` per work item,
  held in a :class:`~repro.tasks.assignment.TaskAssignment`.  The original
  path, and the only one that supports non-integer task weights and
  task-identity analyses (locality, origin tracking).
* ``"array"`` — columnar numpy state: a single ``int64`` count vector for
  unit-weight tokens (:mod:`repro.backend.flow`) and per-node sorted weight
  buckets with run-length queues for integer-weighted tasks
  (:mod:`repro.backend.weighted`).  O(m + transfers) per round instead of
  O(W), which is what makes million-token streams feasible.
* ``"auto"`` — the array backend whenever the workload allows it: integer
  token load vectors, :class:`~repro.tasks.weighted.WeightedLoads`, and
  ``TaskAssignment``s whose tasks all carry integer weights.  The object
  backend remains the fallback for non-integer weights and for assignments
  that already contain dummy tasks.  This is the default everywhere: the
  backends are bit-equivalent, so ``auto`` is purely a performance choice.

:func:`resolve_backend` reports not just the chosen backend but *why* — the
reason lands in ``RunResult.extra["backend_reason"]`` so silent fallbacks are
observable in benchmarks and CI.

Backends are deliberately thin: they only choose *classes*.  The simulation
engine keeps ownership of substrate construction, schedules and seeds so
that a given ``(algorithm, substrate, seed)`` triple produces the same
coupled system — and therefore the same trajectory — on every backend.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Type

from ..continuous.base import ContinuousProcess
from ..core.algorithm1 import DeterministicFlowImitation
from ..core.algorithm2 import RandomizedFlowImitation
from ..core.flow_imitation import FlowCoupledBalancer, TaskSelectionPolicy
from ..discrete.base import IntegerLoadBalancer
from ..discrete.baselines.diffusion import (
    ExcessTokenDiffusion,
    QuasirandomDiffusion,
    RandomizedRoundingDiffusion,
    RoundDownDiffusion,
)
from ..exceptions import ExperimentError, ProcessError
from ..tasks.assignment import TaskAssignment
from ..tasks.weighted import WeightedLoads, task_integer_weight
from .baselines import (
    ArrayExcessTokenDiffusion,
    ArrayQuasirandomDiffusion,
    ArrayRandomizedRoundingDiffusion,
    ArrayRoundDownDiffusion,
)
from .flow import ArrayDeterministicFlowImitation, ArrayRandomizedFlowImitation
from .weighted import ArrayWeightedDeterministicFlowImitation

__all__ = [
    "BACKEND_KINDS",
    "BackendChoice",
    "LoadBackend",
    "ObjectBackend",
    "ArrayBackend",
    "get_backend",
    "resolve_backend",
    "resolve_backend_name",
]

#: Valid values of every ``backend=`` parameter.
BACKEND_KINDS = ("auto", "object", "array")


@dataclass(frozen=True)
class BackendChoice:
    """A resolved backend plus the reason it was selected (or fallen back to)."""

    name: str
    reason: str


def _assignment_fallback_reason(assignment: TaskAssignment,
                                algorithm: Optional[str]) -> Optional[str]:
    """Why an assignment cannot take the columnar path (``None`` if it can)."""
    if assignment.total_dummy_weight() > 0:
        return "assignment already contains dummy tasks"
    for node in assignment.network.nodes:
        for task in assignment.tasks_at(node):
            if task_integer_weight(task) is None:
                return f"non-integer task weight {task.weight}"
    if algorithm == "algorithm2" and assignment.max_task_weight() > 1:
        # Let the object implementation raise its canonical weighted-task error.
        return "algorithm2 requires unit tokens"
    return None


def _with_rng_mode_reason(choice: BackendChoice, algorithm: Optional[str],
                          rng_mode: Optional[str]) -> BackendChoice:
    """Refine an array choice's reason with what the rng mode unlocks."""
    if choice.name != "array" or rng_mode is None:
        return choice
    if algorithm == "excess-tokens":
        if rng_mode == "counter":
            return BackendChoice(
                "array", "vectorised excess-token kernel (order-free counter rng)")
        return BackendChoice(
            "array", "shared scalar excess-token kernel (sequential rng "
                     "is order-sensitive; use rng_mode='counter' to vectorise)")
    if rng_mode == "counter" and algorithm in ("algorithm2", "randomized-rounding"):
        return BackendChoice(choice.name,
                             f"{choice.reason}, edge-keyed counter rng")
    return choice


def resolve_backend(
    backend: str,
    assignment: Optional[TaskAssignment] = None,
    weighted: Optional[WeightedLoads] = None,
    algorithm: Optional[str] = None,
    rng_mode: Optional[str] = None,
) -> BackendChoice:
    """Resolve a requested backend to a concrete one, with the reason why.

    ``"auto"`` (and an explicit ``"array"``) takes the columnar path for
    integer token vectors, :class:`WeightedLoads` and integer-weight task
    assignments; it falls back to the object backend only when the workload
    genuinely needs task objects (non-integer weights, pre-existing dummy
    tasks).  ``rng_mode`` does not change which backend is picked — the
    randomized algorithms are vectorisable either way — but it is part of the
    recorded reason: with ``rng_mode="counter"`` the array path additionally
    carries the order-free edge-keyed draws (and, for the excess-token
    baseline, the fully batched kernel).  The reason string makes the whole
    decision observable.
    """
    if backend not in BACKEND_KINDS:
        raise ExperimentError(
            f"unknown backend {backend!r}; valid backends: {BACKEND_KINDS}"
        )
    if backend == "object":
        return BackendChoice("object", "requested explicitly")
    if assignment is not None:
        fallback = _assignment_fallback_reason(assignment, algorithm)
        if fallback is not None:
            return BackendChoice("object", fallback)
        if assignment.max_task_weight() > 1:
            choice = BackendChoice("array", "columnar weighted buckets (integer weights)")
        else:
            choice = BackendChoice("array", "unit-token counts (assignment of tokens)")
    elif weighted is not None:
        if weighted.max_weight() > 1:
            choice = BackendChoice("array", "columnar weighted buckets")
        else:
            choice = BackendChoice("array", "unit-token counts")
    else:
        choice = BackendChoice("array", "integer token counts")
    return _with_rng_mode_reason(choice, algorithm, rng_mode)


def resolve_backend_name(backend: str, assignment: Optional[TaskAssignment] = None,
                         algorithm: Optional[str] = None) -> str:
    """Resolve a requested backend to a concrete name (``"object"``/``"array"``)."""
    return resolve_backend(backend, assignment=assignment, algorithm=algorithm).name


class LoadBackend(ABC):
    """Factory for the balancer implementations of one load-state representation."""

    name: str

    @abstractmethod
    def build_flow_imitation(
        self,
        algorithm: str,
        continuous: ContinuousProcess,
        initial_load: Optional[Sequence[int]] = None,
        assignment: Optional[TaskAssignment] = None,
        weighted: Optional[WeightedLoads] = None,
        seed: Optional[int] = None,
        selection_policy: str = TaskSelectionPolicy.FIFO,
        rng_mode: str = "sequential",
    ) -> FlowCoupledBalancer:
        """Couple Algorithm 1 or 2 to ``continuous`` on this backend."""

    @abstractmethod
    def diffusion_class(self, algorithm: str,
                        rng_mode: str = "sequential") -> Type[IntegerLoadBalancer]:
        """Return the implementation class of a diffusion baseline."""


class ObjectBackend(LoadBackend):
    """The object-per-task path: ``TaskAssignment`` + task-moving balancers."""

    name = "object"

    def build_flow_imitation(
        self,
        algorithm: str,
        continuous: ContinuousProcess,
        initial_load: Optional[Sequence[int]] = None,
        assignment: Optional[TaskAssignment] = None,
        weighted: Optional[WeightedLoads] = None,
        seed: Optional[int] = None,
        selection_policy: str = TaskSelectionPolicy.FIFO,
        rng_mode: str = "sequential",
    ) -> FlowCoupledBalancer:
        if assignment is None:
            if weighted is not None:
                assignment = weighted.to_assignment(continuous.network)
            else:
                assignment = TaskAssignment.from_unit_loads(continuous.network,
                                                            initial_load)
        if algorithm == "algorithm1":
            return DeterministicFlowImitation(continuous, assignment,
                                              selection_policy=selection_policy)
        return RandomizedFlowImitation(continuous, assignment, seed=seed,
                                       rng_mode=rng_mode)

    _DIFFUSION = {
        "round-down": RoundDownDiffusion,
        "quasirandom": QuasirandomDiffusion,
        "randomized-rounding": RandomizedRoundingDiffusion,
        "excess-tokens": ExcessTokenDiffusion,
    }

    def diffusion_class(self, algorithm: str,
                        rng_mode: str = "sequential") -> Type[IntegerLoadBalancer]:
        return self._DIFFUSION[algorithm]


class ArrayBackend(LoadBackend):
    """The columnar path: numpy count vectors, weight buckets, vectorised rounding."""

    name = "array"

    def build_flow_imitation(
        self,
        algorithm: str,
        continuous: ContinuousProcess,
        initial_load: Optional[Sequence[int]] = None,
        assignment: Optional[TaskAssignment] = None,
        weighted: Optional[WeightedLoads] = None,
        seed: Optional[int] = None,
        selection_policy: str = TaskSelectionPolicy.FIFO,
        rng_mode: str = "sequential",
    ) -> FlowCoupledBalancer:
        if assignment is not None:
            if assignment.network is not continuous.network:
                raise ProcessError(
                    "the task assignment and the continuous process must share the same network"
                )
            if assignment.total_dummy_weight() > 0:
                # resolve_backend routes these to the object backend; direct
                # callers get a clear error instead of dummies silently
                # becoming real tokens via assignment.loads().
                raise ExperimentError(
                    "assignments that already contain dummy tasks require the "
                    "object backend"
                )
            # The columnar path keeps the assignment's queue order; all-unit
            # assignments reduce to token counts (order is unobservable).
            if assignment.max_task_weight() > 1:
                if algorithm == "algorithm1":
                    return ArrayWeightedDeterministicFlowImitation(
                        continuous, assignment, selection_policy=selection_policy)
                raise ExperimentError(
                    "Algorithm 2 balances identical unit-weight tokens only; "
                    "weighted assignments require algorithm1"
                )
            initial_load = assignment.loads().astype(int)
        elif weighted is not None:
            if weighted.max_weight() > 1:
                if algorithm == "algorithm1":
                    return ArrayWeightedDeterministicFlowImitation(
                        continuous, weighted, selection_policy=selection_policy)
                raise ExperimentError(
                    "Algorithm 2 balances identical unit-weight tokens only; "
                    "weighted workloads require algorithm1"
                )
            initial_load = weighted.load_vector()
        if algorithm == "algorithm1":
            # The selection policy is irrelevant for indistinguishable unit
            # tokens, so the unit-token array variant does not take one.
            return ArrayDeterministicFlowImitation(continuous, initial_load)
        return ArrayRandomizedFlowImitation(continuous, initial_load, seed=seed,
                                            rng_mode=rng_mode)

    _DIFFUSION = {
        "round-down": ArrayRoundDownDiffusion,
        "quasirandom": ArrayQuasirandomDiffusion,
        "randomized-rounding": ArrayRandomizedRoundingDiffusion,
        # Sequential excess-token forwarding draws order-sensitive per-node
        # randomness, so the shared scalar implementation is kept; the
        # counter rng mode is order-free and takes the vectorised kernel.
        "excess-tokens": ExcessTokenDiffusion,
    }

    def diffusion_class(self, algorithm: str,
                        rng_mode: str = "sequential") -> Type[IntegerLoadBalancer]:
        if algorithm == "excess-tokens" and rng_mode == "counter":
            return ArrayExcessTokenDiffusion
        return self._DIFFUSION[algorithm]


_BACKENDS = {"object": ObjectBackend(), "array": ArrayBackend()}


def get_backend(name: str, assignment: Optional[TaskAssignment] = None,
                weighted: Optional[WeightedLoads] = None,
                algorithm: Optional[str] = None) -> LoadBackend:
    """Return the backend instance for ``name`` (resolving ``"auto"``)."""
    return _BACKENDS[resolve_backend(name, assignment=assignment,
                                     weighted=weighted, algorithm=algorithm).name]
