"""Vectorized flow imitation: Algorithms 1 and 2 on the array backend.

:class:`ArrayFlowImitation` runs the paper's flow-imitation template on a
:class:`~repro.backend.state.TokenCountState` instead of a
:class:`~repro.tasks.assignment.TaskAssignment`.  Per round it computes the
per-edge residual flows, derives the integer send amount of every active edge
in one vectorised pass (floor for Algorithm 1, randomized rounding for
Algorithm 2), and applies the transfers with scatter-adds.  The cost of a
round is O(m log m) in the number of edges — independent of the number of
tokens ``W`` — versus the object backend's O(W) queue snapshots.

Bit-for-bit equivalence with the object backend is a design invariant, not
an accident, and the ordering details below exist to preserve it:

* active edges are processed in ``(sender, receiver)`` order — exactly the
  order in which :meth:`FlowImitationBalancer._execute_round` visits its
  per-sender request lists — so Algorithm 2 consumes the *same* random draws
  in the *same* order from the same seeded generator (numpy's ``Generator``
  produces identical streams for scalar and vectorised uniform draws); in
  ``rng_mode="counter"`` the ordering no longer matters for the draws at all
  (each edge owns its entry of the per-round Philox score block, see
  :mod:`repro.counter_rng`) but is kept so the FIFO real/dummy split still
  matches;
* a sender's tokens are committed to its edges first-come-first-served
  against the start-of-round state, so the real/dummy split of every
  transfer matches the object backend's FIFO pools (see
  :mod:`repro.backend.state`);
* the cumulative discrete flows accumulate the same float64 values in the
  same per-edge order.

The equivalence test suite (``tests/backend/``) asserts identical per-round
load vectors, dummy distributions and discrepancy trajectories across
backends for every algorithm and substrate.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..continuous.base import ContinuousProcess
from ..core.algorithm1 import theorem3_discrepancy_bound
from ..core.algorithm2 import theorem8_max_avg_bound
from ..core.flow_imitation import FlowCoupledBalancer, RoundReport
from ..counter_rng import edge_scores, normalize_counter_seed, validate_rng_mode
from ..exceptions import ProcessError
from ..obs.kernels import kernel_phase
from ..tasks.load import as_token_counts
from .state import TokenCountState

__all__ = [
    "ArrayFlowImitation",
    "ArrayDeterministicFlowImitation",
    "ArrayRandomizedFlowImitation",
]


class ArrayFlowImitation(FlowCoupledBalancer):
    """Flow imitation over a numpy token-count vector (unit tokens only).

    Parameters
    ----------
    continuous:
        The continuous process ``A`` to imitate (fresh, round 0, starting
        from the load vector given by ``initial_load``).
    initial_load:
        Non-negative integer token counts per node.
    """

    def __init__(
        self,
        continuous: ContinuousProcess,
        initial_load: Sequence[int],
    ) -> None:
        network = continuous.network
        counts = as_token_counts(initial_load, network, error=ProcessError)
        if continuous.round_index == 0 and not np.allclose(
                counts, continuous.load, atol=1e-9):
            raise ProcessError(
                "the continuous process must start from the load vector induced by the assignment"
            )
        super().__init__(continuous, max_task_weight=1.0,
                         original_weight=float(counts.sum()))
        self._state = TokenCountState(counts)
        edges = network.edges
        self._edge_u = np.fromiter((u for u, _ in edges), dtype=np.int64, count=len(edges))
        self._edge_v = np.fromiter((v for _, v in edges), dtype=np.int64, count=len(edges))

    # ------------------------------------------------------------------ #
    # state inspection
    # ------------------------------------------------------------------ #

    @property
    def unit_tokens_only(self) -> bool:
        """Always ``True``: the array backend stores unit tokens only."""
        return True

    def loads(self, include_dummies: bool = True) -> np.ndarray:
        """Return the current discrete load vector."""
        return self._state.loads(include_dummies=include_dummies)

    def dummy_loads(self) -> np.ndarray:
        """Return the per-node number of dummy tokens (as floats)."""
        return self._state.dummy_counts.astype(float)

    def real_weight_buckets(self):
        """Per-node ``{weight: count}`` of the real tokens (all weight 1)."""
        real = self._state.counts - self._state.dummy_counts
        return [{1: int(count)} if count else {} for count in real.tolist()]

    def remove_dummies(self) -> float:
        """Eliminate all dummy tokens (the final step of the balancing process)."""
        return float(self._state.remove_dummies())

    def _reset_workload(self, workload) -> None:
        from ..tasks.weighted import WeightedLoads

        if isinstance(workload, WeightedLoads):
            if workload.max_weight() > 1:
                raise ProcessError(
                    "the unit-token array backend cannot hold weighted tasks; "
                    "use the columnar weighted backend")
            workload = workload.load_vector()
        self._state = TokenCountState(workload)

    # ------------------------------------------------------------------ #
    # the round
    # ------------------------------------------------------------------ #

    def _execute_round(self) -> None:
        with kernel_phase("continuous/advance"):
            self._continuous.advance()
        with kernel_phase("flow/array-round"):
            self._imitate_round()

    def _imitate_round(self) -> None:
        residual = self._continuous.cumulative_flows - self._discrete_cumulative
        active = np.nonzero(residual != 0.0)[0]
        if active.size == 0:
            self._reports.append(RoundReport(self._round, 0, 0, 0.0, 0))
            return

        # Orient each active edge from its sender and order the requests the
        # way the object backend iterates them: by sender, then by receiver.
        res = residual[active]
        forward = res > 0.0
        senders = np.where(forward, self._edge_u[active], self._edge_v[active])
        receivers = np.where(forward, self._edge_v[active], self._edge_u[active])
        order = np.lexsort((receivers, senders))
        active = active[order]
        forward = forward[order]
        senders = senders[order]
        receivers = receivers[order]
        magnitude = np.abs(res[order])

        amounts = self._edge_amounts(magnitude, active)
        mask = amounts > 0
        transfers = int(np.count_nonzero(mask))
        if transfers == 0:
            self._reports.append(RoundReport(self._round, 0, 0, 0.0, 0))
            return
        active = active[mask]
        forward = forward[mask]
        senders = senders[mask]
        receivers = receivers[mask]
        amounts = amounts[mask]

        n = self.network.num_nodes
        outgoing = np.zeros(n, dtype=np.int64)
        np.add.at(outgoing, senders, amounts)
        total_sent = int(amounts.sum())
        dummies_this_round = 0
        state = self._state
        if state.dummy_total == 0 and bool(np.all(outgoing <= state.counts)):
            # Fast path: every sender covers its plans with real tokens, so
            # the transfers reduce to two scatter-adds on the count vector.
            state.drop_queues()
            incoming = np.zeros(n, dtype=np.int64)
            np.add.at(incoming, receivers, amounts)
            state.counts -= outgoing
            state.counts += incoming
        else:
            dummies_this_round = self._apply_with_queues(senders, receivers, amounts)

        signed = np.where(forward, amounts, -amounts).astype(float)
        self._discrete_cumulative[active] += signed

        if dummies_this_round:
            self._used_infinite_source = True
            self._dummy_tokens_created += dummies_this_round
        self._reports.append(
            RoundReport(
                round_index=self._round,
                transfers=transfers,
                tasks_moved=total_sent - dummies_this_round,
                weight_moved=float(total_sent),
                dummy_tokens_created=dummies_this_round,
            )
        )

    def _apply_with_queues(self, senders: np.ndarray, receivers: np.ndarray,
                           amounts: np.ndarray) -> int:
        """Slow path: some transfer touches dummies, so replay FIFO semantics.

        Mirrors the object backend's two phases: every plan first draws from
        its sender's start-of-round queue head, then all popped runs (plus
        freshly created dummies) are appended to the receivers in plan order.
        """
        state = self._state
        state.materialize_queues()
        pending = []
        for sender, receiver, amount in zip(senders.tolist(), receivers.tolist(),
                                            amounts.tolist()):
            runs, missing = state.pop_front(sender, amount)
            pending.append((receiver, runs, missing))
        dummies = 0
        for receiver, runs, missing in pending:
            state.push(receiver, runs)
            if missing:
                state.push_dummies(receiver, missing)
                dummies += missing
        return dummies

    def _edge_amounts(self, magnitude: np.ndarray, edges: np.ndarray) -> np.ndarray:
        """Derive the integer send amount of every active edge.

        ``magnitude`` holds the residual magnitudes in planning order and
        ``edges`` the matching original edge indices (what counter-mode
        randomness is keyed on).
        """
        raise NotImplementedError


class ArrayDeterministicFlowImitation(ArrayFlowImitation):
    """Algorithm 1 on the array backend: send ``floor(residual)`` tokens."""

    def discrepancy_bound(self) -> float:
        """The Theorem 3 bound ``2 d w_max + 2`` for this instance."""
        return theorem3_discrepancy_bound(self.network.max_degree, self.w_max)

    def _edge_amounts(self, magnitude: np.ndarray, edges: np.ndarray) -> np.ndarray:
        return np.floor(magnitude + 1e-9).astype(np.int64)


class ArrayRandomizedFlowImitation(ArrayFlowImitation):
    """Algorithm 2 on the array backend: randomized rounding of the residual.

    In the default ``"sequential"`` rng mode the round's draws come from one
    shared generator consumed in planning order — one batched call produces
    the same stream the object backend consumes edge by edge.  In the
    ``"counter"`` mode (:mod:`repro.counter_rng`) each active edge fancy-
    indexes its entry of the per-round Philox score block, bit-identical to
    the scalar counter-mode reference
    (:class:`~repro.core.algorithm2.RandomizedFlowImitation`) by
    construction: both read ``edge_scores(seed, round)[edge]``.
    """

    def __init__(
        self,
        continuous: ContinuousProcess,
        initial_load: Sequence[int],
        seed: Optional[int] = None,
        rng_mode: str = "sequential",
    ) -> None:
        super().__init__(continuous, initial_load)
        self._rng_mode = validate_rng_mode(rng_mode)
        self._reset_rng(seed)

    @property
    def rng_mode(self) -> str:
        """How per-edge rounding randomness is drawn ("sequential" or "counter")."""
        return self._rng_mode

    def discrepancy_bound(self, constant: float = 1.0) -> float:
        """The Theorem 8(1) shape ``d/4 + c sqrt(d log n)`` for this instance."""
        return theorem8_max_avg_bound(self.network.max_degree,
                                      self.network.num_nodes, constant)

    def _reset_rng(self, seed: Optional[int]) -> None:
        if self._rng_mode == "counter":
            self._counter_key = normalize_counter_seed(seed)
        else:
            self._rng = np.random.default_rng(seed)

    def _edge_amounts(self, magnitude: np.ndarray, edges: np.ndarray) -> np.ndarray:
        base = np.floor(magnitude)
        fraction = magnitude - base
        if self._rng_mode == "counter":
            draws = edge_scores(self._counter_key, self._round,
                                self.network.num_edges)[edges]
        else:
            draws = self._rng.random(magnitude.size)
        round_up = draws < fraction
        return (base + round_up).astype(np.int64)
