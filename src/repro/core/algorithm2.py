"""Algorithm 2: randomized flow imitation for identical tokens (Section 5).

Algorithm 2 keeps the same cumulative-flow bookkeeping as Algorithm 1 but
rounds the residual flow randomly: with

    ``Y^hat_{i,j}(t) = f^A_{i,j}(t) - F^{D(A)}_{i,j}(t - 1) > 0``

the node sends ``floor(Y^hat) + 1`` tokens with probability ``{Y^hat}``
(the fractional part) and ``floor(Y^hat)`` tokens otherwise, so the expected
discrete flow matches the continuous flow exactly.  Nodes short of tokens
draw dummy tokens from the infinite source, exactly as in Algorithm 1.

Guarantees (Theorem 8), provided the continuous balancing time is polynomial
in ``n``:

* the max-avg discrepancy at time ``T^A`` is at most
  ``d/4 + O(sqrt(d log n))`` w.h.p.;
* if every node starts with at least ``(d/4 + 2c sqrt(d log n)) * s_i`` load
  on top of a vector on which ``A`` induces no negative load, the max-min
  discrepancy is ``O(sqrt(d log n))`` w.h.p. and the infinite source is never
  used (Lemma 11).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..continuous.base import ContinuousProcess
from ..counter_rng import edge_scores, normalize_counter_seed, validate_rng_mode
from ..exceptions import ProcessError
from ..tasks.assignment import TaskAssignment
from ..tasks.task import Task
from .flow_imitation import EdgeSendPlan, FlowImitationBalancer

__all__ = [
    "RandomizedFlowImitation",
    "theorem8_max_avg_bound",
    "theorem8_max_min_bound",
    "theorem8_required_base_load",
]


def theorem8_max_avg_bound(max_degree: int, num_nodes: int, constant: float = 1.0) -> float:
    """Return the Theorem 8(1) shape ``d/4 + c * sqrt(d log n)``."""
    n = max(num_nodes, 2)
    return max_degree / 4.0 + constant * math.sqrt(max_degree * math.log(n))


def theorem8_max_min_bound(max_degree: int, num_nodes: int, constant: float = 1.0) -> float:
    """Return the Theorem 8(2) shape ``c * sqrt(d log n)``."""
    n = max(num_nodes, 2)
    return constant * math.sqrt(max_degree * math.log(n))


def theorem8_required_base_load(max_degree: int, num_nodes: int, constant: float = 2.0) -> float:
    """Return the per-speed-unit base load ``d/4 + 2c sqrt(d log n)`` of Theorem 8(2)."""
    n = max(num_nodes, 2)
    return max_degree / 4.0 + constant * math.sqrt(max_degree * math.log(n))


class RandomizedFlowImitation(FlowImitationBalancer):
    """The paper's Algorithm 2: randomized flow imitation for unit tokens.

    Parameters
    ----------
    continuous:
        The continuous process ``A`` to discretize (fresh, round 0, starting
        from the same load vector as ``assignment``).
    assignment:
        The discrete workload at time 0; every task must be a unit token.
    seed:
        Seed of the rounding randomness.
    rng_mode:
        How the per-edge rounding draws are produced (see
        :mod:`repro.counter_rng`).  ``"sequential"`` (default) consumes one
        shared generator in edge iteration order — the original scheme.
        ``"counter"`` keys a Philox generator on ``(seed, round)`` and gives
        edge ``e`` entry ``e`` of the per-round score block, so every draw is
        a pure function of ``(seed, round, edge)``: iterating the send
        requests in any order yields the same load trajectory, and the
        vectorised kernel
        (:class:`repro.backend.flow.ArrayRandomizedFlowImitation`) is
        bit-identical to this scalar reference.
    """

    def __init__(
        self,
        continuous: ContinuousProcess,
        assignment: TaskAssignment,
        seed: Optional[int] = None,
        rng_mode: str = "sequential",
    ) -> None:
        super().__init__(continuous, assignment, max_task_weight=1.0)
        not_tokens = [
            task
            for node in assignment.network.nodes
            for task in assignment.tasks_at(node)
            if not task.is_token
        ]
        if not_tokens:
            raise ProcessError(
                "Algorithm 2 balances identical unit-weight tokens only; "
                f"found a task of weight {not_tokens[0].weight}"
            )
        self._rng_mode = validate_rng_mode(rng_mode)
        self._reset_rng(seed)

    @property
    def rng_mode(self) -> str:
        """How per-edge rounding randomness is drawn ("sequential" or "counter")."""
        return self._rng_mode

    def discrepancy_bound(self, constant: float = 1.0) -> float:
        """The Theorem 8(1) shape ``d/4 + c sqrt(d log n)`` for this instance."""
        return theorem8_max_avg_bound(self.network.max_degree,
                                      self.network.num_nodes, constant)

    def _reset_rng(self, seed: Optional[int]) -> None:
        if self._rng_mode == "counter":
            self._counter_key = normalize_counter_seed(seed)
            self._scores_round = -1
            self._scores: Optional[np.ndarray] = None
        else:
            self._rng = np.random.default_rng(seed)

    def _rounding_uniform(self, source: int, destination: int) -> float:
        """The uniform draw that rounds this edge's residual this round.

        In counter mode the draw is the edge's entry of the per-round score
        block — order-free by construction; the sequential mode consumes the
        shared stream exactly as before.
        """
        if self._rng_mode == "counter":
            if self._scores_round != self._round:
                self._scores = edge_scores(self._counter_key, self._round,
                                           self.network.num_edges)
                self._scores_round = self._round
            return float(self._scores[self.network.edge_index(source, destination)])
        return float(self._rng.random())

    def _reset_workload(self, workload) -> None:
        from ..tasks.weighted import WeightedLoads

        if isinstance(workload, WeightedLoads) and workload.max_weight() > 1:
            raise ProcessError(
                "Algorithm 2 balances identical unit-weight tokens only; "
                "cannot recouple onto a weighted workload")
        super()._reset_workload(workload)

    def _plan_edge_send(self, source: int, destination: int, residual: float,
                        pool: List[Task]) -> EdgeSendPlan:
        if residual <= 0:
            return EdgeSendPlan(source=source, destination=destination)
        base = int(math.floor(residual))
        fraction = residual - base
        amount = base + (1 if self._rounding_uniform(source, destination) < fraction else 0)
        if amount <= 0:
            return EdgeSendPlan(source=source, destination=destination)
        tasks, missing = self._take_unit_tokens(pool, amount)
        return EdgeSendPlan(source=source, destination=destination,
                            tasks=tasks, dummy_tokens=missing)
