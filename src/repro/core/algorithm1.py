"""Algorithm 1: deterministic flow imitation (Section 4 of the paper).

Given a continuous, additive and terminating process ``A``, the discrete
process ``D(A)`` tries, in every round ``t`` and over every edge ``(i, j)``,
to send a set of whole tasks whose total weight is as close as possible to
the residual flow

    ``y^hat_{i,j}(t) = f^A_{i,j}(t) - f^{D(A)}_{i,j}(t - 1)``.

For identical unit-weight tokens this means sending ``floor(y^hat)`` tokens;
for weighted tasks the node keeps adding tasks to the outgoing set while the
residual exceeds ``w_max`` (the while-loop of the pseudocode).  Nodes whose
own tasks do not suffice draw unit-weight dummy tokens from an infinite
source; dummy tokens travel like normal tasks and are eliminated at the end.

Guarantees (Theorem 3): at the continuous balancing time ``T^A``,

* the max-avg discrepancy is at most ``2 d w_max + 2``;
* if the initial load of every node ``i`` is at least ``d * w_max * s_i``
  on top of a load vector on which ``A`` induces no negative load, the same
  bound holds for the max-min discrepancy and the infinite source is never
  used (Lemma 7).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..continuous.base import ContinuousProcess
from ..exceptions import ProcessError
from ..tasks.assignment import TaskAssignment
from ..tasks.task import Task
from .flow_imitation import EdgeSendPlan, FlowImitationBalancer, TaskSelectionPolicy

__all__ = ["DeterministicFlowImitation", "theorem3_discrepancy_bound", "theorem3_required_base_load"]


def theorem3_discrepancy_bound(max_degree: int, max_task_weight: float) -> float:
    """Return the Theorem 3 discrepancy bound ``2 * d * w_max + 2``."""
    return 2.0 * max_degree * max_task_weight + 2.0


def theorem3_required_base_load(max_degree: int, max_task_weight: float) -> float:
    """Return the per-speed-unit base load ``d * w_max`` required by Theorem 3(2)."""
    return float(max_degree) * float(max_task_weight)


class DeterministicFlowImitation(FlowImitationBalancer):
    """The paper's Algorithm 1: deterministic flow imitation ``D(A)``.

    Parameters
    ----------
    continuous:
        The continuous process ``A`` to discretize (fresh, round 0, starting
        from the same load vector as ``assignment``).
    assignment:
        The discrete workload at time 0.
    selection_policy:
        How the "arbitrary" task of the pseudocode is chosen when forwarding
        weighted tasks; one of :class:`TaskSelectionPolicy`.  Irrelevant for
        unit tokens.
    max_task_weight:
        Override for ``w_max`` (defaults to the maximum task weight present).
    """

    def __init__(
        self,
        continuous: ContinuousProcess,
        assignment: TaskAssignment,
        selection_policy: str = TaskSelectionPolicy.FIFO,
        max_task_weight: Optional[float] = None,
    ) -> None:
        super().__init__(continuous, assignment, max_task_weight=max_task_weight)
        if selection_policy not in TaskSelectionPolicy.ALL:
            raise ProcessError(
                f"unknown selection policy {selection_policy!r}; "
                f"valid policies: {TaskSelectionPolicy.ALL}"
            )
        self._policy = selection_policy
        self._unit_tokens_only = all(
            task.is_token
            for node in assignment.network.nodes
            for task in assignment.tasks_at(node)
        )

    @property
    def selection_policy(self) -> str:
        """The task-selection policy in use."""
        return self._policy

    @property
    def unit_tokens_only(self) -> bool:
        """Whether the workload consists exclusively of unit-weight tokens."""
        return self._unit_tokens_only

    def discrepancy_bound(self) -> float:
        """The Theorem 3 bound ``2 d w_max + 2`` for this instance."""
        return theorem3_discrepancy_bound(self.network.max_degree, self.w_max)

    def _reset_workload(self, workload) -> None:
        from ..tasks.weighted import WeightedLoads

        super()._reset_workload(workload)
        self._unit_tokens_only = (not isinstance(workload, WeightedLoads)
                                  or workload.max_weight() <= 1)

    # ------------------------------------------------------------------ #
    # per-edge planning
    # ------------------------------------------------------------------ #

    def _plan_edge_send(self, source: int, destination: int, residual: float,
                        pool: List[Task]) -> EdgeSendPlan:
        if self._unit_tokens_only:
            return self._plan_unit_tokens(source, destination, residual, pool)
        return self._plan_weighted(source, destination, residual, pool)

    def _plan_unit_tokens(self, source: int, destination: int, residual: float,
                          pool: List[Task]) -> EdgeSendPlan:
        """Unit-token fast path: send ``floor(residual)`` tokens."""
        amount = int(math.floor(residual + 1e-9))
        if amount <= 0:
            return EdgeSendPlan(source=source, destination=destination)
        tasks, missing = self._take_unit_tokens(pool, amount)
        return EdgeSendPlan(source=source, destination=destination,
                            tasks=tasks, dummy_tokens=missing)

    def _plan_weighted(self, source: int, destination: int, residual: float,
                       pool: List[Task]) -> EdgeSendPlan:
        """General weighted-task path: the while-loop of the pseudocode."""
        plan = EdgeSendPlan(source=source, destination=destination)
        committed = 0.0
        # while y^hat - |S| > w_max: add another task (real if available, dummy otherwise)
        while residual - committed > self.w_max + 1e-9:
            task = self._pick_task(pool)
            if task is None:
                plan.dummy_tokens += 1
                committed += 1.0
            else:
                plan.tasks.append(task)
                committed += task.weight
        return plan

    def _pick_task(self, pool: List[Task]) -> Optional[Task]:
        """Remove and return one task from ``pool`` according to the policy."""
        if not pool:
            return None
        if self._policy == TaskSelectionPolicy.FIFO:
            return pool.pop(0)
        if self._policy == TaskSelectionPolicy.LARGEST_FIRST:
            index = max(range(len(pool)), key=lambda k: pool[k].weight)
        else:  # SMALLEST_FIRST
            index = min(range(len(pool)), key=lambda k: pool[k].weight)
        return pool.pop(index)
