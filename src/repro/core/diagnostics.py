"""Runtime invariant auditing for flow-imitation runs.

The correctness argument of the paper rests on a small number of per-round
invariants (Observations 4, 5 and 9; Lemmas 2 and 6).  The
:class:`FlowImitationAuditor` re-checks them after every round of a live run,
which serves two purposes:

* **validation** — the test-suite and the benchmarks can assert that an
  entire run never violated an invariant, not just its final state;
* **debugging** — users who plug their own continuous process into the
  framework (via :class:`~repro.continuous.general.GeneralLinearProcess`)
  get an immediate, localised report if that process breaks the assumptions
  (e.g. it is not additive, or it induces negative load).

The auditor is intentionally non-intrusive: it wraps an existing balancer and
observes it; it never changes the run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..exceptions import ProcessError
from .flow_imitation import FlowCoupledBalancer

__all__ = ["InvariantViolation", "AuditReport", "FlowImitationAuditor"]


@dataclass(frozen=True)
class InvariantViolation:
    """One detected violation of a paper invariant."""

    round_index: int
    invariant: str
    detail: str
    magnitude: float


@dataclass
class AuditReport:
    """Aggregate outcome of auditing a run."""

    rounds_checked: int = 0
    violations: List[InvariantViolation] = field(default_factory=list)
    max_flow_error: float = 0.0
    max_load_deviation: float = 0.0
    dummy_tokens: int = 0

    @property
    def clean(self) -> bool:
        """Whether no invariant was violated over the audited rounds."""
        return not self.violations

    def summary(self) -> str:
        """One-line human-readable summary."""
        status = "clean" if self.clean else f"{len(self.violations)} violation(s)"
        return (f"audited {self.rounds_checked} rounds: {status}; "
                f"max |flow error| = {self.max_flow_error:.3f}, "
                f"max |load deviation| = {self.max_load_deviation:.3f}, "
                f"dummy tokens = {self.dummy_tokens}")

    def as_extra(self) -> Dict[str, object]:
        """JSON-friendly view for ``RunResult.extra["audit"]``."""
        return {
            "rounds_checked": self.rounds_checked,
            "clean": self.clean,
            "max_flow_error": self.max_flow_error,
            "max_load_deviation": self.max_load_deviation,
            "dummy_tokens": self.dummy_tokens,
            "violations": [asdict(violation) for violation in self.violations],
        }


class FlowImitationAuditor:
    """Checks the paper's per-round invariants on a live flow-imitation run.

    Parameters
    ----------
    balancer:
        The :class:`~repro.core.flow_imitation.FlowCoupledBalancer` to audit
        — either backend: the audited quantities (flow errors, load
        deviation, dummy counters) are representation-agnostic.
    tolerance:
        Numerical slack added to every bound before reporting a violation.
    bus:
        Optional :class:`~repro.obs.bus.MetricsBus`: every violation found by
        :meth:`check_round` is additionally emitted as an
        ``"audit_violation"`` telemetry event.

    The audited invariants:

    * **Observation 4 / 9** — per-edge flow error bounded by ``w_max``;
    * **Lemma 6** — per-node deviation from the continuous load bounded by
      ``d * w_max`` while the infinite source is unused, and equal to the sum
      of the incident edge errors;
    * **conservation** — the real (non-dummy) workload is conserved exactly;
    * **non-negativity** — discrete loads never go negative.
    """

    def __init__(self, balancer: FlowCoupledBalancer, tolerance: float = 1e-9,
                 bus=None) -> None:
        if not isinstance(balancer, FlowCoupledBalancer):
            raise ProcessError("the auditor only audits flow-imitation balancers")
        self._balancer = balancer
        self._tolerance = float(tolerance)
        self._bus = bus
        self._report = AuditReport()
        self._original_weight = balancer.original_weight

    @property
    def report(self) -> AuditReport:
        """The audit report accumulated so far."""
        return self._report

    def check_round(self) -> List[InvariantViolation]:
        """Check all invariants against the balancer's current state.

        Returns the violations found in this check (also appended to the
        report).  Call this after every :meth:`advance` of the balancer.
        """
        balancer = self._balancer
        network = balancer.network
        round_index = balancer.round_index
        found: List[InvariantViolation] = []

        # Observation 4 / 9: |e_{i,j}| <= w_max.
        errors = balancer.flow_errors()
        worst_error = float(np.max(np.abs(errors))) if errors.size else 0.0
        self._report.max_flow_error = max(self._report.max_flow_error, worst_error)
        if worst_error > balancer.w_max + self._tolerance:
            edge = network.edges[int(np.argmax(np.abs(errors)))]
            found.append(InvariantViolation(
                round_index, "flow-error-bound",
                f"|e{edge}| = {worst_error:.4f} > w_max = {balancer.w_max}", worst_error))

        # Lemma 6: node deviation equals the sum of incident edge errors and is
        # bounded by d * w_max, as long as the infinite source is unused.
        if not balancer.used_infinite_source:
            deviation = balancer.load_deviation()
            worst_deviation = float(np.max(np.abs(deviation))) if deviation.size else 0.0
            self._report.max_load_deviation = max(self._report.max_load_deviation,
                                                  worst_deviation)
            bound = network.max_degree * balancer.w_max
            if worst_deviation > bound + self._tolerance:
                node = int(np.argmax(np.abs(deviation)))
                found.append(InvariantViolation(
                    round_index, "load-deviation-bound",
                    f"|x^D_{node} - x^A_{node}| = {worst_deviation:.4f} > d*w_max = {bound}",
                    worst_deviation))
            reconstructed = self._deviation_from_edge_errors(errors)
            mismatch = float(np.max(np.abs(deviation - reconstructed)))
            if mismatch > 1e-6:
                found.append(InvariantViolation(
                    round_index, "lemma6-identity",
                    f"deviation differs from sum of incident edge errors by {mismatch:.4f}",
                    mismatch))

        # Conservation of the real workload.
        real_total = float(balancer.loads(include_dummies=False).sum())
        drift = abs(real_total - self._original_weight)
        if drift > 1e-6:
            found.append(InvariantViolation(
                round_index, "conservation",
                f"real workload drifted by {drift:.6f}", drift))

        # Discrete loads never negative.
        loads = balancer.loads()
        minimum = float(loads.min()) if loads.size else 0.0
        if minimum < -self._tolerance:
            node = int(np.argmin(loads))
            found.append(InvariantViolation(
                round_index, "non-negativity",
                f"node {node} has negative discrete load {minimum:.4f}", -minimum))

        self._report.rounds_checked += 1
        self._report.dummy_tokens = balancer.dummy_tokens_created
        self._report.violations.extend(found)
        if self._bus is not None and found:
            for violation in found:
                self._bus.emit("audit_violation", "auditor",
                               round_index=violation.round_index,
                               invariant=violation.invariant,
                               detail=violation.detail,
                               magnitude=violation.magnitude)
        return found

    def _deviation_from_edge_errors(self, errors: np.ndarray) -> np.ndarray:
        """Lemma 6(1): x^D_i - x^A_i = sum over incident edges of e_{i,j}."""
        network = self._balancer.network
        deviation = np.zeros(network.num_nodes)
        for index, (u, v) in enumerate(network.edges):
            # errors[index] is e_{u,v} (canonical direction); e_{v,u} = -e_{u,v}.
            # A positive e_{u,v} means the discrete process still owes flow to v,
            # i.e. node u currently retains more load than its continuous twin.
            deviation[u] += errors[index]
            deviation[v] -= errors[index]
        return deviation

    def run_audited(self, rounds: int) -> AuditReport:
        """Advance the balancer ``rounds`` times, auditing after every round."""
        if rounds < 0:
            raise ProcessError("rounds must be non-negative")
        for _ in range(rounds):
            self._balancer.advance()
            self.check_round()
        return self._report

    def run_until_continuous_balanced(self, tolerance: float = 1.0,
                                      max_rounds: int = 1_000_000) -> AuditReport:
        """Audited version of the balancer's ``run_until_continuous_balanced``."""
        while not self._balancer.continuous.is_balanced(tolerance):
            if self._balancer.round_index >= max_rounds:
                raise ProcessError(
                    f"continuous process did not balance within {max_rounds} rounds")
            self._balancer.advance()
            self.check_round()
        return self._report
