"""Shared machinery for the paper's flow-imitation discretizations.

Both Algorithm 1 (deterministic flow imitation, Section 4) and Algorithm 2
(randomized flow imitation, Section 5) follow the same template:

1. simulate the continuous process ``A`` in parallel (every node can do this
   locally because the continuous dynamics are deterministic given the shared
   matching schedule);
2. per edge ``(i, j)`` track the *residual flow*
   ``y^hat_{i,j}(t) = f^A_{i,j}(t) - f^{D(A)}_{i,j}(t-1)`` — how much the
   discrete process lags behind the continuous one;
3. move whole tasks so that the discrete flow catches up with the continuous
   flow as closely as the task granularity allows, drawing unit-weight dummy
   tasks from an *infinite source* when a node's own tasks do not suffice.

The residual bookkeeping does not care how the discrete workload is
represented, so it lives in :class:`FlowCoupledBalancer`, which two load
backends share (see :mod:`repro.backend`):

* :class:`FlowImitationBalancer` (this module) — the *object* backend: one
  Python :class:`~repro.tasks.task.Task` per token, held in a
  :class:`~repro.tasks.assignment.TaskAssignment`.  Required for weighted
  tasks and for locality analyses that track task identity.
* :class:`~repro.backend.flow.ArrayFlowImitation` — the *array* backend: a
  single numpy ``int64`` count vector for unit-weight tokens.

The two algorithms differ only in how the target amount for a single edge and
round is derived from the residual; object-backend subclasses implement
:meth:`FlowImitationBalancer._plan_edge_send`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..continuous.base import BALANCE_TOLERANCE, ContinuousProcess
from ..discrete.base import DiscreteBalancer
from ..exceptions import ConvergenceError, ProcessError, TaskError
from ..obs.kernels import kernel_phase
from ..tasks.assignment import TaskAssignment
from ..tasks.load import as_token_counts
from ..tasks.task import Task, TaskFactory
from ..tasks.weighted import WeightedLoads

__all__ = [
    "EdgeSendPlan",
    "RoundReport",
    "FlowCoupledBalancer",
    "FlowImitationBalancer",
    "TaskSelectionPolicy",
]

#: Dummy tasks receive identifiers starting at this offset so they never clash
#: with identifiers of the original workload.
_DUMMY_ID_OFFSET = 10**12


class TaskSelectionPolicy:
    """Policies for choosing which "arbitrary" task to forward (Algorithm 1).

    The theorem holds for any choice; the policy only affects which concrete
    tasks travel, which matters for locality-style analyses.
    """

    FIFO = "fifo"
    LARGEST_FIRST = "largest-first"
    SMALLEST_FIRST = "smallest-first"

    ALL = (FIFO, LARGEST_FIRST, SMALLEST_FIRST)


@dataclass
class EdgeSendPlan:
    """A planned transfer over a single edge in a single round."""

    source: int
    destination: int
    tasks: List[Task] = field(default_factory=list)
    dummy_tokens: int = 0

    @property
    def weight(self) -> float:
        """Total weight that will be transferred (real tasks plus dummies)."""
        return sum(task.weight for task in self.tasks) + float(self.dummy_tokens)


@dataclass(frozen=True)
class RoundReport:
    """Statistics of one executed round of a flow-imitation process."""

    round_index: int
    transfers: int
    tasks_moved: int
    weight_moved: float
    dummy_tokens_created: int


class FlowCoupledBalancer(DiscreteBalancer):
    """Representation-agnostic base for processes coupled to a continuous one.

    Holds everything the flow-imitation template needs that does not depend
    on how tasks are stored: the continuous process, the per-edge cumulative
    discrete flow, the dummy-token counters and the per-round reports.
    Subclasses own the workload representation and must implement
    :meth:`loads`, :meth:`remove_dummies`, :meth:`_execute_round` and the
    re-coupling hooks.

    Parameters
    ----------
    continuous:
        The continuous process ``A`` to imitate.  It must be freshly
        constructed (round 0).  The balancer *owns* the process and advances
        it internally; callers should not advance it themselves.
    max_task_weight:
        The ``w_max`` used in the residual bookkeeping.
    original_weight:
        The total weight of the original workload (excluding any dummies).
    """

    def __init__(
        self,
        continuous: ContinuousProcess,
        max_task_weight: float,
        original_weight: float,
    ) -> None:
        super().__init__(continuous.network)
        if continuous.round_index != 0:
            raise ProcessError("the continuous process must not have been advanced yet")
        if max_task_weight <= 0:
            raise ProcessError("max_task_weight must be positive")
        self._continuous = continuous
        self._w_max = float(max_task_weight)
        self._original_weight = float(original_weight)
        self._discrete_cumulative = np.zeros(continuous.network.num_edges, dtype=float)
        self._dummy_tokens_created = 0
        self._used_infinite_source = False
        self._reports: List[RoundReport] = []

    # ------------------------------------------------------------------ #
    # state inspection
    # ------------------------------------------------------------------ #

    @property
    def continuous(self) -> ContinuousProcess:
        """The continuous process being imitated."""
        return self._continuous

    @property
    def w_max(self) -> float:
        """The maximum task weight ``w_max`` used in the residual bookkeeping."""
        return self._w_max

    @property
    def original_weight(self) -> float:
        """The total weight of the original workload (excluding any dummies)."""
        return self._original_weight

    @property
    def used_infinite_source(self) -> bool:
        """Whether any node ever had to draw dummy tasks from the infinite source."""
        return self._used_infinite_source

    @property
    def dummy_tokens_created(self) -> int:
        """The total number of dummy tokens created so far."""
        return self._dummy_tokens_created

    @property
    def round_reports(self) -> List[RoundReport]:
        """Per-round statistics of the executed rounds (copy)."""
        return list(self._reports)

    def discrete_cumulative_flows(self) -> np.ndarray:
        """Per-edge cumulative net discrete flow ``f^{D(A)}_{u,v}`` (canonical direction)."""
        return self._discrete_cumulative.copy()

    def flow_errors(self) -> np.ndarray:
        """Per-edge flow error ``e_{u,v}(t) = f^A_{u,v}(t) - f^{D(A)}_{u,v}(t)``.

        Observation 4 of the paper shows ``|e| <= w_max`` for Algorithm 1;
        Observation 9 gives the corresponding bound for Algorithm 2.
        """
        return self._continuous.cumulative_flows - self._discrete_cumulative

    def load_deviation(self) -> np.ndarray:
        """Per-node deviation of the discrete load from the continuous load.

        Lemma 6(1): ``x^{D(A)}_i(t) - x^A_i(t) = sum_{j in N(i)} e_{i,j}(t-1)``
        as long as no infinite source has been used, hence the deviation is
        bounded by ``d * w_max`` (Lemma 6(2)).
        """
        return self.loads(include_dummies=True) - self._continuous.load

    # ------------------------------------------------------------------ #
    # driving the run
    # ------------------------------------------------------------------ #

    def run_until_continuous_balanced(self, tolerance: float = BALANCE_TOLERANCE,
                                      max_rounds: int = 1_000_000) -> int:
        """Run the coupled processes until the continuous one is balanced.

        Returns the balancing time ``T^A``.  This is the time horizon at
        which Theorems 3 and 8 bound the discrete discrepancy.
        """
        while not self._continuous.is_balanced(tolerance):
            if self._round >= max_rounds:
                raise ConvergenceError(
                    f"continuous process did not balance within {max_rounds} rounds"
                )
            self.advance()
        return self._round

    def remove_dummies(self) -> float:
        """Eliminate all dummy tasks (the final step of the balancing process)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # O(n) re-coupling
    # ------------------------------------------------------------------ #

    def recouple(self, initial_load: Union[Sequence[float], WeightedLoads],
                 seed: Optional[int] = None) -> None:
        """Rewind the coupled pair to round 0 on a new workload.

        The continuous substrate is :meth:`~repro.continuous.base.ContinuousProcess.reset`
        in place (its cached spectral data — edge weights, transfer rates,
        the SOS ``beta`` — survives), its matching schedule, if any, is
        reseeded from ``seed``, and the discrete workload is rebuilt by the
        backend-specific :meth:`_reset_workload` hook.  The result is
        bit-identical to constructing a fresh balancer through
        :func:`repro.simulation.engine.make_balancer` with the same seed, but
        without recomputing topology-derived data: O(n + m) for the array
        backend instead of O(W).

        ``initial_load`` is either a unit-token integer load vector or a
        :class:`~repro.tasks.weighted.WeightedLoads` (columnar weight
        buckets) — the latter is how the dynamic streaming engine re-couples
        weighted streams in O(n) without materialising task objects.
        Backends that only store unit tokens reject weighted workloads.
        """
        if isinstance(initial_load, WeightedLoads):
            if initial_load.num_nodes != self.network.num_nodes:
                raise ProcessError(
                    f"workload spans {initial_load.num_nodes} nodes, "
                    f"network has {self.network.num_nodes}")
            workload: object = initial_load
            reference = initial_load.load_vector().astype(float)
            total = float(initial_load.total_weight())
            w_max = max(1.0, float(initial_load.max_weight()))
        else:
            counts = as_token_counts(initial_load, self.network, error=ProcessError)
            workload = counts
            reference = counts.astype(float)
            total = float(counts.sum())
            w_max = 1.0
        self._continuous.reset(reference)
        schedule = getattr(self._continuous, "schedule", None)
        if schedule is not None:
            schedule.reseed(seed)
        self._round = 0
        self._discrete_cumulative[:] = 0.0
        self._dummy_tokens_created = 0
        self._used_infinite_source = False
        self._reports = []
        self._original_weight = total
        self._w_max = w_max
        self._reset_workload(workload)
        self._reset_rng(seed)

    def _reset_workload(self, workload) -> None:
        """Rebuild the discrete workload from an integer token-count vector
        or a :class:`~repro.tasks.weighted.WeightedLoads`."""
        raise NotImplementedError

    def _reset_rng(self, seed: Optional[int]) -> None:
        """Hook for randomized subclasses: re-initialise rounding randomness."""


class FlowImitationBalancer(FlowCoupledBalancer):
    """Object-backend base class: flow imitation over a :class:`TaskAssignment`.

    Parameters
    ----------
    continuous:
        The continuous process ``A`` to imitate.  It must be freshly
        constructed (round 0) and its initial load vector must equal the load
        vector induced by ``assignment``.  The balancer *owns* the process and
        advances it internally; callers should not advance it themselves.
    assignment:
        The discrete workload: which node holds which (possibly weighted)
        tasks at time 0.
    max_task_weight:
        Override for ``w_max``.  Defaults to the maximum weight present in
        ``assignment`` (at least 1, the weight of dummy tasks).
    """

    def __init__(
        self,
        continuous: ContinuousProcess,
        assignment: TaskAssignment,
        max_task_weight: Optional[float] = None,
    ) -> None:
        if assignment.network is not continuous.network:
            raise ProcessError(
                "the task assignment and the continuous process must share the same network"
            )
        if continuous.round_index == 0 and not np.allclose(
                assignment.loads(), continuous.load, atol=1e-9):
            raise ProcessError(
                "the continuous process must start from the load vector induced by the assignment"
            )
        if max_task_weight is None:
            max_task_weight = max(1.0, assignment.max_task_weight())
        super().__init__(continuous, max_task_weight=max_task_weight,
                         original_weight=assignment.total_weight())
        self._assignment = assignment
        self._dummy_factory = TaskFactory(start_id=_DUMMY_ID_OFFSET)

    # ------------------------------------------------------------------ #
    # state inspection
    # ------------------------------------------------------------------ #

    @property
    def assignment(self) -> TaskAssignment:
        """The discrete task assignment (mutated in place as rounds execute)."""
        return self._assignment

    def loads(self, include_dummies: bool = True) -> np.ndarray:
        """Return the current discrete load vector."""
        return self._assignment.loads(include_dummies=include_dummies)

    # ------------------------------------------------------------------ #
    # the round
    # ------------------------------------------------------------------ #

    def _execute_round(self) -> None:
        with kernel_phase("continuous/advance"):
            self._continuous.advance()
        with kernel_phase("flow/object-round"):
            self._imitate_round()

    def _imitate_round(self) -> None:
        residual = self._continuous.cumulative_flows - self._discrete_cumulative

        # Partition residuals into per-sender requests (only one direction of an
        # edge can have positive residual flow).
        requests: Dict[int, List[Tuple[int, int, float]]] = {}
        for edge_idx, value in enumerate(residual):
            if value == 0.0:
                continue
            u, v = self.network.edges[edge_idx]
            if value > 0:
                requests.setdefault(u, []).append((v, edge_idx, float(value)))
            else:
                requests.setdefault(v, []).append((u, edge_idx, float(-value)))

        plans: List[Tuple[int, EdgeSendPlan]] = []
        pools: Dict[int, List[Task]] = {}
        for node, neighbor, edge_idx, amount in self._iter_requests(requests):
            pool = pools.get(node)
            if pool is None:
                pool = pools[node] = list(self._assignment.tasks_at(node))
            plan = self._plan_edge_send(node, neighbor, amount, pool)
            if plan.tasks or plan.dummy_tokens:
                plans.append((edge_idx, plan))

        transfers = 0
        tasks_moved = 0
        weight_moved = 0.0
        dummies_this_round = 0
        for edge_idx, plan in plans:
            for task in plan.tasks:
                self._assignment.move(task, plan.source, plan.destination)
                tasks_moved += 1
            for _ in range(plan.dummy_tokens):
                dummy = self._dummy_factory.create_dummy(origin=plan.source)
                self._assignment.add(plan.destination, dummy)
                dummies_this_round += 1
            sent = plan.weight
            weight_moved += sent
            transfers += 1
            u, _ = self.network.edges[edge_idx]
            signed = sent if plan.source == u else -sent
            self._discrete_cumulative[edge_idx] += signed

        if dummies_this_round:
            self._used_infinite_source = True
            self._dummy_tokens_created += dummies_this_round

        self._reports.append(
            RoundReport(
                round_index=self._round,
                transfers=transfers,
                tasks_moved=tasks_moved,
                weight_moved=weight_moved,
                dummy_tokens_created=dummies_this_round,
            )
        )

    def _iter_requests(self, requests: Dict[int, List[Tuple[int, int, float]]]):
        """Yield this round's send requests as ``(node, neighbor, edge_idx, amount)``.

        The canonical planning order — senders ascending, receivers ascending
        within a sender — which the array backend replicates with one lexsort.
        Overridable so permutation tests can prove that counter-mode
        (``rng_mode="counter"``) load trajectories do not depend on it.
        """
        for node in sorted(requests):
            for neighbor, edge_idx, amount in sorted(requests[node]):
                yield node, neighbor, edge_idx, amount

    def _plan_edge_send(self, source: int, destination: int, residual: float,
                        pool: List[Task]) -> EdgeSendPlan:
        """Decide which tasks ``source`` forwards to ``destination`` this round.

        ``pool`` contains the tasks of ``source`` that have not yet been
        committed to another neighbour in the same round; the implementation
        must remove any task it selects from ``pool``.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # dummies and re-coupling
    # ------------------------------------------------------------------ #

    def remove_dummies(self) -> float:
        """Eliminate all dummy tasks (the final step of the balancing process)."""
        return self._assignment.remove_dummies()

    def real_weight_buckets(self) -> List[Dict[int, int]]:
        """Per-node ``{weight: count}`` of the real tasks (for streaming sync).

        Only defined for integer-weight workloads (the weighted streaming
        engine's model); the columnar backend exposes the same method.
        """
        try:
            return WeightedLoads.from_assignment(self._assignment).buckets()
        except TaskError as exc:
            raise ProcessError(str(exc)) from exc

    def _reset_workload(self, workload) -> None:
        if isinstance(workload, WeightedLoads):
            self._assignment = workload.to_assignment(self.network)
        else:
            self._assignment = TaskAssignment.from_unit_loads(self.network, workload)
        self._dummy_factory = TaskFactory(start_id=_DUMMY_ID_OFFSET)

    # ------------------------------------------------------------------ #
    # helpers available to subclasses
    # ------------------------------------------------------------------ #

    def _take_unit_tokens(self, pool: List[Task], count: int) -> Tuple[List[Task], int]:
        """Take up to ``count`` tasks from ``pool``; return (tasks, missing)."""
        taken: List[Task] = []
        while pool and len(taken) < count:
            taken.append(pool.pop(0))
        return taken, count - len(taken)
