"""The paper's primary contribution: flow-imitation discretizations.

* :class:`DeterministicFlowImitation` — Algorithm 1 (Theorem 3).
* :class:`RandomizedFlowImitation` — Algorithm 2 (Theorem 8).
"""

from .algorithm1 import (
    DeterministicFlowImitation,
    theorem3_discrepancy_bound,
    theorem3_required_base_load,
)
from .algorithm2 import (
    RandomizedFlowImitation,
    theorem8_max_avg_bound,
    theorem8_max_min_bound,
    theorem8_required_base_load,
)
from .diagnostics import AuditReport, FlowImitationAuditor, InvariantViolation
from .flow_imitation import (
    EdgeSendPlan,
    FlowCoupledBalancer,
    FlowImitationBalancer,
    RoundReport,
    TaskSelectionPolicy,
)

__all__ = [
    "AuditReport",
    "FlowImitationAuditor",
    "InvariantViolation",
    "DeterministicFlowImitation",
    "RandomizedFlowImitation",
    "FlowCoupledBalancer",
    "FlowImitationBalancer",
    "EdgeSendPlan",
    "RoundReport",
    "TaskSelectionPolicy",
    "theorem3_discrepancy_bound",
    "theorem3_required_base_load",
    "theorem8_max_avg_bound",
    "theorem8_max_min_bound",
    "theorem8_required_base_load",
]
