"""Deterministic fault injection for the fault-tolerance test harness.

The self-healing grid driver (:mod:`repro.simulation.parallel`) and the
checkpoint/resume machinery (:mod:`repro.checkpoint`) only earn trust when
their recovery paths are exercised on demand.  This module provides the
faults: a picklable, **seed-keyed** :class:`FaultPlan` that a pool worker
consults at cell start and that deterministically

* raises :class:`~repro.exceptions.FaultInjected` inside a cell (an
  in-cell software error),
* kills the worker process outright with ``os._exit`` (a hard crash, which
  surfaces driver-side as ``BrokenProcessPool``), or
* delays a cell long enough to trip the driver's per-cell timeout,

each for the first *N* attempts of a given cell position, so a cell fails
exactly ``N`` times and then succeeds — the shape every retry test needs.
Because the plan keys on ``(cell position, attempt number)`` and nothing
else, an injected run is reproducible at any worker count.

:func:`random_fault_plan` draws a plan from a seed (for the recovery
benchmark's randomized campaigns); :func:`truncate_checkpoint` damages a
checkpoint file in place to exercise the corrupt-checkpoint path.

Fault plans are test/benchmark instruments.  Never attach one to a
production run: a kill fault in a ``workers=1`` (in-process) grid takes the
driver down with it.
"""

from __future__ import annotations

import os
import pathlib
import random
import time
from dataclasses import dataclass, field
from typing import Dict, Sequence, Union

from .exceptions import FaultInjected

__all__ = ["FaultPlan", "random_fault_plan", "truncate_checkpoint"]


@dataclass(frozen=True)
class FaultPlan:
    """Which grid cells fail, how, and for how many attempts.

    Each mapping goes ``cell position -> attempt count``: the fault fires on
    that cell's first ``count`` attempts and never again, so with enough
    retries the cell eventually succeeds.  ``delay_at`` holds seconds instead
    of a count and fires on the **first** attempt only (enough to trip a
    timeout once).  Positions are indices into the flat cell list handed to
    :func:`repro.simulation.parallel.run_cells` — the same numbering the
    relay uses for trace lanes.
    """

    raise_at: Dict[int, int] = field(default_factory=dict)
    kill_at: Dict[int, int] = field(default_factory=dict)
    delay_at: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name in ("raise_at", "kill_at"):
            for position, count in getattr(self, name).items():
                if count < 1:
                    raise ValueError(
                        f"{name}[{position}] must be >= 1, got {count}")
        for position, seconds in self.delay_at.items():
            if seconds <= 0:
                raise ValueError(
                    f"delay_at[{position}] must be positive, got {seconds}")

    @property
    def empty(self) -> bool:
        return not (self.raise_at or self.kill_at or self.delay_at)

    def positions(self) -> Sequence[int]:
        """All cell positions this plan touches, sorted."""
        return sorted(set(self.raise_at) | set(self.kill_at)
                      | set(self.delay_at))

    def apply(self, position: int, attempt: int) -> None:
        """Fire this plan's faults for one ``(cell, attempt)`` execution.

        Called by the worker at cell start.  ``attempt`` counts from 1.
        Order: delay first (a delayed cell may then also crash), then kill,
        then raise.
        """
        delay = self.delay_at.get(position, 0.0)
        if delay and attempt == 1:
            time.sleep(delay)
        if attempt <= self.kill_at.get(position, 0):
            # A hard crash: no exception, no cleanup, no exit handlers —
            # exactly what a OOM-killed or segfaulted worker looks like.
            os._exit(17)
        if attempt <= self.raise_at.get(position, 0):
            raise FaultInjected(
                f"injected failure in cell {position} (attempt {attempt})")


def random_fault_plan(num_cells: int, seed: int,
                      raise_fraction: float = 0.2,
                      kill_fraction: float = 0.0,
                      attempts: int = 1) -> FaultPlan:
    """Draw a deterministic fault plan over ``num_cells`` cell positions.

    Each position independently becomes a raise fault with probability
    ``raise_fraction`` and (otherwise) a kill fault with probability
    ``kill_fraction``; affected cells fail their first ``attempts`` attempts.
    The draw is a pure function of ``seed``, so benchmark campaigns are
    reproducible.
    """
    if num_cells < 0:
        raise ValueError("num_cells must be non-negative")
    rng = random.Random(seed)
    raise_at: Dict[int, int] = {}
    kill_at: Dict[int, int] = {}
    for position in range(num_cells):
        draw = rng.random()
        if draw < raise_fraction:
            raise_at[position] = attempts
        elif draw < raise_fraction + kill_fraction:
            kill_at[position] = attempts
    return FaultPlan(raise_at=raise_at, kill_at=kill_at)


def truncate_checkpoint(path: Union[str, pathlib.Path],
                        keep_fraction: float = 0.5) -> pathlib.Path:
    """Damage a checkpoint file in place by cutting off its tail.

    Keeps the first ``keep_fraction`` of the file's bytes — simulating a
    crash mid-write on a filesystem without atomic rename — so tests can
    assert :func:`repro.checkpoint.read_checkpoint` rejects it with
    :class:`~repro.exceptions.CheckpointError` instead of resuming from
    garbage.
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in [0, 1)")
    path = pathlib.Path(path)
    size = path.stat().st_size
    with open(path, "rb+") as handle:
        handle.truncate(int(size * keep_fraction))
    return path
