"""Task assignments: which node currently holds which tasks.

A :class:`TaskAssignment` is the discrete counterpart of a load vector: it
maps every node of a network to the multiset of tasks it currently holds.
All discrete balancing processes in this library mutate a ``TaskAssignment``
by moving whole tasks along edges; the induced load vector (total weight per
node) and makespans are derived quantities.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import TaskError
from ..network.graph import Network
from .task import Task, TaskFactory

__all__ = ["TaskAssignment"]


class TaskAssignment:
    """Mutable mapping of nodes to the tasks they hold.

    Parameters
    ----------
    network:
        The network whose nodes the tasks are assigned to.
    tasks_per_node:
        Optional initial assignment: a sequence (indexed by node id) of
        iterables of :class:`Task`.
    """

    def __init__(
        self,
        network: Network,
        tasks_per_node: Optional[Sequence[Iterable[Task]]] = None,
    ) -> None:
        self._network = network
        self._queues: List[Deque[Task]] = [deque() for _ in range(network.num_nodes)]
        self._loads = np.zeros(network.num_nodes, dtype=float)
        self._dummy_loads = np.zeros(network.num_nodes, dtype=float)
        self._task_locations: Dict[int, int] = {}
        if tasks_per_node is not None:
            if len(tasks_per_node) != network.num_nodes:
                raise TaskError(
                    f"expected {network.num_nodes} task lists, got {len(tasks_per_node)}"
                )
            for node, tasks in enumerate(tasks_per_node):
                for task in tasks:
                    self.add(node, task)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_unit_loads(cls, network: Network, loads: Sequence[int],
                        factory: Optional[TaskFactory] = None) -> "TaskAssignment":
        """Create an assignment of unit-weight tokens matching an integer load vector."""
        factory = factory or TaskFactory()
        loads = list(loads)
        if len(loads) != network.num_nodes:
            raise TaskError(f"expected {network.num_nodes} loads, got {len(loads)}")
        assignment = cls(network)
        for node, count in enumerate(loads):
            if count < 0 or int(count) != count:
                raise TaskError(f"unit load at node {node} must be a non-negative integer")
            for task in factory.create_many(int(count), weight=1.0, origin=node):
                assignment.add(node, task)
        return assignment

    def copy(self) -> "TaskAssignment":
        """Return an independent copy (tasks are shared, queues are not)."""
        clone = TaskAssignment(self._network)
        for node in self._network.nodes:
            for task in self._queues[node]:
                clone.add(node, task)
        return clone

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def network(self) -> Network:
        """The network the tasks live on."""
        return self._network

    @property
    def num_tasks(self) -> int:
        """Total number of tasks currently assigned (including dummies)."""
        return len(self._task_locations)

    def tasks_at(self, node: int) -> Tuple[Task, ...]:
        """Return the tasks currently held by ``node`` (in queue order)."""
        self._check_node(node)
        return tuple(self._queues[node])

    def location_of(self, task: Task) -> int:
        """Return the node currently holding ``task``."""
        try:
            return self._task_locations[task.task_id]
        except KeyError:
            raise TaskError(f"task {task.task_id} is not assigned to any node") from None

    def loads(self, include_dummies: bool = True) -> np.ndarray:
        """Return the load vector (total task weight per node).

        Parameters
        ----------
        include_dummies:
            When ``False`` the weight of dummy tasks is excluded — this is the
            "eliminate the dummy tokens at the end" view used when reporting
            final discrepancies for Theorem 3(1) / Theorem 8(1).
        """
        if include_dummies:
            return self._loads.copy()
        return self._loads - self._dummy_loads

    def load(self, node: int, include_dummies: bool = True) -> float:
        """Return the load of a single node."""
        self._check_node(node)
        if include_dummies:
            return float(self._loads[node])
        return float(self._loads[node] - self._dummy_loads[node])

    def dummy_loads(self) -> np.ndarray:
        """Return the per-node total weight of dummy tasks."""
        return self._dummy_loads.copy()

    def total_dummy_weight(self) -> float:
        """Return the total weight of all dummy tasks in the assignment."""
        return float(self._dummy_loads.sum())

    def total_weight(self, include_dummies: bool = True) -> float:
        """Return the total weight ``W`` of all assigned tasks."""
        return float(self.loads(include_dummies=include_dummies).sum())

    def max_task_weight(self) -> float:
        """Return ``w_max``, the maximum weight of any assigned task (0 if empty)."""
        weights = [task.weight for queue in self._queues for task in queue]
        return max(weights) if weights else 0.0

    def makespans(self, include_dummies: bool = True) -> np.ndarray:
        """Return the per-node makespan (load divided by speed)."""
        return self.loads(include_dummies=include_dummies) / self._network.speeds

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def add(self, node: int, task: Task) -> None:
        """Assign ``task`` to ``node``; the task must not already be assigned."""
        self._check_node(node)
        if task.task_id in self._task_locations:
            raise TaskError(f"task {task.task_id} is already assigned")
        self._queues[node].append(task)
        self._task_locations[task.task_id] = node
        self._loads[node] += task.weight
        if task.is_dummy:
            self._dummy_loads[node] += task.weight

    def remove(self, node: int, task: Task) -> None:
        """Remove ``task`` from ``node``."""
        self._check_node(node)
        if self._task_locations.get(task.task_id) != node:
            raise TaskError(f"task {task.task_id} is not held by node {node}")
        self._queues[node].remove(task)
        del self._task_locations[task.task_id]
        self._loads[node] -= task.weight
        if task.is_dummy:
            self._dummy_loads[node] -= task.weight

    def move(self, task: Task, source: int, destination: int) -> None:
        """Move ``task`` from ``source`` to ``destination``."""
        self.remove(source, task)
        self.add(destination, task)

    def move_many(self, tasks: Iterable[Task], source: int, destination: int) -> float:
        """Move several tasks at once; return the total weight moved."""
        moved = 0.0
        for task in tasks:
            self.move(task, source, destination)
            moved += task.weight
        return moved

    def remove_dummies(self) -> float:
        """Remove every dummy task from the assignment; return the weight removed."""
        removed = 0.0
        for node in self._network.nodes:
            dummies = [task for task in self._queues[node] if task.is_dummy]
            for task in dummies:
                self.remove(node, task)
                removed += task.weight
        return removed

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._network.num_nodes:
            raise TaskError(f"node {node} is outside 0..{self._network.num_nodes - 1}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TaskAssignment(n={self._network.num_nodes}, tasks={self.num_tasks}, "
            f"W={self.total_weight():.1f}, dummies={self.total_dummy_weight():.1f})"
        )
