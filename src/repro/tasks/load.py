"""Load vectors, makespans and discrepancy metrics.

These are the quantities the paper's theorems bound:

* the *makespan* of node ``i`` is ``x_i / s_i``;
* the *max-min discrepancy* of a load vector is the difference between the
  maximum and the minimum makespan;
* the *max-avg discrepancy* is the difference between the maximum makespan
  and ``W / S`` (the makespan of the perfectly balanced allocation);
* the potential ``Phi(t) = sum_i (x_i - s_i W / S)^2`` is the classical
  quadratic potential used by the prior work surveyed in Section 2.2.

All functions accept plain numpy arrays so they can be used on continuous
load vectors and on the induced loads of a :class:`TaskAssignment` alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..exceptions import TaskError
from ..network.graph import Network

__all__ = [
    "as_load_vector",
    "as_token_counts",
    "balanced_allocation",
    "makespans",
    "max_min_discrepancy",
    "max_avg_discrepancy",
    "min_avg_discrepancy",
    "quadratic_potential",
    "LoadSummary",
    "summarize_loads",
]


def as_load_vector(loads: Sequence[float], network: Network) -> np.ndarray:
    """Validate and convert ``loads`` into a float numpy array of length ``n``.

    Accepts any sequence (ndarrays pass through without a Python-list
    round-trip; an already-float ndarray is not copied by ``asarray``, so
    hot paths can call this every round for free).
    """
    array = np.asarray(loads, dtype=float)
    if array.shape != (network.num_nodes,):
        raise TaskError(
            f"load vector must have length {network.num_nodes}, got shape {array.shape}"
        )
    if not np.all(np.isfinite(array)):
        raise TaskError("load vector must contain only finite values")
    return array


def as_token_counts(loads: Sequence[float], network: Network,
                    error: type = TaskError) -> np.ndarray:
    """Validate ``loads`` as non-negative integer token counts (``int64``).

    The shared validate-and-convert step of every token-only process;
    ``error`` lets callers surface their own exception family.
    """
    array = np.asarray(loads, dtype=float)
    if array.shape != (network.num_nodes,):
        raise error(
            f"load vector must have length {network.num_nodes}, got shape {array.shape}"
        )
    if np.any(array < 0):
        raise error("token loads must be non-negative")
    if not np.allclose(array, np.round(array)):
        raise error("integer token loads are required")
    return np.round(array).astype(np.int64)


def balanced_allocation(total_weight: float, network: Network) -> np.ndarray:
    """Return the perfectly balanced allocation ``(W / S) * (s_1, ..., s_n)``."""
    speeds = network.speeds
    return total_weight * speeds / speeds.sum()


def makespans(loads: Sequence[float], network: Network) -> np.ndarray:
    """Return the per-node makespans ``x_i / s_i``."""
    return as_load_vector(loads, network) / network.speeds


def max_min_discrepancy(loads: Sequence[float], network: Network) -> float:
    """Return the difference between the maximum and minimum makespan."""
    spans = makespans(loads, network)
    return float(spans.max() - spans.min())


def max_avg_discrepancy(loads: Sequence[float], network: Network,
                        total_weight: Optional[float] = None) -> float:
    """Return the difference between the maximum makespan and ``W / S``.

    ``total_weight`` defaults to the sum of ``loads``; pass it explicitly when
    the reported loads exclude dummy tasks but the average should refer to the
    original workload.
    """
    vector = as_load_vector(loads, network)
    if total_weight is None:
        total_weight = float(vector.sum())
    average = total_weight / network.total_speed
    spans = vector / network.speeds
    return float(spans.max() - average)


def min_avg_discrepancy(loads: Sequence[float], network: Network,
                        total_weight: Optional[float] = None) -> float:
    """Return ``W / S`` minus the minimum makespan (how far the emptiest node lags)."""
    vector = as_load_vector(loads, network)
    if total_weight is None:
        total_weight = float(vector.sum())
    average = total_weight / network.total_speed
    spans = vector / network.speeds
    return float(average - spans.min())


def quadratic_potential(loads: Sequence[float], network: Network,
                        total_weight: Optional[float] = None) -> float:
    """Return ``Phi = sum_i (x_i - s_i * W / S)^2`` (Equation (6) of the paper)."""
    vector = as_load_vector(loads, network)
    if total_weight is None:
        total_weight = float(vector.sum())
    target = balanced_allocation(total_weight, network)
    return float(np.sum((vector - target) ** 2))


@dataclass(frozen=True)
class LoadSummary:
    """Immutable summary of a load vector's balance quality.

    Attributes mirror the metrics reported by the paper's theorems and the
    comparison tables.
    """

    total_weight: float
    max_makespan: float
    min_makespan: float
    average_makespan: float
    max_min_discrepancy: float
    max_avg_discrepancy: float
    potential: float

    def as_dict(self) -> dict:
        """Return the summary as a plain dictionary (handy for CSV/JSON dumps)."""
        return {
            "total_weight": self.total_weight,
            "max_makespan": self.max_makespan,
            "min_makespan": self.min_makespan,
            "average_makespan": self.average_makespan,
            "max_min_discrepancy": self.max_min_discrepancy,
            "max_avg_discrepancy": self.max_avg_discrepancy,
            "potential": self.potential,
        }


def summarize_loads(loads: Sequence[float], network: Network,
                    total_weight: Optional[float] = None) -> LoadSummary:
    """Compute a :class:`LoadSummary` for a load vector.

    Parameters
    ----------
    loads:
        The per-node loads.
    network:
        The network providing the speeds.
    total_weight:
        Total workload used for the "average" reference; defaults to the sum
        of ``loads``.
    """
    vector = as_load_vector(loads, network)
    if total_weight is None:
        total_weight = float(vector.sum())
    spans = vector / network.speeds
    average = total_weight / network.total_speed
    return LoadSummary(
        total_weight=total_weight,
        max_makespan=float(spans.max()),
        min_makespan=float(spans.min()),
        average_makespan=average,
        max_min_discrepancy=float(spans.max() - spans.min()),
        max_avg_discrepancy=float(spans.max() - average),
        potential=quadratic_potential(vector, network, total_weight),
    )
