"""Task and load model: weighted tasks, assignments, metrics and generators."""

from .assignment import TaskAssignment
from .load import (
    LoadSummary,
    as_load_vector,
    balanced_allocation,
    makespans,
    max_avg_discrepancy,
    max_min_discrepancy,
    min_avg_discrepancy,
    quadratic_potential,
    summarize_loads,
)
from .task import Task, TaskFactory
from .weighted import WeightedLoads, weighted_loads_from_task_counts
from . import generators

__all__ = [
    "Task",
    "TaskFactory",
    "TaskAssignment",
    "WeightedLoads",
    "weighted_loads_from_task_counts",
    "LoadSummary",
    "as_load_vector",
    "balanced_allocation",
    "makespans",
    "max_avg_discrepancy",
    "max_min_discrepancy",
    "min_avg_discrepancy",
    "quadratic_potential",
    "summarize_loads",
    "generators",
]
