"""Workload and speed-profile generators used by tests, examples and benches.

Two kinds of objects are generated:

* **integer load vectors** (for unit-token experiments): how many tokens each
  node starts with.  The classical worst case used throughout the load
  balancing literature — and the one implicit in the initial discrepancy
  ``K`` of the paper's convergence bounds — is the *point load*, where all
  tokens start on a single node.
* **task assignments** (for weighted-task experiments): concrete
  :class:`~repro.tasks.assignment.TaskAssignment` objects whose tasks carry
  integer weights drawn from a chosen distribution.

Speed profiles generate the heterogeneous-speed vectors of Section 3
(integers, minimum speed 1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..exceptions import TaskError
from ..network.graph import Network
from .assignment import TaskAssignment
from .task import TaskFactory

__all__ = [
    "point_load",
    "two_point_load",
    "uniform_random_load",
    "balanced_load",
    "half_nodes_load",
    "linear_gradient_load",
    "unit_token_assignment",
    "weighted_assignment",
    "uniform_speeds",
    "random_integer_speeds",
    "power_of_two_speeds",
    "proportional_to_degree_speeds",
]


# ---------------------------------------------------------------------- #
# integer load vectors (unit tokens)
# ---------------------------------------------------------------------- #


def point_load(network: Network, total_tokens: int, node: int = 0) -> np.ndarray:
    """All ``total_tokens`` tokens start on a single node (worst-case discrepancy)."""
    _check_total(total_tokens)
    loads = np.zeros(network.num_nodes, dtype=int)
    if not 0 <= node < network.num_nodes:
        raise TaskError(f"node {node} outside the network")
    loads[node] = total_tokens
    return loads


def two_point_load(network: Network, total_tokens: int) -> np.ndarray:
    """Tokens split evenly between the first and the last node."""
    _check_total(total_tokens)
    loads = np.zeros(network.num_nodes, dtype=int)
    loads[0] = total_tokens // 2
    loads[-1] = total_tokens - total_tokens // 2
    return loads


def uniform_random_load(network: Network, total_tokens: int,
                        seed: Optional[int] = None) -> np.ndarray:
    """Each token is placed on a node chosen independently and uniformly at random."""
    _check_total(total_tokens)
    rng = np.random.default_rng(seed)
    nodes = rng.integers(0, network.num_nodes, size=total_tokens)
    return np.bincount(nodes, minlength=network.num_nodes).astype(int)


def balanced_load(network: Network, tokens_per_speed_unit: int) -> np.ndarray:
    """A perfectly balanced integer load: ``tokens_per_speed_unit * s_i`` tokens on node ``i``.

    This is the ``x'' = l * (s_1, ..., s_n)`` padding of Theorems 3(2) and
    8(2); adding it to any other load vector guarantees the "sufficient
    initial load" condition when ``l`` is large enough.
    """
    if tokens_per_speed_unit < 0:
        raise TaskError("tokens_per_speed_unit must be non-negative")
    speeds = network.speeds
    if not np.allclose(speeds, np.round(speeds)):
        raise TaskError("balanced integer loads require integer speeds")
    return (tokens_per_speed_unit * np.round(speeds)).astype(int)


def half_nodes_load(network: Network, tokens_per_loaded_node: int,
                    seed: Optional[int] = None) -> np.ndarray:
    """A random half of the nodes start with a fixed number of tokens each."""
    if tokens_per_loaded_node < 0:
        raise TaskError("tokens_per_loaded_node must be non-negative")
    rng = np.random.default_rng(seed)
    n = network.num_nodes
    loaded = rng.choice(n, size=max(1, n // 2), replace=False)
    loads = np.zeros(n, dtype=int)
    loads[loaded] = tokens_per_loaded_node
    return loads


def linear_gradient_load(network: Network, max_tokens: int) -> np.ndarray:
    """Load decreasing linearly with the node index, from ``max_tokens`` down to 0."""
    if max_tokens < 0:
        raise TaskError("max_tokens must be non-negative")
    n = network.num_nodes
    if n == 1:
        return np.array([max_tokens], dtype=int)
    return np.round(np.linspace(max_tokens, 0, n)).astype(int)


# ---------------------------------------------------------------------- #
# task assignments
# ---------------------------------------------------------------------- #


def unit_token_assignment(network: Network, loads: Sequence[int],
                          factory: Optional[TaskFactory] = None) -> TaskAssignment:
    """Wrap an integer load vector into a unit-token :class:`TaskAssignment`."""
    return TaskAssignment.from_unit_loads(network, loads, factory=factory)


def weighted_assignment(
    network: Network,
    num_tasks: int,
    max_weight: int = 4,
    placement: str = "point",
    seed: Optional[int] = None,
    factory: Optional[TaskFactory] = None,
) -> TaskAssignment:
    """Generate ``num_tasks`` tasks with integer weights in ``[1, max_weight]``.

    Parameters
    ----------
    placement:
        ``"point"`` (all tasks on node 0), ``"uniform"`` (each task placed on
        a uniformly random node) or ``"proportional"`` (placement probability
        proportional to node speed — a "speed-aware but unbalanced" start).
    """
    if num_tasks < 0:
        raise TaskError("num_tasks must be non-negative")
    if max_weight < 1:
        raise TaskError("max_weight must be at least 1")
    rng = np.random.default_rng(seed)
    factory = factory or TaskFactory()
    assignment = TaskAssignment(network)

    if placement == "point":
        nodes = np.zeros(num_tasks, dtype=int)
    elif placement == "uniform":
        nodes = rng.integers(0, network.num_nodes, size=num_tasks)
    elif placement == "proportional":
        probabilities = network.speeds / network.total_speed
        nodes = rng.choice(network.num_nodes, size=num_tasks, p=probabilities)
    else:
        raise TaskError(
            f"unknown placement {placement!r}; expected 'point', 'uniform' or 'proportional'"
        )

    weights = rng.integers(1, max_weight + 1, size=num_tasks)
    for node, weight in zip(nodes, weights):
        assignment.add(int(node), factory.create(weight=float(weight), origin=int(node)))
    return assignment


# ---------------------------------------------------------------------- #
# speed profiles
# ---------------------------------------------------------------------- #


def uniform_speeds(network: Network) -> np.ndarray:
    """All nodes have speed 1 (the uniform-resource model)."""
    return np.ones(network.num_nodes, dtype=int)


def random_integer_speeds(network: Network, max_speed: int = 4,
                          seed: Optional[int] = None) -> np.ndarray:
    """Integer speeds drawn uniformly from ``{1, ..., max_speed}``."""
    if max_speed < 1:
        raise TaskError("max_speed must be at least 1")
    rng = np.random.default_rng(seed)
    return rng.integers(1, max_speed + 1, size=network.num_nodes).astype(int)


def power_of_two_speeds(network: Network, max_exponent: int = 3,
                        seed: Optional[int] = None) -> np.ndarray:
    """Speeds of the form ``2^k`` with ``k`` uniform in ``{0, ..., max_exponent}``."""
    if max_exponent < 0:
        raise TaskError("max_exponent must be non-negative")
    rng = np.random.default_rng(seed)
    exponents = rng.integers(0, max_exponent + 1, size=network.num_nodes)
    return (2 ** exponents).astype(int)


def proportional_to_degree_speeds(network: Network) -> np.ndarray:
    """Speed equal to the node degree (minimum 1) — models fatter links at hubs."""
    return np.maximum(network.degrees, 1).astype(int)


def _check_total(total: int) -> None:
    if total < 0:
        raise TaskError("the total number of tokens must be non-negative")
