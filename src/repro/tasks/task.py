"""Task model: indivisible, possibly weighted, work items.

The discrete setting of the paper deals with *atomic tasks*: a node can only
forward whole tasks to a neighbour.  A task has an integer weight
(``w_i >= 1``); when all weights equal 1 the tasks are called *tokens*.
Algorithm 1 may additionally create unit-weight *dummy* tasks from an
"infinite source" when a node's real load is insufficient; those are flagged
with :attr:`Task.is_dummy` and removed at the end of the balancing process.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

from ..exceptions import TaskError

__all__ = ["Task", "TaskFactory"]


@dataclass(frozen=True)
class Task:
    """An indivisible task.

    Attributes
    ----------
    task_id:
        Unique identifier (unique within one :class:`TaskFactory` / run).
    weight:
        Positive weight of the task.  Unit weight tasks are *tokens*.
    is_dummy:
        Whether the task was created by the infinite source of Algorithm 1 /
        Algorithm 2 rather than being part of the original workload.
    origin:
        Optional id of the node the task was initially assigned to (useful
        for locality analyses; not used by the algorithms themselves).
    """

    task_id: int
    weight: float = 1.0
    is_dummy: bool = False
    origin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise TaskError(f"task weight must be positive, got {self.weight}")
        if self.is_dummy and self.weight != 1.0:
            raise TaskError("dummy tasks always have unit weight")

    @property
    def is_token(self) -> bool:
        """Whether the task has unit weight."""
        return self.weight == 1.0


class TaskFactory:
    """Mints tasks with unique, monotonically increasing identifiers."""

    def __init__(self, start_id: int = 0) -> None:
        self._counter = itertools.count(start_id)

    def create(self, weight: float = 1.0, origin: Optional[int] = None) -> Task:
        """Create a regular task with the given weight."""
        return Task(task_id=next(self._counter), weight=weight, origin=origin)

    def create_dummy(self, origin: Optional[int] = None) -> Task:
        """Create a unit-weight dummy task (drawn from the infinite source)."""
        return Task(task_id=next(self._counter), weight=1.0, is_dummy=True, origin=origin)

    def create_many(self, count: int, weight: float = 1.0,
                    origin: Optional[int] = None) -> Iterator[Task]:
        """Yield ``count`` regular tasks of identical weight."""
        if count < 0:
            raise TaskError("cannot create a negative number of tasks")
        for _ in range(count):
            yield self.create(weight=weight, origin=origin)
