"""Columnar weighted workloads: per-node sorted weight buckets (CSR).

A :class:`WeightedLoads` is the columnar counterpart of a weighted
:class:`~repro.tasks.assignment.TaskAssignment`: instead of one Python
``Task`` object per work item it stores, per node, the *sorted distinct
weights* present and how many tasks carry each weight.  The three arrays
form a classic CSR layout:

* ``weights`` — concatenation of every node's distinct task weights
  (``int64``, strictly increasing within a node);
* ``counts`` — how many tasks of the corresponding weight the node holds;
* ``offsets`` — length ``n + 1``; node ``i`` owns the slice
  ``offsets[i]:offsets[i + 1]`` of ``weights``/``counts``.

Only **integer** weights are representable — which is exactly the paper's
model (``w_i >= 1``) — and tasks of equal weight are interchangeable for
every load-dynamics question, so the representation is lossless for
balancing purposes.  Task *identity* (origin, locality analyses) is the one
thing it drops; callers that need identity keep using ``TaskAssignment``.

The array backend (:mod:`repro.backend.weighted`) consumes ``WeightedLoads``
directly; the object backend materialises it into a ``TaskAssignment`` via
:meth:`WeightedLoads.to_assignment` using the canonical (ascending-weight)
task order, which is what keeps the two backends trajectory-identical.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import TaskError
from .assignment import TaskAssignment
from .task import TaskFactory

__all__ = ["WeightedLoads", "task_integer_weight", "weighted_loads_from_task_counts"]


def task_integer_weight(task) -> Optional[int]:
    """The task's weight as an ``int``, or ``None`` if it is not an integer.

    The single definition of "columnar-representable weight" shared by the
    backend resolution rules and every assignment-to-buckets conversion, so
    the accept/reject decision cannot diverge between call sites.
    """
    weight = task.weight
    if weight != int(weight):
        return None
    return int(weight)


class WeightedLoads:
    """Immutable columnar weighted workload (per-node sorted weight buckets).

    Parameters
    ----------
    weights / counts / offsets:
        The CSR arrays described in the module docstring.  ``weights`` must
        be strictly increasing within each node's slice and every weight and
        count must be a positive integer.
    """

    def __init__(self, weights: Sequence[int], counts: Sequence[int],
                 offsets: Sequence[int]) -> None:
        self.weights = np.asarray(weights, dtype=np.int64)
        self.counts = np.asarray(counts, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise TaskError("offsets must be a one-dimensional array of length n + 1")
        if self.weights.shape != self.counts.shape or self.weights.ndim != 1:
            raise TaskError("weights and counts must be parallel one-dimensional arrays")
        if self.offsets[0] != 0 or self.offsets[-1] != self.weights.size:
            raise TaskError("offsets must start at 0 and end at len(weights)")
        if np.any(np.diff(self.offsets) < 0):
            raise TaskError("offsets must be non-decreasing")
        if self.weights.size:
            if np.any(self.weights < 1):
                raise TaskError("task weights must be positive integers")
            if np.any(self.counts < 1):
                raise TaskError("bucket counts must be positive")
            inner = np.diff(self.weights)
            boundary = np.zeros(max(self.weights.size - 1, 0), dtype=bool)
            crossings = self.offsets[1:-1]  # slots where a new node's slice starts
            crossings = crossings[(crossings >= 1) & (crossings <= boundary.size)]
            boundary[crossings - 1] = True
            if np.any(inner[~boundary] <= 0):
                raise TaskError("weights must be strictly increasing within each node")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def from_buckets(cls, buckets: Sequence[Mapping[int, int]]) -> "WeightedLoads":
        """Build from one ``{weight: count}`` mapping per node."""
        weights: List[int] = []
        counts: List[int] = []
        offsets = [0]
        for node_buckets in buckets:
            for weight in sorted(node_buckets):
                count = int(node_buckets[weight])
                if count < 0:
                    raise TaskError("bucket counts must be non-negative")
                if count:
                    weights.append(int(weight))
                    counts.append(count)
            offsets.append(len(weights))
        return cls(weights, counts, offsets)

    @classmethod
    def from_unit_counts(cls, token_counts: Sequence[int]) -> "WeightedLoads":
        """Wrap an integer unit-token load vector (all weights 1)."""
        token_counts = np.asarray(token_counts, dtype=np.int64)
        return cls.from_buckets([{1: int(c)} if c else {} for c in token_counts])

    @classmethod
    def from_assignment(cls, assignment: TaskAssignment) -> "WeightedLoads":
        """Snapshot a task assignment's real (non-dummy) tasks as weight buckets.

        Raises :class:`TaskError` if any task carries a non-integer weight —
        such workloads cannot be represented columnarly.
        """
        buckets: List[Dict[int, int]] = []
        for node in assignment.network.nodes:
            node_bucket: Dict[int, int] = {}
            for task in assignment.tasks_at(node):
                if task.is_dummy:
                    continue
                weight = task_integer_weight(task)
                if weight is None:
                    raise TaskError(
                        f"task {task.task_id} has non-integer weight {task.weight}; "
                        "columnar weighted loads require integer weights")
                node_bucket[weight] = node_bucket.get(weight, 0) + 1
            buckets.append(node_bucket)
        return cls.from_buckets(buckets)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def num_nodes(self) -> int:
        """Number of nodes the workload spans."""
        return self.offsets.size - 1

    def num_tasks(self) -> int:
        """Total number of tasks."""
        return int(self.counts.sum())

    def total_weight(self) -> int:
        """Total weight of the workload."""
        return int((self.weights * self.counts).sum())

    def max_weight(self) -> int:
        """Maximum task weight present (0 when the workload is empty)."""
        return int(self.weights.max()) if self.weights.size else 0

    def load_vector(self) -> np.ndarray:
        """Per-node total weight as an ``int64`` vector."""
        loads = np.zeros(self.num_nodes, dtype=np.int64)
        node_of_bucket = np.repeat(np.arange(self.num_nodes), np.diff(self.offsets))
        np.add.at(loads, node_of_bucket, self.weights * self.counts)
        return loads

    def node_buckets(self, node: int) -> List[Tuple[int, int]]:
        """The ``(weight, count)`` buckets of one node (ascending weight)."""
        lo, hi = int(self.offsets[node]), int(self.offsets[node + 1])
        return [(int(w), int(c)) for w, c in zip(self.weights[lo:hi], self.counts[lo:hi])]

    def buckets(self) -> List[Dict[int, int]]:
        """All per-node ``{weight: count}`` mappings (copy)."""
        return [dict(self.node_buckets(node)) for node in range(self.num_nodes)]

    # ------------------------------------------------------------------ #
    # materialisation (object backend)
    # ------------------------------------------------------------------ #

    def to_assignment(self, network, factory: Optional[TaskFactory] = None) -> TaskAssignment:
        """Materialise one :class:`Task` per work item, in canonical order.

        Tasks are created per node in ascending weight order — the canonical
        queue order both backends use when (re)building from columnar state,
        which is what makes their trajectories comparable bit for bit.
        """
        if network.num_nodes != self.num_nodes:
            raise TaskError(
                f"workload spans {self.num_nodes} nodes, network has {network.num_nodes}")
        factory = factory or TaskFactory()
        assignment = TaskAssignment(network)
        for node in range(self.num_nodes):
            for weight, count in self.node_buckets(node):
                for task in factory.create_many(count, weight=float(weight), origin=node):
                    assignment.add(node, task)
        return assignment

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"WeightedLoads(n={self.num_nodes}, tasks={self.num_tasks()}, "
                f"W={self.total_weight()}, w_max={self.max_weight()})")


def weighted_loads_from_task_counts(
    task_counts: Sequence[int],
    max_weight: int,
    seed: Optional[int] = None,
) -> WeightedLoads:
    """Columnar weighted workload: ``task_counts[i]`` tasks on node ``i``.

    Each task's integer weight is drawn uniformly from ``[1, max_weight]``
    with a seeded generator, so the same ``(task_counts, max_weight, seed)``
    triple always produces the same workload — the weighted analogue of the
    integer-vector workload generators in :mod:`repro.tasks.generators`.
    """
    if max_weight < 1:
        raise TaskError("max_weight must be at least 1")
    task_counts = np.asarray(task_counts, dtype=np.int64)
    if np.any(task_counts < 0):
        raise TaskError("task counts must be non-negative")
    total = int(task_counts.sum())
    rng = np.random.default_rng(seed)
    draws = rng.integers(1, max_weight + 1, size=total)
    per_node_weight_counts = np.zeros((task_counts.size, max_weight + 1), dtype=np.int64)
    nodes = np.repeat(np.arange(task_counts.size), task_counts)
    np.add.at(per_node_weight_counts, (nodes, draws), 1)
    return WeightedLoads.from_buckets([
        {w: int(row[w]) for w in range(1, max_weight + 1) if row[w]}
        for row in per_node_weight_counts
    ])
