"""Potential-function analysis (the classical machinery of Section 2.2).

The prior work surveyed in the paper analyses discrete diffusion through the
quadratic potential ``Phi(t) = sum_i (x_i(t) - s_i W / S)^2``:

* in the continuous FOS process ``Phi`` drops by a factor of at least
  ``lambda^2`` per round (Muthukrishnan et al. [34]);
* the discrete round-down process behaves like the continuous one as long as
  the potential is large (``Phi(t+1) <= (1 + eps) lambda^2 Phi(t)`` whenever
  ``Phi(t) >= 16 d^2 n^2 / eps^2``).

This module records per-round potential traces for any process (continuous or
discrete), estimates the empirical per-round drop factor, and evaluates the
"large potential" threshold of [34] — the ablation benchmark
``benchmarks/bench_potential_drop.py`` uses it to show that the classical
analysis matches the simulation and where it stops being informative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from ..continuous.base import ContinuousProcess
from ..discrete.base import DiscreteBalancer
from ..exceptions import ProcessError
from ..network.graph import Network
from ..tasks.load import quadratic_potential

__all__ = [
    "PotentialTrace",
    "muthukrishnan_threshold",
    "track_potential",
    "estimate_drop_factor",
]

Balancer = Union[ContinuousProcess, DiscreteBalancer]


@dataclass
class PotentialTrace:
    """Per-round record of the quadratic potential of a balancing process.

    Attributes
    ----------
    values:
        ``Phi`` after each round; index 0 is the initial state.
    drop_factors:
        ``Phi(t+1) / Phi(t)`` for every round with ``Phi(t) > 0``.
    threshold:
        The ``16 d^2 n^2 / eps^2`` threshold of [34] for the network the
        trace was recorded on.
    rounds_above_threshold:
        Number of recorded rounds whose starting potential exceeded the
        threshold (the regime where the classical multiplicative-drop
        analysis applies).
    """

    values: List[float] = field(default_factory=list)
    drop_factors: List[float] = field(default_factory=list)
    threshold: float = 0.0
    rounds_above_threshold: int = 0

    @property
    def initial(self) -> float:
        """The initial potential ``Phi(0)``."""
        return self.values[0] if self.values else 0.0

    @property
    def final(self) -> float:
        """The potential after the last recorded round."""
        return self.values[-1] if self.values else 0.0

    @property
    def total_reduction(self) -> float:
        """``Phi(0) / Phi(end)`` (infinity when the final potential is zero)."""
        if not self.values:
            return 1.0
        if self.final == 0.0:
            return float("inf")
        return self.initial / self.final


def muthukrishnan_threshold(network: Network, epsilon: float = 0.5) -> float:
    """The ``16 d^2 n^2 / eps^2`` "large potential" threshold of [34]."""
    if not 0.0 < epsilon < 1.0:
        raise ProcessError("epsilon must lie in (0, 1)")
    d = network.max_degree
    n = network.num_nodes
    return 16.0 * d * d * n * n / (epsilon * epsilon)


def _loads_of(process: Balancer) -> np.ndarray:
    if isinstance(process, ContinuousProcess):
        return process.load
    return process.loads()


def track_potential(process: Balancer, rounds: int,
                    reference_weight: Optional[float] = None,
                    epsilon: float = 0.5) -> PotentialTrace:
    """Run ``process`` for ``rounds`` rounds and record its potential trace.

    Parameters
    ----------
    process:
        Any continuous or discrete balancer (it is advanced in place).
    reference_weight:
        Total weight used for the balanced target; defaults to the current
        total load (pass the original workload when dummies may appear).
    epsilon:
        The ``eps`` of the [34] threshold recorded alongside the trace.
    """
    if rounds < 0:
        raise ProcessError("rounds must be non-negative")
    network = process.network
    trace = PotentialTrace(threshold=muthukrishnan_threshold(network, epsilon))

    def record() -> float:
        value = quadratic_potential(_loads_of(process), network,
                                    total_weight=reference_weight)
        trace.values.append(value)
        return value

    previous = record()
    for _ in range(rounds):
        if previous > trace.threshold:
            trace.rounds_above_threshold += 1
        process.advance()
        current = record()
        if previous > 0:
            trace.drop_factors.append(current / previous)
        previous = current
    return trace


def estimate_drop_factor(trace: PotentialTrace, above_threshold_only: bool = False) -> float:
    """Estimate the average per-round multiplicative potential drop.

    Returns the geometric mean of the recorded ``Phi(t+1)/Phi(t)`` ratios
    (optionally restricted to rounds whose starting potential exceeded the
    [34] threshold).  Returns 1.0 when no usable rounds exist.
    """
    factors = trace.drop_factors
    if above_threshold_only:
        factors = factors[:trace.rounds_above_threshold]
    factors = [factor for factor in factors if factor > 0]
    if not factors:
        return 1.0
    return float(np.exp(np.mean(np.log(factors))))
