"""Aggregation of repeated (multi-seed) experiment measurements.

Randomized algorithms (Algorithm 2, the randomized-rounding baselines, random
matching schedules) are evaluated over several seeds; this module provides a
small, dependency-free statistics helper used by the experiment harness and
the benchmarks to report means, spreads and high quantiles of the measured
discrepancies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, TypeVar

import numpy as np

from ..exceptions import ExperimentError

__all__ = ["SampleStatistics", "summarize_samples", "aggregate_by"]

T = TypeVar("T")


@dataclass(frozen=True)
class SampleStatistics:
    """Summary statistics of a collection of scalar measurements."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    percentile_90: float

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "p90": self.percentile_90,
        }


def summarize_samples(samples: Sequence[float]) -> SampleStatistics:
    """Compute :class:`SampleStatistics` over a non-empty sequence of scalars."""
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise ExperimentError("cannot summarize an empty sample set")
    return SampleStatistics(
        count=int(values.size),
        mean=float(values.mean()),
        std=float(values.std(ddof=0)),
        minimum=float(values.min()),
        maximum=float(values.max()),
        median=float(np.median(values)),
        percentile_90=float(np.percentile(values, 90)),
    )


def aggregate_by(items: Iterable[T], key: Callable[[T], str],
                 value: Callable[[T], float]) -> Dict[str, SampleStatistics]:
    """Group ``items`` by ``key`` and summarize ``value`` within each group."""
    groups: Dict[str, List[float]] = {}
    for item in items:
        groups.setdefault(key(item), []).append(value(item))
    return {name: summarize_samples(values) for name, values in groups.items()}
