"""Checks for the structural properties required by the framework.

The paper's transformation applies to continuous processes that are
*additive* (Definition 3) and *terminating* (Definition 2).  Lemma 1 proves
both properties for FOS, SOS and the matching-based processes; the functions
in this module verify them numerically for concrete instances and are used
both by the test-suite (including hypothesis property tests) and by users who
plug in their own continuous processes.

A *process factory* is a callable ``factory(initial_load) -> ContinuousProcess``
building a fresh process on a fixed network from a given initial load vector.
For randomized processes (random matchings) the factory must couple all the
instances it creates to the same schedule — e.g. by closing over a shared
:class:`~repro.network.matchings.RandomMatchingSchedule`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..continuous.base import ContinuousProcess
from ..exceptions import ProcessError
from ..network.graph import Network

__all__ = [
    "ProcessFactory",
    "PropertyReport",
    "max_additivity_violation",
    "max_termination_violation",
    "is_additive",
    "is_terminating",
    "induces_negative_load",
]

ProcessFactory = Callable[[Sequence[float]], ContinuousProcess]


@dataclass(frozen=True)
class PropertyReport:
    """Result of a numerical property check."""

    property_name: str
    max_violation: float
    tolerance: float

    @property
    def holds(self) -> bool:
        """Whether the property holds up to the tolerance."""
        return self.max_violation <= self.tolerance


def max_additivity_violation(factory: ProcessFactory, load_a: Sequence[float],
                             load_b: Sequence[float], rounds: int) -> float:
    """Return the largest additivity violation over ``rounds`` rounds.

    Three coupled instances are run from ``load_a``, ``load_b`` and their sum;
    the violation of round ``t`` is the maximum over edges of
    ``|y(t) - y'(t) - y''(t)|`` (checked separately for both directions) plus
    the corresponding load-vector deviation.
    """
    if rounds < 1:
        raise ProcessError("need at least one round to check additivity")
    load_a = np.asarray(list(load_a), dtype=float)
    load_b = np.asarray(list(load_b), dtype=float)
    process_sum = factory(load_a + load_b)
    process_a = factory(load_a)
    process_b = factory(load_b)
    worst = 0.0
    for _ in range(rounds):
        flows_sum = process_sum.advance()
        flows_a = process_a.advance()
        flows_b = process_b.advance()
        worst = max(
            worst,
            float(np.max(np.abs(flows_sum.forward - flows_a.forward - flows_b.forward))),
            float(np.max(np.abs(flows_sum.backward - flows_a.backward - flows_b.backward))),
            float(np.max(np.abs(process_sum.load - process_a.load - process_b.load))),
        )
    return worst


def max_termination_violation(factory: ProcessFactory, network: Network,
                              level: float, rounds: int) -> float:
    """Return the largest flow sent by a process started from a balanced vector.

    A terminating process transfers zero net load when started from
    ``level * (s_1, ..., s_n)``; the returned value is the maximum absolute
    net per-edge flow observed over ``rounds`` rounds (0 for a terminating
    process), plus the drift of the load vector.
    """
    if rounds < 1:
        raise ProcessError("need at least one round to check termination")
    if level < 0:
        raise ProcessError("the balanced level must be non-negative")
    balanced = level * network.speeds
    process = factory(balanced)
    worst = 0.0
    for _ in range(rounds):
        flows = process.advance()
        worst = max(worst, float(np.max(np.abs(flows.net()))) if len(flows.net()) else 0.0)
        worst = max(worst, float(np.max(np.abs(process.load - balanced))))
    return worst


def is_additive(factory: ProcessFactory, load_a: Sequence[float], load_b: Sequence[float],
                rounds: int = 10, tolerance: float = 1e-8) -> PropertyReport:
    """Check additivity (Definition 3) numerically."""
    violation = max_additivity_violation(factory, load_a, load_b, rounds)
    return PropertyReport("additive", violation, tolerance)


def is_terminating(factory: ProcessFactory, network: Network, level: float = 5.0,
                   rounds: int = 10, tolerance: float = 1e-8) -> PropertyReport:
    """Check the terminating property (Definition 2) numerically."""
    violation = max_termination_violation(factory, network, level, rounds)
    return PropertyReport("terminating", violation, tolerance)


def induces_negative_load(factory: ProcessFactory, load: Sequence[float],
                          rounds: int) -> bool:
    """Whether the process induces negative load on ``load`` within ``rounds`` rounds.

    This is the numerical counterpart of Definition 1: it runs the process and
    reports whether any node's outgoing demand ever exceeded its load.
    """
    process = factory(load)
    for _ in range(rounds):
        process.advance()
        if process.induced_negative_load:
            return True
    return process.induced_negative_load
