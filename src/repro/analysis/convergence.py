"""Convergence measurement for continuous processes.

The balancing time of a continuous process ``A`` is

    ``T^A = min { t : |x_i(t) - W s_i / S| <= 1 for all i }``

(Section 3).  This module measures ``T^A`` empirically, records traces of the
distance to the balanced state, and compares measured times against the
spectral predictions of Section 2.1 (used by
``benchmarks/bench_continuous_convergence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..continuous.base import BALANCE_TOLERANCE, ContinuousProcess
from ..exceptions import ConvergenceError

__all__ = ["ConvergenceTrace", "measure_balancing_time", "convergence_trace"]


@dataclass
class ConvergenceTrace:
    """Per-round record of how far a continuous process is from balanced.

    Attributes
    ----------
    rounds:
        Number of rounds executed.
    max_deviation:
        ``max_i |x_i(t) - W s_i / S|`` after each round (index 0 is the
        initial state, before any round).
    potential:
        The quadratic potential ``Phi(t)`` after each round.
    balanced_at:
        The first round index at which the process was balanced (within the
        tolerance), or ``None`` if it never balanced during the trace.
    """

    rounds: int
    max_deviation: List[float] = field(default_factory=list)
    potential: List[float] = field(default_factory=list)
    balanced_at: Optional[int] = None


def measure_balancing_time(process: ContinuousProcess,
                           tolerance: float = BALANCE_TOLERANCE,
                           max_rounds: int = 1_000_000) -> int:
    """Run ``process`` until balanced and return the balancing time ``T``."""
    return process.run_until_balanced(tolerance=tolerance, max_rounds=max_rounds)


def convergence_trace(process: ContinuousProcess, max_rounds: int,
                      tolerance: float = BALANCE_TOLERANCE,
                      stop_when_balanced: bool = True) -> ConvergenceTrace:
    """Run ``process`` for up to ``max_rounds`` rounds, recording a trace.

    Parameters
    ----------
    stop_when_balanced:
        When ``True`` (default), stop as soon as the process is balanced.
    """
    if max_rounds < 0:
        raise ConvergenceError("max_rounds must be non-negative")
    target = process.balanced_target()
    trace = ConvergenceTrace(rounds=0)

    def record() -> None:
        deviation = float(np.max(np.abs(process.load - target)))
        trace.max_deviation.append(deviation)
        trace.potential.append(float(np.sum((process.load - target) ** 2)))

    record()
    if process.is_balanced(tolerance):
        trace.balanced_at = process.round_index
        if stop_when_balanced:
            return trace
    for _ in range(max_rounds):
        process.advance()
        trace.rounds += 1
        record()
        if trace.balanced_at is None and process.is_balanced(tolerance):
            trace.balanced_at = process.round_index
            if stop_when_balanced:
                break
    return trace
