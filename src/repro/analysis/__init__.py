"""Analysis toolkit: process properties, convergence measurement, aggregation."""

from .aggregate import SampleStatistics, aggregate_by, summarize_samples
from .convergence import ConvergenceTrace, convergence_trace, measure_balancing_time
from .potential import (
    PotentialTrace,
    estimate_drop_factor,
    muthukrishnan_threshold,
    track_potential,
)
from .properties import (
    PropertyReport,
    induces_negative_load,
    is_additive,
    is_terminating,
    max_additivity_violation,
    max_termination_violation,
)

__all__ = [
    "SampleStatistics",
    "aggregate_by",
    "summarize_samples",
    "ConvergenceTrace",
    "convergence_trace",
    "measure_balancing_time",
    "PotentialTrace",
    "estimate_drop_factor",
    "muthukrishnan_threshold",
    "track_potential",
    "PropertyReport",
    "induces_negative_load",
    "is_additive",
    "is_terminating",
    "max_additivity_violation",
    "max_termination_violation",
]
