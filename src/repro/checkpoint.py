"""Checkpoint/resume for dynamic streams: crash-tolerant, bit-identical.

A long dynamic run (:func:`repro.dynamic.stream.run_stream`) historically
lost everything on a crash.  This module snapshots a
:class:`~repro.dynamic.stream.StreamingEngine` to a single JSON file and
restores it such that the resumed trajectory is **bit-identical** to the
uninterrupted run — under ``rng_mode="counter"`` exactly (every randomized
draw is a pure function of ``(seed, round, edge)``), and in practice for
``"sequential"`` runs too, because restoration replays the post-boundary
rounds instead of guessing at RNG internals.

What a checkpoint holds
-----------------------
* the engine's immutable **configuration** (algorithm, substrate, seed,
  selection policy, backend, rng mode) and its SHA-256 ``config_hash``
  computed through the run store's canonical-JSON machinery — a checkpoint
  can only be restored onto the configuration that produced it;
* the full mutable **state**: stable-label graph/speeds/loads, run-level
  counters, the event timeline, the event generators' bit-generator states
  (the event-stream position), and the last coupling *boundary* plus the
  number of event-free rounds advanced since it;
* the run's **traces so far** and total horizon, so the resumed
  :class:`~repro.simulation.results.RunResult` covers the whole run from
  round 0;
* a ``version`` and free-form ``meta`` (the CLI stores the originating
  :class:`~repro.simulation.scenario.DynamicScenario` so ``repro resume``
  can rebuild the event generator by itself).

Restoration re-couples the balancer at the boundary with the original
per-coupling seed and replays the rounds since — the continuous substrate,
matching schedule and balancer RNG all land in exactly the state the
uninterrupted run had, with no balancer internals in the file.  A
post-replay integrity check compares the replayed loads against the
snapshotted ones, so a corrupt (e.g. truncated) checkpoint fails loudly
with :class:`~repro.exceptions.CheckpointError` rather than silently
diverging.  Writes are atomic (temp file + ``fsync`` + rename): a crash
*during* checkpointing leaves the previous snapshot intact.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Union

from .dynamic.events import EventGenerator
from .dynamic.stream import StreamingEngine
from .exceptions import CheckpointError
from .simulation.results import RunResult
from .store.runstore import canonical_json, config_hash

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "StreamCheckpoint",
    "checkpoint_engine",
    "write_checkpoint",
    "read_checkpoint",
    "restore_engine",
    "resume_stream",
]

PathLike = Union[str, pathlib.Path]

#: Magic string identifying a stream checkpoint file.
CHECKPOINT_FORMAT = "repro-stream-checkpoint"

#: Bump on any incompatible change to the snapshot layout; readers reject
#: checkpoints from other versions instead of misinterpreting them.
CHECKPOINT_VERSION = 1


@dataclass
class StreamCheckpoint:
    """One engine snapshot plus everything needed to finish the run.

    ``config``/``state`` are :meth:`StreamingEngine.config_dict` /
    :meth:`StreamingEngine.state_dict`; ``config_hash`` is filled in (and
    verified on read) automatically.  ``trace_max_min`` /
    ``trace_total_weight`` are the run's traces up to and including the
    checkpointed round; ``total_rounds`` is the run's horizon so resume
    knows how far to continue.  ``meta`` travels verbatim (scenario
    provenance for the CLI).
    """

    config: Dict[str, object]
    state: Dict[str, object]
    total_rounds: Optional[int] = None
    trace_max_min: List[float] = field(default_factory=list)
    trace_total_weight: List[float] = field(default_factory=list)
    meta: Optional[Dict[str, object]] = None
    format: str = CHECKPOINT_FORMAT
    version: int = CHECKPOINT_VERSION
    config_hash: str = ""
    created: str = ""

    def __post_init__(self) -> None:
        if not self.config_hash:
            self.config_hash = config_hash(self.config)
        if not self.created:
            # repro: allow[R002] provenance timestamp, never read back into logic
            self.created = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())

    @property
    def round_index(self) -> int:
        """The round the snapshot was taken at (rounds already executed)."""
        return int(self.state["round"])


def checkpoint_engine(engine: StreamingEngine,
                      total_rounds: Optional[int] = None,
                      trace: Optional[List[float]] = None,
                      totals: Optional[List[float]] = None,
                      meta: Optional[Dict[str, object]] = None) -> StreamCheckpoint:
    """Snapshot a live engine (plus the driver's traces) into a checkpoint."""
    return StreamCheckpoint(
        config=engine.config_dict(),
        state=engine.state_dict(),
        total_rounds=total_rounds,
        trace_max_min=list(trace) if trace is not None else [],
        trace_total_weight=list(totals) if totals is not None else [],
        meta=dict(meta) if meta is not None else None,
    )


def write_checkpoint(checkpoint: StreamCheckpoint, path: PathLike) -> pathlib.Path:
    """Atomically serialise a checkpoint to ``path`` (canonical JSON).

    The snapshot is written to a temporary file in the same directory,
    fsync'd, and renamed over ``path`` — a crash mid-write can never corrupt
    an existing checkpoint, so the latest *complete* snapshot always
    survives.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # a shallow field dict, not dataclasses.asdict: the timeline in `state`
    # grows with the run, and asdict's per-leaf deepcopy recursion makes
    # each snapshot O(history) slower than serialising it directly
    data = {f.name: getattr(checkpoint, f.name) for f in fields(checkpoint)}
    payload = canonical_json(data) + "\n"
    handle = tempfile.NamedTemporaryFile(
        "w", dir=path.parent, prefix=path.name + ".", suffix=".tmp",
        delete=False)
    try:
        with handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def read_checkpoint(path: PathLike) -> StreamCheckpoint:
    """Load and validate a checkpoint file.

    Raises :class:`~repro.exceptions.CheckpointError` when the file is
    missing, truncated or otherwise not valid JSON, was written by a
    different format version, or when its ``config_hash`` does not match its
    ``config`` (tampering / partial write).
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise CheckpointError(f"no such checkpoint: {path}")
    try:
        data = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CheckpointError(
            f"checkpoint {path} is corrupt or truncated ({exc})") from exc
    if not isinstance(data, dict) or data.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path} is not a {CHECKPOINT_FORMAT} file")
    version = data.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version}, "
            f"this library reads version {CHECKPOINT_VERSION}")
    unknown = set(data) - set(StreamCheckpoint.__dataclass_fields__)
    if unknown:
        raise CheckpointError(
            f"checkpoint {path} carries unknown fields {sorted(unknown)}")
    try:
        checkpoint = StreamCheckpoint(**data)
    except TypeError as exc:
        raise CheckpointError(f"checkpoint {path} is malformed ({exc})") from exc
    expected = config_hash(checkpoint.config)
    if checkpoint.config_hash != expected:
        raise CheckpointError(
            f"checkpoint {path} config hash mismatch: stored "
            f"{checkpoint.config_hash[:12]}…, recomputed {expected[:12]}… — "
            f"the configuration was modified after the snapshot was taken")
    return checkpoint


def _generator_from_meta(checkpoint: StreamCheckpoint) -> EventGenerator:
    """Rebuild the event generator from the checkpoint's scenario metadata."""
    meta = checkpoint.meta or {}
    scenario_data = meta.get("scenario")
    if not scenario_data:
        raise CheckpointError(
            "this checkpoint carries no scenario metadata; pass a freshly "
            "constructed event generator of the original shape to resume it")
    from .dynamic.events import make_event_generator
    from .simulation.scenario import DynamicScenario

    scenario = DynamicScenario.from_dict(dict(scenario_data))
    network = scenario.build_network()
    seeds = scenario._purpose_seeds()
    return make_event_generator(scenario.events, network,
                                scenario.tokens_per_node, seed=seeds.events)


def restore_engine(checkpoint: StreamCheckpoint,
                   generator: Optional[EventGenerator] = None,
                   bus=None) -> StreamingEngine:
    """Rebuild a live :class:`StreamingEngine` from a checkpoint.

    ``generator`` must be a freshly constructed event generator of the same
    shape as the checkpointed run's (its randomness position is restored
    from the snapshot); when omitted, it is rebuilt from the checkpoint's
    scenario metadata if present.
    """
    if generator is None:
        generator = _generator_from_meta(checkpoint)
    return StreamingEngine.restore(checkpoint.config, checkpoint.state,
                                   generator, bus=bus)


def resume_stream(source: Union[PathLike, StreamCheckpoint],
                  generator: Optional[EventGenerator] = None,
                  rounds: Optional[int] = None,
                  bus=None,
                  checkpoint_every: Optional[int] = None,
                  checkpoint_path: Optional[PathLike] = None) -> RunResult:
    """Resume an interrupted dynamic run from its latest checkpoint.

    Restores the engine, then continues stepping until the stored horizon
    (override with ``rounds``), optionally re-checkpointing every
    ``checkpoint_every`` rounds (default target: the source path when
    ``source`` is a path).  Returns the **whole run's**
    :class:`~repro.simulation.results.RunResult` — traces start at round 0
    and, under counter RNG, are bit-identical to the uninterrupted run's.
    """
    if isinstance(source, StreamCheckpoint):
        checkpoint = source
    else:
        checkpoint = read_checkpoint(source)
        if checkpoint_every is not None and checkpoint_path is None:
            checkpoint_path = source
    if checkpoint_every is not None and checkpoint_path is None:
        raise CheckpointError("checkpoint_every requires a checkpoint_path")
    target = rounds if rounds is not None else checkpoint.total_rounds
    if target is None:
        raise CheckpointError(
            "the checkpoint stores no horizon; pass rounds= to resume")
    if target < checkpoint.round_index:
        raise CheckpointError(
            f"cannot resume to round {target}: the checkpoint is already at "
            f"round {checkpoint.round_index}")
    engine = restore_engine(checkpoint, generator=generator, bus=bus)
    trace = list(checkpoint.trace_max_min)
    totals = list(checkpoint.trace_total_weight)
    if len(trace) != checkpoint.round_index + 1:
        raise CheckpointError(
            f"checkpoint trace length {len(trace)} does not match round "
            f"{checkpoint.round_index} (expected {checkpoint.round_index + 1})")
    meta = checkpoint.meta
    while engine.round_index < target:
        engine.step()
        trace.append(engine.current_discrepancy())
        totals.append(float(engine.total_real_load()))
        if checkpoint_every is not None and (
                engine.round_index % checkpoint_every == 0
                or engine.round_index == target):
            write_checkpoint(
                checkpoint_engine(engine, total_rounds=target, trace=trace,
                                  totals=totals, meta=meta),
                checkpoint_path)
    return engine.result(trace_max_min=trace, trace_total_weight=totals)
