"""Reporting helpers: CSV / JSON export and terminal-friendly ASCII charts.

The experiment harness returns plain lists of dictionaries; this module turns
them into artefacts a user can keep (CSV files for spreadsheets, JSON for
further processing) or inspect directly in a terminal (aligned tables are in
:func:`repro.simulation.experiments.format_table`; here we add horizontal bar
charts and sparkline-style traces for quick visual comparison without any
plotting dependency).
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..exceptions import ExperimentError

__all__ = [
    "rows_to_csv",
    "rows_to_json",
    "load_rows_from_csv",
    "bar_chart",
    "sparkline",
    "trace_chart",
]

PathLike = Union[str, pathlib.Path]

_SPARK_LEVELS = " .:-=+*#%@"


def _normalise_rows(rows: Iterable[Dict[str, object]]) -> List[Dict[str, object]]:
    rows = list(rows)
    if not rows:
        raise ExperimentError("cannot export an empty row list")
    return rows


def rows_to_csv(rows: Iterable[Dict[str, object]], path: PathLike,
                columns: Optional[Sequence[str]] = None) -> pathlib.Path:
    """Write rows to a CSV file and return its path."""
    rows = _normalise_rows(rows)
    if columns is None:
        columns = list(rows[0].keys())
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def rows_to_json(rows: Iterable[Dict[str, object]], path: PathLike) -> pathlib.Path:
    """Write rows to a JSON file (a list of objects) and return its path."""
    rows = _normalise_rows(rows)
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(rows, handle, indent=2, default=str)
        handle.write("\n")
    return path


def _coerce_cell(text: str) -> object:
    """Best-effort typed view of one CSV cell.

    ``csv`` gives back strings; this restores the common row types so a
    CSV round-trip preserves values, not just their repr: empty cells
    (``None`` columns) come back as ``None``, ``"True"``/``"False"`` as
    booleans, integer and float literals as numbers, everything else as the
    original string.
    """
    if text == "":
        return None
    if text == "True":
        return True
    if text == "False":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def load_rows_from_csv(path: PathLike, coerce: bool = True) -> List[Dict[str, object]]:
    """Read back a CSV produced by :func:`rows_to_csv`.

    By default cell values are coerced back to their natural types
    (``None`` / bool / int / float / str — see :func:`_coerce_cell`), so
    ``load_rows_from_csv(rows_to_csv(rows, path))`` round-trips the common
    row types instead of returning everything as strings.  Pass
    ``coerce=False`` for the raw string view.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ExperimentError(f"no such file: {path}")
    with path.open() as handle:
        rows = list(csv.DictReader(handle))
    if not coerce:
        return rows
    return [{key: _coerce_cell(value) for key, value in row.items()}
            for row in rows]


def bar_chart(values: Dict[str, float], width: int = 40,
              title: Optional[str] = None) -> str:
    """Render a labelled horizontal bar chart as plain text.

    Values must be non-negative; bars are scaled to the maximum value.
    """
    if not values:
        raise ExperimentError("bar_chart needs at least one value")
    if any(value < 0 for value in values.values()):
        raise ExperimentError("bar_chart values must be non-negative")
    scale = max(values.values()) or 1.0
    label_width = max(len(label) for label in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        filled = int(round(width * value / scale))
        lines.append(f"{label.ljust(label_width)} | {'#' * filled} {value:g}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """Render a sequence of non-negative values as a one-line sparkline."""
    values = list(values)
    if not values:
        raise ExperimentError("sparkline needs at least one value")
    top = max(values)
    if top <= 0:
        return _SPARK_LEVELS[0] * len(values)
    characters = []
    for value in values:
        level = int(round((len(_SPARK_LEVELS) - 1) * max(value, 0.0) / top))
        characters.append(_SPARK_LEVELS[level])
    return "".join(characters)


def trace_chart(traces: Dict[str, Sequence[float]], width: int = 60,
                title: Optional[str] = None) -> str:
    """Render several per-round traces as labelled sparklines (down-sampled to ``width``)."""
    if not traces:
        raise ExperimentError("trace_chart needs at least one trace")
    label_width = max(len(label) for label in traces)
    lines = []
    if title:
        lines.append(title)
    for label, trace in traces.items():
        trace = list(trace)
        if not trace:
            raise ExperimentError(f"trace {label!r} is empty")
        if len(trace) > width:
            step = len(trace) / width
            trace = [trace[int(index * step)] for index in range(width)]
        lines.append(f"{label.ljust(label_width)} | {sparkline(trace)} "
                     f"(start {trace[0]:g}, end {trace[-1]:g})")
    return "\n".join(lines)
