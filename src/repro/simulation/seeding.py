"""Per-purpose seed derivation for sweeps and parallel grids.

A sweep run historically passed **one integer seed** to every randomized
component: the topology sample, the workload placement, the matching
schedule and the algorithm's internal randomness all consumed the same
number.  That re-correlates components that the experiment design treats as
independent — adding seeds adds replicas of the *same* coupling between,
say, a random topology and a random workload, instead of sampling the two
independently.

:func:`purpose_seeds` fixes this with :class:`numpy.random.SeedSequence`:
the run seed spawns one child stream per purpose, so each component draws
from an independent, well-mixed stream while the whole run stays a pure
function of ``(seed,)``.  Because the derivation is deterministic and
order-free it is also what makes sharded parallel sweeps
(:mod:`repro.simulation.parallel`) bit-identical to serial ones — a worker
only needs the run seed to reconstruct every component stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["SEED_PURPOSES", "PurposeSeeds", "purpose_seeds"]

#: The independent randomness consumers of one run, in spawn order.  New
#: purposes are appended: SeedSequence children are keyed by spawn index, so
#: extending the tuple never changes the seeds of existing purposes.
SEED_PURPOSES = ("topology", "workload", "schedule", "algorithm", "events")


@dataclass(frozen=True)
class PurposeSeeds:
    """Independent child seeds for the components of one (cell, seed) run.

    ``events`` seeds the dynamic-scenario event generator; it defaults to
    ``None`` because static runs have no event stream.
    """

    topology: Optional[int]
    workload: Optional[int]
    schedule: Optional[int]
    algorithm: Optional[int]
    events: Optional[int] = None

    @classmethod
    def legacy(cls, seed: Optional[int]) -> "PurposeSeeds":
        """The historical behaviour: every purpose reuses the same integer."""
        return cls(topology=seed, workload=seed, schedule=seed, algorithm=seed,
                   events=seed)


def purpose_seeds(seed: Optional[int], legacy: bool = False) -> PurposeSeeds:
    """Derive one independent child seed per purpose from a run seed.

    ``None`` (fresh OS entropy everywhere) and ``legacy=True`` (the
    historical reuse of one integer) pass the seed through unchanged so
    existing call sites and recorded trajectories stay reproducible.
    """
    if seed is None or legacy:
        return PurposeSeeds.legacy(seed)
    children = np.random.SeedSequence(int(seed)).spawn(len(SEED_PURPOSES))
    values = [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]
    return PurposeSeeds(*values)
