"""Experiment harness: the parameter sweeps behind every table and figure.

Each function reproduces one experiment from DESIGN.md's experiment index and
returns a list of plain dictionaries (one per table row / figure point).  The
benchmarks in ``benchmarks/`` call these functions, print the rows with
:func:`format_table` and assert the qualitative shape the paper reports
(who is independent of ``n``, who wins, by roughly what factor).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..analysis.aggregate import summarize_samples
from ..analysis.convergence import measure_balancing_time
from ..core.algorithm1 import theorem3_discrepancy_bound, theorem3_required_base_load
from ..core.algorithm2 import theorem8_max_avg_bound, theorem8_required_base_load
from ..exceptions import ExperimentError
from ..network import topologies
from ..network.graph import Network
from ..network.spectral import spectral_summary
from ..tasks.generators import (
    balanced_load,
    point_load,
    random_integer_speeds,
    weighted_assignment,
)
from .engine import (
    compare_algorithms,
    make_continuous,
    make_schedule,
    run_algorithm,
)
from .results import RunResult

__all__ = [
    "DEFAULT_TABLE1_ALGORITHMS",
    "DEFAULT_TABLE2_ALGORITHMS",
    "table1_graph_families",
    "table2_graph_families",
    "table1_rows",
    "table2_rows",
    "theorem3_rows",
    "theorem8_rows",
    "scaling_in_n_rows",
    "convergence_trace_rows",
    "continuous_convergence_rows",
    "initial_load_condition_rows",
    "format_table",
]

#: The diffusion-model algorithms compared in Table 1.
DEFAULT_TABLE1_ALGORITHMS = (
    "round-down",
    "quasirandom",
    "randomized-rounding",
    "excess-tokens",
    "algorithm1",
    "algorithm2",
)

#: The matching-model algorithms compared in Table 2.
DEFAULT_TABLE2_ALGORITHMS = (
    "matching-round-down",
    "matching-randomized",
    "algorithm1",
    "algorithm2",
)


def table1_graph_families(size: str = "small", seed: int = 7) -> Dict[str, Network]:
    """The four graph classes of Table 1 at a laptop-friendly size.

    ``size`` is ``"small"`` (fast, used by the test-suite), ``"medium"``
    (benchmark default) or ``"large"``.
    """
    if size == "small":
        return {
            "arbitrary (geometric)": topologies.random_geometric(48, seed=seed),
            "expander (4-regular)": topologies.random_regular(48, 4, seed=seed),
            "hypercube": topologies.hypercube(5),
            "torus (2d)": topologies.torus(7, dims=2),
        }
    if size == "medium":
        return {
            "arbitrary (geometric)": topologies.random_geometric(128, seed=seed),
            "expander (4-regular)": topologies.random_regular(128, 4, seed=seed),
            "hypercube": topologies.hypercube(7),
            "torus (2d)": topologies.torus(12, dims=2),
        }
    if size == "large":
        return {
            "arbitrary (geometric)": topologies.random_geometric(256, seed=seed),
            "expander (4-regular)": topologies.random_regular(256, 4, seed=seed),
            "hypercube": topologies.hypercube(8),
            "torus (2d)": topologies.torus(16, dims=2),
        }
    raise ExperimentError(f"unknown size {size!r}; expected 'small', 'medium' or 'large'")


def table2_graph_families(size: str = "small", seed: int = 7) -> Dict[str, Network]:
    """The graph classes used for the matching-model comparison (Table 2)."""
    return table1_graph_families(size=size, seed=seed)


def _point_load_instance(network: Network, tokens_per_node: int) -> np.ndarray:
    """The canonical worst-case workload: all tokens on node 0."""
    return point_load(network, tokens_per_node * network.num_nodes)


def table1_rows(
    size: str = "small",
    algorithms: Sequence[str] = DEFAULT_TABLE1_ALGORITHMS,
    tokens_per_node: int = 32,
    seed: int = 7,
    record_trace: bool = False,
) -> List[Dict[str, object]]:
    """Reproduce Table 1: final discrepancies of diffusion algorithms per graph class."""
    rows: List[Dict[str, object]] = []
    for family, network in table1_graph_families(size=size, seed=seed).items():
        load = _point_load_instance(network, tokens_per_node)
        results = compare_algorithms(
            network, load, algorithms, continuous_kind="fos", seed=seed,
            record_trace=record_trace,
        )
        for result in results:
            rows.append(_result_row(family, network, result))
    return rows


def table2_rows(
    size: str = "small",
    algorithms: Sequence[str] = DEFAULT_TABLE2_ALGORITHMS,
    matching_kind: str = "random-matching",
    tokens_per_node: int = 32,
    seed: int = 7,
    record_trace: bool = False,
) -> List[Dict[str, object]]:
    """Reproduce Table 2: final discrepancies in the matching model per graph class."""
    if matching_kind not in ("periodic-matching", "random-matching"):
        raise ExperimentError("matching_kind must be 'periodic-matching' or 'random-matching'")
    rows: List[Dict[str, object]] = []
    for family, network in table2_graph_families(size=size, seed=seed).items():
        load = _point_load_instance(network, tokens_per_node)
        results = compare_algorithms(
            network, load, algorithms, continuous_kind=matching_kind, seed=seed,
            record_trace=record_trace,
        )
        for result in results:
            row = _result_row(family, network, result)
            row["matching_kind"] = matching_kind
            rows.append(row)
    return rows


def theorem3_rows(
    degrees: Sequence[int] = (3, 5, 8),
    max_weights: Sequence[int] = (1, 2, 4),
    num_nodes: int = 48,
    tasks_per_node: int = 24,
    max_speed: int = 3,
    seed: int = 11,
) -> List[Dict[str, object]]:
    """Validate Theorem 3: Algorithm 1 with weighted tasks and speeds.

    For every (degree, w_max) combination the workload is placed on a random
    regular graph with heterogeneous speeds, padded with the balanced base
    load ``d * w_max * s_i`` required by Theorem 3(2), and Algorithm 1 runs
    until the continuous FOS process balances.  The row records the measured
    discrepancies against the ``2 d w_max + 2`` bound.
    """
    from ..tasks.task import TaskFactory

    rows: List[Dict[str, object]] = []
    padding_factory = TaskFactory(start_id=10**9)
    for degree in degrees:
        base = topologies.random_regular(num_nodes, degree, seed=seed)
        speeds = random_integer_speeds(base, max_speed=max_speed, seed=seed + degree)
        network = base.with_speeds(speeds)
        for w_max in max_weights:
            assignment = weighted_assignment(
                network, num_tasks=tasks_per_node * num_nodes, max_weight=w_max,
                placement="uniform", seed=seed + 13 * w_max,
            )
            base_level = int(math.ceil(theorem3_required_base_load(network.max_degree, w_max)))
            for node, count in enumerate(balanced_load(network, base_level)):
                for task in padding_factory.create_many(int(count), weight=1.0, origin=node):
                    assignment.add(node, task)
            result = run_algorithm(
                "algorithm1", network, assignment=assignment, continuous_kind="fos",
                seed=seed,
            )
            bound = theorem3_discrepancy_bound(network.max_degree, w_max)
            rows.append({
                "degree": network.max_degree,
                "w_max": w_max,
                "n": network.num_nodes,
                "rounds": result.rounds,
                "max_min": result.final_max_min,
                "max_avg": result.final_max_avg,
                "bound": bound,
                "within_bound": result.final_max_min <= bound + 1e-9,
                "used_infinite_source": result.used_infinite_source,
            })
    return rows


def theorem8_rows(
    dimensions: Sequence[int] = (4, 5, 6),
    tokens_per_node: int = 64,
    seeds: Sequence[int] = (3, 5, 7),
) -> List[Dict[str, object]]:
    """Validate Theorem 8: Algorithm 2 on hypercubes of growing dimension.

    For each hypercube dimension ``d`` the base load satisfies the Theorem
    8(2) condition and Algorithm 2 runs until the FOS substrate balances; the
    row reports the mean and worst measured discrepancies over the seeds
    together with the ``d/4 + sqrt(d log n)`` reference shape.
    """
    rows: List[Dict[str, object]] = []
    for dimension in dimensions:
        network = topologies.hypercube(dimension)
        required = int(math.ceil(theorem8_required_base_load(network.max_degree,
                                                             network.num_nodes)))
        load = point_load(network, tokens_per_node * network.num_nodes)
        load = load + balanced_load(network, required + tokens_per_node)
        max_min_samples = []
        max_avg_samples = []
        used_source = False
        rounds = 0
        for seed in seeds:
            result = run_algorithm(
                "algorithm2", network, initial_load=load, continuous_kind="fos",
                seed=seed,
            )
            max_min_samples.append(result.final_max_min)
            max_avg_samples.append(result.final_max_avg)
            used_source = used_source or result.used_infinite_source
            rounds = result.rounds
        shape = theorem8_max_avg_bound(network.max_degree, network.num_nodes)
        rows.append({
            "graph": network.name,
            "n": network.num_nodes,
            "degree": network.max_degree,
            "rounds": rounds,
            "max_min_mean": summarize_samples(max_min_samples).mean,
            "max_min_worst": max(max_min_samples),
            "max_avg_mean": summarize_samples(max_avg_samples).mean,
            "reference_shape": shape,
            "used_infinite_source": used_source,
        })
    return rows


def scaling_in_n_rows(
    family: str = "torus",
    sizes: Sequence[int] = (16, 36, 64, 100),
    algorithms: Sequence[str] = ("round-down", "algorithm1", "algorithm2"),
    tokens_per_node: int = 32,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Figure-style experiment: final max-min discrepancy as ``n`` grows at fixed degree.

    The paper's headline claim for Algorithm 1 is that its discrepancy is
    independent of ``n`` (and of the graph expansion), whereas round-down
    grows with the diameter.
    """
    rows: List[Dict[str, object]] = []
    for size in sizes:
        network = topologies.named_topology(family, size, seed=seed)
        load = _point_load_instance(network, tokens_per_node)
        results = compare_algorithms(network, load, algorithms,
                                     continuous_kind="fos", seed=seed)
        for result in results:
            rows.append(_result_row(family, network, result))
    return rows


def convergence_trace_rows(
    network: Network,
    algorithms: Sequence[str] = ("round-down", "algorithm1", "algorithm2"),
    tokens_per_node: int = 32,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Figure-style experiment: per-round max-min discrepancy traces."""
    load = _point_load_instance(network, tokens_per_node)
    results = compare_algorithms(network, load, algorithms, continuous_kind="fos",
                                 seed=seed, record_trace=True)
    rows: List[Dict[str, object]] = []
    for result in results:
        trace = result.trace_max_min or []
        for round_index, value in enumerate(trace):
            rows.append({
                "algorithm": result.algorithm,
                "round": round_index,
                "max_min": value,
            })
    return rows


def continuous_convergence_rows(
    size: str = "small",
    tokens_per_node: int = 32,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Measure continuous balancing times against the spectral predictions of Section 2.1."""
    rows: List[Dict[str, object]] = []
    for family, network in table1_graph_families(size=size, seed=seed).items():
        load = _point_load_instance(network, tokens_per_node)
        summary = spectral_summary(network)
        for kind in ("fos", "sos", "periodic-matching", "random-matching"):
            schedule = make_schedule(kind, network, seed=seed)
            process = make_continuous(kind, network, load, schedule=schedule, seed=seed)
            measured = measure_balancing_time(process, max_rounds=200_000)
            rows.append({
                "graph": family,
                "n": network.num_nodes,
                "kind": kind,
                "measured_T": measured,
                "lambda": summary.lambda_value,
                "spectral_gap": summary.gap,
                "gamma": summary.gamma,
            })
    return rows


def initial_load_condition_rows(
    network: Optional[Network] = None,
    base_levels: Sequence[int] = (0, 1, 2, 4, 8),
    tokens_on_hotspot: int = 256,
    algorithm: str = "algorithm1",
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Sweep the balanced base load and record when the infinite source is needed.

    Theorem 3(2) / Theorem 8(2) require a base load of ``d * w_max`` (resp.
    ``d/4 + O(sqrt(d log n))``) per speed unit for the max-min bound to hold
    without dummy tokens; this sweep shows the transition empirically.
    """
    if network is None:
        network = topologies.torus(6, dims=2)
    rows: List[Dict[str, object]] = []
    for level in base_levels:
        load = point_load(network, tokens_on_hotspot) + balanced_load(network, level)
        result = run_algorithm(algorithm, network, initial_load=load,
                               continuous_kind="fos", seed=seed)
        rows.append({
            "base_level": level,
            "required_level": theorem3_required_base_load(network.max_degree, 1.0),
            "dummy_tokens": result.dummy_tokens,
            "used_infinite_source": result.used_infinite_source,
            "max_min": result.final_max_min,
            "max_avg_no_dummies": result.final_max_avg_no_dummies,
        })
    return rows


# ---------------------------------------------------------------------- #
# formatting helpers
# ---------------------------------------------------------------------- #


def _result_row(family: str, network: Network, result: RunResult) -> Dict[str, object]:
    return {
        "graph": family,
        "n": network.num_nodes,
        "degree": network.max_degree,
        "algorithm": result.algorithm,
        "rounds": result.rounds,
        "max_min": result.final_max_min,
        "max_avg": result.final_max_avg,
        "dummy_tokens": result.dummy_tokens,
        "went_negative": result.went_negative,
    }


def format_table(rows: Iterable[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 float_format: str = "{:.2f}") -> str:
    """Render a list of dictionaries as an aligned plain-text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    table = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(row[index]) for row in table))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * widths[index] for index in range(len(columns)))
    body = "\n".join(
        "  ".join(row[index].ljust(widths[index]) for index in range(len(columns)))
        for row in table
    )
    return "\n".join([header, separator, body])
