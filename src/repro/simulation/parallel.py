"""Sharded process-pool driver for sweep and scenario grids.

Seed x configuration grids are embarrassingly parallel: every (cell, seed)
run is a pure function of a small, picklable spec — a
:class:`~repro.simulation.sweep.SweepConfiguration` plus a seed, a
:class:`~repro.simulation.scenario.Scenario`, or a
:class:`~repro.simulation.scenario.DynamicScenario`.  This module shards a
grid of such cells across a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges the per-run :class:`~repro.simulation.results.RunResult`s back in
grid order, **bit-identically** to the serial path:

* every worker executes exactly the same per-cell function the serial loop
  uses (:func:`repro.simulation.sweep.run_sweep_cell`,
  :func:`~repro.simulation.scenario.run_scenario`,
  :func:`~repro.simulation.scenario.run_dynamic_scenario`);
* per-purpose seed derivation (:mod:`repro.simulation.seeding`) makes each
  run a pure function of its spec — nothing depends on which worker runs it
  or in what order;
* for randomized algorithms, ``rng_mode="counter"`` keys every draw on
  ``(seed, round, edge-or-node)`` so trajectories are exactly reproducible
  regardless of scheduling.

Results come back wrapped in :class:`CellOutcome` envelopes carrying
per-cell wall-clock timing and the worker pid, so drivers (and the
``parallel`` benchmark suite) can report scaling and load-balance without
touching the :class:`RunResult` payloads being merged.

Telemetry crosses the process boundary by capture-and-relay
(:mod:`repro.obs.relay`): when the driver bus has a subscriber, each worker
runs its cell against a private bus with a recorder attached (plus an active
kernel-phase clock, :mod:`repro.obs.kernels`), and the captured stream rides
back inside the :class:`CellOutcome`.  The driver re-emits every event on
the main bus tagged with ``(worker, cell, cell_seed)`` — in **cell input
order**, buffering out-of-order completions — so the relayed stream is
identical (modulo attribution and wall-clock fields) at any worker count,
including ``workers=1``, which uses the same capture path.

Dispatch is chunked: cells are handed to workers ``chunksize`` at a time
(default: about four chunks per worker) to amortise pickling overhead while
keeping the queue fine-grained enough that one slow cell does not serialise
the grid.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..exceptions import ExperimentError
from ..obs.bus import MetricsBus
from ..obs.kernels import activate_kernel_clock, deactivate_kernel_clock
from ..obs.relay import CapturedEvent, TelemetryRecorder, relay_outcome
from .results import RunResult
from .scenario import DynamicScenario, Scenario, run_dynamic_scenario, run_scenario
from .sweep import SweepConfiguration, SweepResult, run_sweep_cell

__all__ = [
    "GridCell",
    "CellOutcome",
    "default_workers",
    "run_cells",
    "parallel_sweep",
    "parallel_grid_sweep",
    "grid_sweep_with_outcomes",
    "parallel_scenario_grid",
    "parallel_dynamic_grid",
    "timing_summary",
]

_SWEEP = "sweep"
_SCENARIO = "scenario"
_DYNAMIC = "dynamic"
_KINDS = (_SWEEP, _SCENARIO, _DYNAMIC)


@dataclass(frozen=True)
class GridCell:
    """One schedulable unit of a grid: a picklable spec plus its grid position.

    ``index`` is the cell's position in the caller's grid (used to merge
    results back in grid order); for sweep cells ``seed`` is the per-run
    seed and the remaining fields forward the sweep options.
    """

    kind: str
    spec: Union[SweepConfiguration, Scenario, DynamicScenario]
    index: int
    seed: Optional[int] = None
    record_trace: bool = False
    max_rounds: int = 200_000
    legacy_seeding: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ExperimentError(
                f"unknown grid cell kind {self.kind!r}; valid kinds: {_KINDS}")


@dataclass
class CellOutcome:
    """A finished cell: its result plus scheduling metadata.

    ``seconds`` is the in-worker wall-clock of the run itself (pickling and
    queueing excluded) and ``started`` the worker's monotonic clock at cell
    start; ``worker_pid`` identifies which pool process ran it.  When the
    cell ran with telemetry capture, ``events`` holds its complete in-worker
    event stream for the driver to relay.
    """

    cell: GridCell
    result: RunResult
    seconds: float
    worker_pid: int
    started: Optional[float] = None
    events: Optional[List[CapturedEvent]] = field(default=None, repr=False)


def _execute_cell(cell: GridCell, capture: bool = False) -> CellOutcome:
    """Run one cell (in a pool worker or inline) — the only execution path.

    With ``capture=True`` the cell runs against a private bus with a
    :class:`~repro.obs.relay.TelemetryRecorder` subscribed and a kernel-phase
    clock active, and the recorded stream is returned on the outcome.  The
    probes are read-only, so the trajectory is bit-identical either way.
    """
    bus: Optional[MetricsBus] = None
    recorder: Optional[TelemetryRecorder] = None
    if capture:
        bus = MetricsBus()
        recorder = TelemetryRecorder()
        bus.subscribe(recorder)
        activate_kernel_clock()
    try:
        start = time.perf_counter()
        if cell.kind == _SWEEP:
            result = run_sweep_cell(cell.spec, cell.seed,
                                    record_trace=cell.record_trace,
                                    max_rounds=cell.max_rounds,
                                    legacy_seeding=cell.legacy_seeding,
                                    bus=bus)
        elif cell.kind == _SCENARIO:
            result = run_scenario(cell.spec, bus=bus)
        else:
            result = run_dynamic_scenario(cell.spec, bus=bus)
        seconds = time.perf_counter() - start
    finally:
        if capture:
            deactivate_kernel_clock()
    return CellOutcome(cell=cell, result=result, seconds=seconds,
                       worker_pid=os.getpid(), started=start,
                       events=recorder.events if recorder is not None else None)


def _execute_chunk(cells: Sequence[GridCell], capture: bool) -> List[CellOutcome]:
    """Pool entry point: run one contiguous chunk of cells in this worker."""
    return [_execute_cell(cell, capture=capture) for cell in cells]


def _available_cores() -> int:
    """Cores this process may actually use (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_workers(num_cells: int) -> int:
    """The default pool size: one worker per usable core, never more than cells."""
    return max(1, min(num_cells, _available_cores()))


def _chunksize(num_cells: int, workers: int) -> int:
    # ~4 chunks per worker: coarse enough to amortise dispatch, fine enough
    # that the tail of the grid still load-balances across the pool.
    return max(1, num_cells // (workers * 4))


def _cell_label(cell: GridCell) -> str:
    if cell.kind == _SWEEP:
        return f"{cell.spec.label()} seed={cell.seed}"
    return getattr(cell.spec, "name", repr(cell.spec))


def _emit_cell_done(bus, outcome: CellOutcome, position: Optional[int] = None) -> None:
    """Publish one finished cell's envelope on the driver-side telemetry bus."""
    if bus is None or not bus.active:
        return
    result = outcome.result
    payload = dict(cell_kind=outcome.cell.kind, index=outcome.cell.index,
                   seed=outcome.cell.seed, label=_cell_label(outcome.cell),
                   seconds=outcome.seconds, worker_pid=outcome.worker_pid,
                   rounds=result.rounds, max_min=result.final_max_min)
    if position is not None:
        payload["position"] = position
    if outcome.started is not None:
        payload["started"] = outcome.started
    bus.emit("cell_done", "parallel", **payload)


def _deliver(bus, outcome: CellOutcome, position: int) -> None:
    """Relay one cell's captured stream, then its ``cell_done`` envelope.

    ``position`` is the cell's place in the grid's flat cell list — unique
    per cell, unlike ``GridCell.index`` which identifies the *merge group*
    (the configuration) and is shared by all its seeds — so trace viewers
    get one lane per cell.
    """
    if outcome.events is not None:
        relay_outcome(bus, outcome.events, worker=outcome.worker_pid,
                      cell=position, cell_seed=outcome.cell.seed)
    _emit_cell_done(bus, outcome, position)


def run_cells(cells: Sequence[GridCell], workers: Optional[int] = None,
              chunksize: Optional[int] = None, bus=None,
              capture: Optional[bool] = None,
              progress=None) -> List[CellOutcome]:
    """Execute a list of grid cells, sharded across a process pool.

    Returns one :class:`CellOutcome` per cell **in input order** regardless
    of completion order (the contract that makes merges deterministic).
    ``workers=None`` uses one worker per available core; ``workers=1`` runs
    serially in-process, which is also the fallback for single-cell grids.

    ``bus`` receives the run's telemetry on the driver side.  When the bus
    has a subscriber (or ``capture=True`` is forced), workers capture their
    in-cell event streams and the driver relays them — every round, kernel
    and recouple event, tagged with ``(worker, cell, cell_seed)`` — followed
    by one ``cell_done`` envelope per cell.  Relay order is cell input
    order at any worker count: out-of-order completions are buffered until
    their predecessors have been delivered.  ``capture=False`` restores the
    envelope-only behaviour.

    ``progress`` is an optional callback with an ``update(worker_pid=...,
    seconds=...)`` method (see :class:`repro.obs.progress.GridProgress`),
    invoked in *completion* order so the status line moves in real time.
    """
    cells = list(cells)
    if not cells:
        return []
    if workers is not None and workers < 1:
        raise ExperimentError("workers must be at least 1")
    if workers is None:
        workers = default_workers(len(cells))
    workers = min(workers, len(cells))
    if capture is None:
        capture = bus is not None and bus.active
    if workers == 1:
        outcomes: List[CellOutcome] = []
        for position, cell in enumerate(cells):
            outcome = _execute_cell(cell, capture=capture)
            _deliver(bus, outcome, position)
            if progress is not None:
                progress.update(worker_pid=outcome.worker_pid,
                                seconds=outcome.seconds)
            outcomes.append(outcome)
        return outcomes
    if chunksize is None:
        chunksize = _chunksize(len(cells), workers)
    chunks = [cells[offset:offset + chunksize]
              for offset in range(0, len(cells), chunksize)]
    slots: List[Optional[CellOutcome]] = [None] * len(cells)
    next_delivery = 0
    with ProcessPoolExecutor(max_workers=workers) as executor:
        pending = {executor.submit(_execute_chunk, chunk, capture): offset
                   for offset, chunk in zip(
                       range(0, len(cells), chunksize), chunks)}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                offset = pending.pop(future)
                for position, outcome in enumerate(future.result()):
                    slots[offset + position] = outcome
                    if progress is not None:
                        progress.update(worker_pid=outcome.worker_pid,
                                        seconds=outcome.seconds)
                # deliver the completed prefix, keeping relay order == input
                # order regardless of which chunk finished first
                while next_delivery < len(slots) \
                        and slots[next_delivery] is not None:
                    _deliver(bus, slots[next_delivery], next_delivery)
                    next_delivery += 1
    return list(slots)


def timing_summary(outcomes: Sequence[CellOutcome],
                   wall_seconds: Optional[float] = None) -> Dict[str, object]:
    """Aggregate per-cell timings: totals, extremes and per-worker load.

    Pass the driver-side ``wall_seconds`` (time around the ``run_cells``
    call) to additionally report ``wall_seconds`` and ``utilization`` —
    busy seconds divided by ``wall * workers_used``, the fraction of the
    pool's capacity the grid actually kept busy.
    """
    if not outcomes:
        summary: Dict[str, object] = {"cells": 0, "busy_seconds": 0.0,
                                      "workers_used": 0}
        if wall_seconds is not None:
            summary["wall_seconds"] = round(wall_seconds, 4)
        return summary
    seconds = [outcome.seconds for outcome in outcomes]
    by_worker: Dict[int, float] = {}
    for outcome in outcomes:
        by_worker[outcome.worker_pid] = by_worker.get(outcome.worker_pid, 0.0) \
            + outcome.seconds
    summary = {
        "cells": len(outcomes),
        "busy_seconds": round(sum(seconds), 4),
        "max_cell_seconds": round(max(seconds), 4),
        "min_cell_seconds": round(min(seconds), 4),
        "workers_used": len(by_worker),
        "per_worker_busy_seconds": [round(value, 4)
                                    for value in sorted(by_worker.values())],
    }
    if wall_seconds is not None:
        summary["wall_seconds"] = round(wall_seconds, 4)
        capacity = wall_seconds * len(by_worker)
        summary["utilization"] = round(sum(seconds) / capacity, 4) \
            if capacity > 0 else 0.0
    return summary


# ---------------------------------------------------------------------- #
# sweep grids
# ---------------------------------------------------------------------- #


def sweep_cells(configurations: Sequence[SweepConfiguration],
                seeds: Sequence[int], record_trace: bool = False,
                max_rounds: int = 200_000,
                legacy_seeding: bool = False) -> List[GridCell]:
    """Flatten a configuration x seed grid into schedulable cells."""
    if not seeds:
        raise ExperimentError("at least one seed is required")
    return [
        GridCell(kind=_SWEEP, spec=configuration, index=index, seed=seed,
                 record_trace=record_trace, max_rounds=max_rounds,
                 legacy_seeding=legacy_seeding)
        for index, configuration in enumerate(configurations)
        for seed in seeds
    ]


def _merge_sweeps(configurations: Sequence[SweepConfiguration],
                  outcomes: Sequence[CellOutcome]) -> List[SweepResult]:
    """Group run results back into one SweepResult per configuration.

    ``run_cells`` returns outcomes in cell order (configuration-major, seed
    order within a configuration), so appending in sequence reproduces the
    exact run order of the serial path.
    """
    results = [SweepResult(configuration=configuration)
               for configuration in configurations]
    for outcome in outcomes:
        results[outcome.cell.index].runs.append(outcome.result)
    return results


def parallel_sweep(configuration: SweepConfiguration, seeds: Sequence[int],
                   workers: Optional[int] = None, record_trace: bool = False,
                   max_rounds: int = 200_000,
                   legacy_seeding: bool = False, bus=None,
                   capture: Optional[bool] = None,
                   progress=None) -> SweepResult:
    """Sharded :func:`~repro.simulation.sweep.run_sweep`: one cell per seed.

    Bit-identical to ``run_sweep(configuration, seeds, ...)`` for every
    worker count — the pool executes the same :func:`run_sweep_cell` calls
    and the merge preserves seed order.
    """
    cells = sweep_cells([configuration], seeds, record_trace=record_trace,
                        max_rounds=max_rounds, legacy_seeding=legacy_seeding)
    outcomes = run_cells(cells, workers=workers, bus=bus, capture=capture,
                         progress=progress)
    return _merge_sweeps([configuration], outcomes)[0]


def parallel_grid_sweep(configurations: Sequence[SweepConfiguration],
                        seeds: Sequence[int], workers: Optional[int] = None,
                        legacy_seeding: bool = False, bus=None,
                        capture: Optional[bool] = None,
                        progress=None) -> List[SweepResult]:
    """Shard a whole configuration grid at (cell, seed) granularity.

    All ``len(configurations) * len(seeds)`` runs share one work queue, so a
    single expensive cell cannot serialise the grid the way per-cell
    parallelism would.  Results come back as one
    :class:`~repro.simulation.sweep.SweepResult` per configuration, in
    configuration order, bit-identical to the serial nested loop.
    """
    configurations = list(configurations)
    cells = sweep_cells(configurations, seeds, legacy_seeding=legacy_seeding)
    outcomes = run_cells(cells, workers=workers, bus=bus, capture=capture,
                         progress=progress)
    return _merge_sweeps(configurations, outcomes)


def grid_sweep_with_outcomes(configurations: Sequence[SweepConfiguration],
                             seeds: Sequence[int], workers: Optional[int] = None,
                             record_trace: bool = False,
                             legacy_seeding: bool = False, bus=None,
                             capture: Optional[bool] = None,
                             progress=None):
    """Like :func:`parallel_grid_sweep`, also returning the raw envelopes.

    Returns ``(sweep_results, outcomes)``: the merged per-configuration
    :class:`~repro.simulation.sweep.SweepResult` list plus the flat
    :class:`CellOutcome` list in cell order — what the run store needs to
    record each run together with its timing envelope
    (:func:`repro.store.record_sweep_outcomes`).
    """
    configurations = list(configurations)
    cells = sweep_cells(configurations, seeds, record_trace=record_trace,
                        legacy_seeding=legacy_seeding)
    outcomes = run_cells(cells, workers=workers, bus=bus, capture=capture,
                         progress=progress)
    return _merge_sweeps(configurations, outcomes), outcomes


# ---------------------------------------------------------------------- #
# scenario grids
# ---------------------------------------------------------------------- #


def _scenario_grid(kind: str, scenarios, workers: Optional[int], bus=None,
                   capture: Optional[bool] = None,
                   progress=None) -> List[RunResult]:
    cells = [GridCell(kind=kind, spec=scenario, index=index)
             for index, scenario in enumerate(scenarios)]
    return [outcome.result
            for outcome in run_cells(cells, workers=workers, bus=bus,
                                     capture=capture, progress=progress)]


def parallel_scenario_grid(scenarios: Sequence[Scenario],
                           workers: Optional[int] = None, bus=None,
                           capture: Optional[bool] = None,
                           progress=None) -> List[RunResult]:
    """Run a list of static scenarios across a process pool (input order)."""
    return _scenario_grid(_SCENARIO, scenarios, workers, bus=bus,
                          capture=capture, progress=progress)


def parallel_dynamic_grid(scenarios: Sequence[DynamicScenario],
                          workers: Optional[int] = None, bus=None,
                          capture: Optional[bool] = None,
                          progress=None) -> List[RunResult]:
    """Run a list of dynamic scenarios across a process pool (input order).

    The per-scenario trajectories (``trace_max_min`` etc.) are bit-identical
    to serial :func:`~repro.simulation.scenario.run_dynamic_scenario` calls;
    with ``rng_mode="counter"`` this holds exactly for the randomized
    algorithms too, which is what makes many-seed recovery-time statistics
    cheap to scale out.
    """
    return _scenario_grid(_DYNAMIC, scenarios, workers, bus=bus,
                          capture=capture, progress=progress)
