"""Sharded process-pool driver for sweep and scenario grids.

Seed x configuration grids are embarrassingly parallel: every (cell, seed)
run is a pure function of a small, picklable spec — a
:class:`~repro.simulation.sweep.SweepConfiguration` plus a seed, a
:class:`~repro.simulation.scenario.Scenario`, or a
:class:`~repro.simulation.scenario.DynamicScenario`.  This module shards a
grid of such cells across a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges the per-run :class:`~repro.simulation.results.RunResult`s back in
grid order, **bit-identically** to the serial path:

* every worker executes exactly the same per-cell function the serial loop
  uses (:func:`repro.simulation.sweep.run_sweep_cell`,
  :func:`~repro.simulation.scenario.run_scenario`,
  :func:`~repro.simulation.scenario.run_dynamic_scenario`);
* per-purpose seed derivation (:mod:`repro.simulation.seeding`) makes each
  run a pure function of its spec — nothing depends on which worker runs it
  or in what order;
* for randomized algorithms, ``rng_mode="counter"`` keys every draw on
  ``(seed, round, edge-or-node)`` so trajectories are exactly reproducible
  regardless of scheduling.

Results come back wrapped in :class:`CellOutcome` envelopes carrying
per-cell wall-clock timing and the worker pid, so drivers (and the
``parallel`` benchmark suite) can report scaling and load-balance without
touching the :class:`RunResult` payloads being merged.

Telemetry crosses the process boundary by capture-and-relay
(:mod:`repro.obs.relay`): when the driver bus has a subscriber, each worker
runs its cell against a private bus with a recorder attached (plus an active
kernel-phase clock, :mod:`repro.obs.kernels`), and the captured stream rides
back inside the :class:`CellOutcome`.  The driver re-emits every event on
the main bus tagged with ``(worker, cell, cell_seed)`` — in **cell input
order**, buffering out-of-order completions — so the relayed stream is
identical (modulo attribution and wall-clock fields) at any worker count,
including ``workers=1``, which uses the same capture path.

Dispatch is chunked: cells are handed to workers ``chunksize`` at a time
(default: about four chunks per worker) to amortise pickling overhead while
keeping the queue fine-grained enough that one slow cell does not serialise
the grid.

The driver is optionally **self-healing**: with ``cell_timeout`` /
``max_retries`` / ``strict=False`` set, cells are submitted individually,
failed attempts (in-cell exceptions, timeouts, worker crashes up to and
including a broken pool, which is rebuilt) are retried with exponential
backoff, and a grid degrades to partial results plus a structured
:class:`CellFailure` report instead of losing everything — see
:func:`run_cells`.  Because cells are pure functions of their specs, a
fault-recovered grid is bit-identical to a fault-free one.
"""

from __future__ import annotations

import heapq
import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..exceptions import ExperimentError
from ..faults import FaultPlan
from ..obs.bus import MetricsBus
from ..obs.kernels import activate_kernel_clock, deactivate_kernel_clock
from ..obs.relay import CapturedEvent, TelemetryRecorder, relay_outcome
from .results import RunResult
from .scenario import DynamicScenario, Scenario, run_dynamic_scenario, run_scenario
from .sweep import SweepConfiguration, SweepResult, run_sweep_cell

__all__ = [
    "GridCell",
    "CellOutcome",
    "CellFailure",
    "default_workers",
    "run_cells",
    "failed_cells",
    "parallel_sweep",
    "parallel_grid_sweep",
    "grid_sweep_with_outcomes",
    "parallel_scenario_grid",
    "parallel_dynamic_grid",
    "timing_summary",
]

_SWEEP = "sweep"
_SCENARIO = "scenario"
_DYNAMIC = "dynamic"
_KINDS = (_SWEEP, _SCENARIO, _DYNAMIC)


@dataclass(frozen=True)
class GridCell:
    """One schedulable unit of a grid: a picklable spec plus its grid position.

    ``index`` is the cell's position in the caller's grid (used to merge
    results back in grid order); for sweep cells ``seed`` is the per-run
    seed and the remaining fields forward the sweep options.
    """

    kind: str
    spec: Union[SweepConfiguration, Scenario, DynamicScenario]
    index: int
    seed: Optional[int] = None
    record_trace: bool = False
    max_rounds: int = 200_000
    legacy_seeding: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ExperimentError(
                f"unknown grid cell kind {self.kind!r}; valid kinds: {_KINDS}")


@dataclass(frozen=True)
class CellFailure:
    """Why one grid cell permanently failed (all retries exhausted).

    ``kind`` classifies the last failure: ``"error"`` (the cell raised),
    ``"timeout"`` (it exceeded the per-cell timeout), or ``"worker-crash"``
    (its pool worker died — the cell was in flight when the pool broke, so
    the crash is attributed to every in-flight cell, Spark-style).
    ``attempts`` counts every execution attempt including the first.
    """

    position: int
    index: int
    seed: Optional[int]
    label: str
    kind: str
    attempts: int
    error: str


@dataclass
class CellOutcome:
    """A finished cell: its result plus scheduling metadata.

    ``seconds`` is the in-worker wall-clock of the run itself (pickling and
    queueing excluded) and ``started`` the worker's monotonic clock at cell
    start; ``worker_pid`` identifies which pool process ran it.  When the
    cell ran with telemetry capture, ``events`` holds its complete in-worker
    event stream for the driver to relay.

    Under the fault-tolerant scheduler, ``attempts`` counts executions
    (1 = first try succeeded) and ``retry_seconds`` the driver-side
    wall-clock burnt by failed attempts — kept separate from ``seconds`` so
    utilization never double-counts a retried cell.  A permanently failed
    cell (non-strict mode only) has ``result=None``, ``worker_pid=-1`` and
    its :class:`CellFailure` attached.
    """

    cell: GridCell
    result: Optional[RunResult]
    seconds: float
    worker_pid: int
    started: Optional[float] = None
    events: Optional[List[CapturedEvent]] = field(default=None, repr=False)
    attempts: int = 1
    retry_seconds: float = 0.0
    failure: Optional[CellFailure] = None


def failed_cells(outcomes: Sequence[CellOutcome]) -> List[CellFailure]:
    """The structured failure report of a non-strict grid (empty = all ran)."""
    return [outcome.failure for outcome in outcomes
            if outcome.failure is not None]


def _execute_cell(cell: GridCell, capture: bool = False,
                  faults: Optional[FaultPlan] = None, position: int = 0,
                  attempt: int = 1) -> CellOutcome:
    """Run one cell (in a pool worker or inline) — the only execution path.

    With ``capture=True`` the cell runs against a private bus with a
    :class:`~repro.obs.relay.TelemetryRecorder` subscribed and a kernel-phase
    clock active, and the recorded stream is returned on the outcome.  The
    probes are read-only, so the trajectory is bit-identical either way.

    ``faults`` hooks in the test-only injection harness
    (:mod:`repro.faults`): the plan fires before the run starts, keyed on the
    cell's grid ``position`` and the 1-based ``attempt`` number.
    """
    if faults is not None:
        faults.apply(position, attempt)
    bus: Optional[MetricsBus] = None
    recorder: Optional[TelemetryRecorder] = None
    if capture:
        bus = MetricsBus()
        recorder = TelemetryRecorder()
        bus.subscribe(recorder)
        activate_kernel_clock()
    try:
        start = time.perf_counter()  # repro: allow[R002] cell timing envelope
        if cell.kind == _SWEEP:
            result = run_sweep_cell(cell.spec, cell.seed,
                                    record_trace=cell.record_trace,
                                    max_rounds=cell.max_rounds,
                                    legacy_seeding=cell.legacy_seeding,
                                    bus=bus)
        elif cell.kind == _SCENARIO:
            result = run_scenario(cell.spec, bus=bus)
        else:
            result = run_dynamic_scenario(cell.spec, bus=bus)
        # repro: allow[R002] cell timing envelope (CellOutcome.seconds)
        seconds = time.perf_counter() - start
    finally:
        if capture:
            deactivate_kernel_clock()
    return CellOutcome(cell=cell, result=result, seconds=seconds,
                       worker_pid=os.getpid(), started=start,
                       events=recorder.events if recorder is not None else None)


def _execute_chunk(cells: Sequence[GridCell], capture: bool) -> List[CellOutcome]:
    """Pool entry point: run one contiguous chunk of cells in this worker."""
    return [_execute_cell(cell, capture=capture) for cell in cells]


def _available_cores() -> int:
    """Cores this process may actually use (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_workers(num_cells: int) -> int:
    """The default pool size: one worker per usable core, never more than cells."""
    return max(1, min(num_cells, _available_cores()))


def _chunksize(num_cells: int, workers: int) -> int:
    # ~4 chunks per worker: coarse enough to amortise dispatch, fine enough
    # that the tail of the grid still load-balances across the pool.
    return max(1, num_cells // (workers * 4))


def _cell_label(cell: GridCell) -> str:
    if cell.kind == _SWEEP:
        return f"{cell.spec.label()} seed={cell.seed}"
    return getattr(cell.spec, "name", repr(cell.spec))


def _emit_cell_done(bus, outcome: CellOutcome, position: Optional[int] = None) -> None:
    """Publish one finished cell's envelope on the driver-side telemetry bus."""
    if bus is None or not bus.active:
        return
    result = outcome.result
    payload = dict(cell_kind=outcome.cell.kind, index=outcome.cell.index,
                   seed=outcome.cell.seed, label=_cell_label(outcome.cell),
                   seconds=outcome.seconds, worker_pid=outcome.worker_pid,
                   rounds=result.rounds, max_min=result.final_max_min)
    if position is not None:
        payload["position"] = position
    if outcome.started is not None:
        payload["started"] = outcome.started
    bus.emit("cell_done", "parallel", **payload)


def _deliver(bus, outcome: CellOutcome, position: int) -> None:
    """Relay one cell's captured stream, then its ``cell_done`` envelope.

    ``position`` is the cell's place in the grid's flat cell list — unique
    per cell, unlike ``GridCell.index`` which identifies the *merge group*
    (the configuration) and is shared by all its seeds — so trace viewers
    get one lane per cell.

    Permanently failed cells (``result=None``) deliver nothing here: their
    ``cell_failed`` envelope was emitted at failure time, and keeping them
    out of the relay is what makes the relayed stream invariant under
    retries and worker counts.
    """
    if outcome.result is None:
        return
    if outcome.events is not None:
        relay_outcome(bus, outcome.events, worker=outcome.worker_pid,
                      cell=position, cell_seed=outcome.cell.seed)
    _emit_cell_done(bus, outcome, position)


def run_cells(cells: Sequence[GridCell], workers: Optional[int] = None,
              chunksize: Optional[int] = None, bus=None,
              capture: Optional[bool] = None,
              progress=None,
              cell_timeout: Optional[float] = None,
              max_retries: int = 0,
              strict: bool = True,
              faults: Optional[FaultPlan] = None,
              retry_backoff: float = 0.05) -> List[CellOutcome]:
    """Execute a list of grid cells, sharded across a process pool.

    Returns one :class:`CellOutcome` per cell **in input order** regardless
    of completion order (the contract that makes merges deterministic).
    ``workers=None`` uses one worker per available core; ``workers=1`` runs
    serially in-process, which is also the fallback for single-cell grids.

    ``bus`` receives the run's telemetry on the driver side.  When the bus
    has a subscriber (or ``capture=True`` is forced), workers capture their
    in-cell event streams and the driver relays them — every round, kernel
    and recouple event, tagged with ``(worker, cell, cell_seed)`` — followed
    by one ``cell_done`` envelope per cell.  Relay order is cell input
    order at any worker count: out-of-order completions are buffered until
    their predecessors have been delivered.  ``capture=False`` restores the
    envelope-only behaviour.

    ``progress`` is an optional callback with an ``update(worker_pid=...,
    seconds=...)`` method (see :class:`repro.obs.progress.GridProgress`),
    invoked in *completion* order so the status line moves in real time.

    Fault tolerance (any of ``cell_timeout``/``max_retries``/``faults``
    set, or ``strict=False``) switches to the self-healing scheduler:

    * cells are submitted one at a time (never more in flight than
      workers, so the per-cell clock starts at execution start);
    * a failed attempt — an in-cell exception, a cell running past
      ``cell_timeout`` seconds, or a worker crash (``BrokenProcessPool``,
      after which the pool is rebuilt) — is retried up to ``max_retries``
      times with exponential backoff (base ``retry_backoff`` seconds) and
      deterministic jitter, emitting a ``cell_retry`` event per retry;
    * a cell whose retries are exhausted raises under ``strict=True``
      (today's behaviour) or, under ``strict=False``, yields a
      ``result=None`` outcome with a :class:`CellFailure` attached and a
      ``cell_failed`` event — the grid degrades to partial results (see
      :func:`failed_cells`) instead of losing everything.

    Because every retry re-executes the same pure per-cell function,
    fault-recovered grids are bit-identical to fault-free ones.  With
    ``workers=1`` there is no pool to police: retries work but
    ``cell_timeout`` is not enforced, and a kill fault would take the
    driver down (fault plans are test instruments — see
    :mod:`repro.faults`).
    """
    cells = list(cells)
    if not cells:
        return []
    if workers is not None and workers < 1:
        raise ExperimentError("workers must be at least 1")
    if max_retries < 0:
        raise ExperimentError("max_retries must be non-negative")
    if cell_timeout is not None and cell_timeout <= 0:
        raise ExperimentError("cell_timeout must be positive")
    if workers is None:
        workers = default_workers(len(cells))
    workers = min(workers, len(cells))
    if capture is None:
        capture = bus is not None and bus.active
    fault_tolerant = (cell_timeout is not None or max_retries > 0
                      or not strict
                      or (faults is not None and not faults.empty))
    if workers == 1:
        if fault_tolerant:
            return _run_cells_serial_tolerant(
                cells, bus, capture, progress, max_retries=max_retries,
                strict=strict, faults=faults, retry_backoff=retry_backoff)
        outcomes: List[CellOutcome] = []
        for position, cell in enumerate(cells):
            outcome = _execute_cell(cell, capture=capture)
            _deliver(bus, outcome, position)
            if progress is not None:
                progress.update(worker_pid=outcome.worker_pid,
                                seconds=outcome.seconds)
            outcomes.append(outcome)
        return outcomes
    if fault_tolerant:
        return _run_cells_fault_tolerant(
            cells, workers, bus, capture, progress,
            cell_timeout=cell_timeout, max_retries=max_retries,
            strict=strict, faults=faults, retry_backoff=retry_backoff)
    if chunksize is None:
        chunksize = _chunksize(len(cells), workers)
    chunks = [cells[offset:offset + chunksize]
              for offset in range(0, len(cells), chunksize)]
    slots: List[Optional[CellOutcome]] = [None] * len(cells)
    next_delivery = 0
    executor = ProcessPoolExecutor(max_workers=workers)
    try:
        pending = {executor.submit(_execute_chunk, chunk, capture): offset
                   for offset, chunk in zip(
                       range(0, len(cells), chunksize), chunks)}
        while pending:
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                offset = pending.pop(future)
                for position, outcome in enumerate(future.result()):
                    slots[offset + position] = outcome
                    if progress is not None:
                        progress.update(worker_pid=outcome.worker_pid,
                                        seconds=outcome.seconds)
                # deliver the completed prefix, keeping relay order == input
                # order regardless of which chunk finished first
                while next_delivery < len(slots) \
                        and slots[next_delivery] is not None:
                    _deliver(bus, slots[next_delivery], next_delivery)
                    next_delivery += 1
    except KeyboardInterrupt:
        _abandon_pool(executor)
        raise
    executor.shutdown(wait=True)
    return list(slots)


# ---------------------------------------------------------------------- #
# fault-tolerant scheduling
# ---------------------------------------------------------------------- #


def _abandon_pool(executor: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting: cancel queued work, kill workers.

    Used on KeyboardInterrupt (don't block the user's ^C behind running
    cells) and when a cell must be timed out — a running future cannot be
    cancelled, so the only enforcement mechanism a process pool offers is
    terminating the worker processes themselves.
    """
    for process in list(getattr(executor, "_processes", {}).values()):
        process.terminate()
    executor.shutdown(wait=False, cancel_futures=True)


def _backoff_delay(retry_backoff: float, position: int, attempt: int) -> float:
    """Exponential backoff with deterministic jitter for one retry.

    Jitter is keyed on ``(position, attempt)`` so reruns of the same faulty
    grid back off identically — scheduling stays reproducible even on the
    failure path.
    """
    if retry_backoff <= 0:
        return 0.0
    jitter = random.Random(position * 1000003 + attempt).random()
    return retry_backoff * (2.0 ** (attempt - 1)) * (1.0 + jitter)


class _RetryState:
    """Driver-side bookkeeping shared by the tolerant schedulers.

    Tracks wasted seconds per cell, emits ``cell_retry``/``cell_failed``
    telemetry, notifies the progress renderer, and decides retry vs
    permanent failure.
    """

    def __init__(self, cells: Sequence[GridCell], bus, progress,
                 max_retries: int, strict: bool, retry_backoff: float) -> None:
        self.cells = cells
        self.bus = bus
        self.progress = progress
        self.max_retries = max_retries
        self.strict = strict
        self.retry_backoff = retry_backoff
        self.wasted: Dict[int, float] = {}
        self.retries = 0

    def _emit(self, kind: str, position: int, attempt: int, failure_kind: str,
              message: str, **extra) -> None:
        if self.bus is None or not self.bus.active:
            return
        cell = self.cells[position]
        self.bus.emit(kind, "parallel", position=position, index=cell.index,
                      seed=cell.seed, label=_cell_label(cell),
                      attempts=attempt, failure_kind=failure_kind,
                      error=message, **extra)

    def note_failure(self, position: int, attempt: int, kind: str,
                     message: str, elapsed: float,
                     exc: Optional[BaseException] = None
                     ) -> Tuple[bool, Optional[CellOutcome]]:
        """Record one failed attempt.

        Returns ``(retry, outcome)``: ``retry=True`` means the cell should
        be resubmitted (after :meth:`delay`); otherwise the failure is
        permanent — under ``strict`` the original error is re-raised,
        otherwise ``outcome`` is the ``result=None`` envelope to slot in.
        """
        self.wasted[position] = self.wasted.get(position, 0.0) + elapsed
        if attempt <= self.max_retries:
            self.retries += 1
            self._emit("cell_retry", position, attempt, kind, message,
                       next_attempt=attempt + 1)
            if hasattr(self.progress, "note_retry"):
                self.progress.note_retry()
            return True, None
        cell = self.cells[position]
        failure = CellFailure(position=position, index=cell.index,
                              seed=cell.seed, label=_cell_label(cell),
                              kind=kind, attempts=attempt, error=message)
        if self.strict:
            if exc is not None:
                raise exc
            raise ExperimentError(
                f"grid cell {position} ({failure.label}) failed permanently "
                f"after {attempt} attempt(s): [{kind}] {message}")
        self._emit("cell_failed", position, attempt, kind, message)
        if hasattr(self.progress, "note_failure"):
            self.progress.note_failure()
        return False, CellOutcome(
            cell=cell, result=None, seconds=0.0, worker_pid=-1,
            attempts=attempt, retry_seconds=self.wasted.pop(position, 0.0),
            failure=failure)

    def finish(self, outcome: CellOutcome, attempt: int,
               position: int) -> CellOutcome:
        """Stamp retry accounting onto a successful outcome."""
        outcome.attempts = attempt
        outcome.retry_seconds = self.wasted.pop(position, 0.0)
        return outcome

    def delay(self, position: int, attempt: int) -> float:
        return _backoff_delay(self.retry_backoff, position, attempt)


def _run_cells_serial_tolerant(cells: Sequence[GridCell], bus, capture,
                               progress, max_retries: int, strict: bool,
                               faults: Optional[FaultPlan],
                               retry_backoff: float) -> List[CellOutcome]:
    """The in-process (workers=1) retry path; no timeout enforcement."""
    state = _RetryState(cells, bus, progress, max_retries, strict,
                        retry_backoff)
    outcomes: List[CellOutcome] = []
    for position, cell in enumerate(cells):
        attempt = 1
        while True:
            started = time.perf_counter()  # repro: allow[R002] cell timing envelope
            try:
                outcome = _execute_cell(cell, capture=capture, faults=faults,
                                        position=position, attempt=attempt)
            except Exception as exc:
                retry, failed = state.note_failure(
                    position, attempt, "error",
                    f"{type(exc).__name__}: {exc}",
                    # repro: allow[R002] failure timing envelope
                    elapsed=time.perf_counter() - started, exc=exc)
                if retry:
                    time.sleep(state.delay(position, attempt))
                    attempt += 1
                    continue
                outcome = failed
            else:
                state.finish(outcome, attempt, position)
                if progress is not None:
                    progress.update(worker_pid=outcome.worker_pid,
                                    seconds=outcome.seconds)
            break
        _deliver(bus, outcome, position)
        outcomes.append(outcome)
    return outcomes


def _run_cells_fault_tolerant(cells: Sequence[GridCell], workers: int, bus,
                              capture, progress, cell_timeout: Optional[float],
                              max_retries: int, strict: bool,
                              faults: Optional[FaultPlan],
                              retry_backoff: float) -> List[CellOutcome]:
    """The self-healing pool scheduler: per-cell submission, timeout, retry.

    Cells are submitted individually with in-flight count capped at the
    worker count, so a submitted cell starts executing (nearly) immediately
    and ``cell_timeout`` measures execution, not queueing.  Three failure
    modes are handled:

    * the future raises an ordinary exception → that attempt failed;
    * the pool breaks (a worker died) → every in-flight cell is charged an
      attempt (the pool cannot say which cell crashed it), the pool is
      rebuilt, survivors are resubmitted;
    * a cell exceeds ``cell_timeout`` → the pool is killed (running futures
      cannot be cancelled), the overdue cells are charged an attempt, and
      the collateral in-flight cells are resubmitted **without** being
      charged — they did not fail.

    Delivery (relay + ``cell_done``) stays in input order exactly as on the
    fast path.
    """
    state = _RetryState(cells, bus, progress, max_retries, strict,
                        retry_backoff)
    slots: List[Optional[CellOutcome]] = [None] * len(cells)
    next_delivery = 0
    # ready queue of (ready_at, position, attempt); ready_at in time.monotonic
    ready: List[Tuple[float, int, int]] = [
        (0.0, position, 1) for position in range(len(cells))]
    heapq.heapify(ready)
    inflight: Dict[object, Tuple[int, int, float]] = {}
    executor = ProcessPoolExecutor(max_workers=workers)

    def settle(position: int, attempt: int, kind: str, message: str,
               elapsed: float, exc: Optional[BaseException] = None) -> None:
        """One attempt failed: schedule the retry or slot the failure."""
        retry, failed = state.note_failure(position, attempt, kind, message,
                                           elapsed, exc=exc)
        if retry:
            # repro: allow[R002] retry-backoff deadline (driver scheduling)
            heapq.heappush(ready, (time.monotonic()
                                   + state.delay(position, attempt),
                                   position, attempt + 1))
        else:
            slots[position] = failed

    try:
        while ready or inflight:
            now = time.monotonic()  # repro: allow[R002] dispatch deadline clock
            while ready and len(inflight) < workers and ready[0][0] <= now:
                _, position, attempt = heapq.heappop(ready)
                future = executor.submit(_execute_cell, cells[position],
                                         capture, faults, position, attempt)
                # repro: allow[R002] cell-timeout deadline bookkeeping
                inflight[future] = (position, attempt, time.monotonic())
            if not inflight:
                # everything runnable is waiting out its backoff
                # repro: allow[R002] retry-backoff wait (driver scheduling)
                time.sleep(max(0.0, ready[0][0] - time.monotonic()))
                continue
            timeout = None
            if cell_timeout is not None:
                deadline = min(started + cell_timeout
                               for _, _, started in inflight.values())
                # repro: allow[R002] cell-timeout deadline (driver scheduling)
                timeout = max(0.0, deadline - time.monotonic())
            if ready and len(inflight) < workers:
                # repro: allow[R002] retry-backoff deadline (driver scheduling)
                until_ready = max(0.0, ready[0][0] - time.monotonic())
                timeout = until_ready if timeout is None \
                    else min(timeout, until_ready)
            done, _ = wait(set(inflight), timeout=timeout,
                           return_when=FIRST_COMPLETED)
            broken = False
            for future in done:
                position, attempt, started = inflight.pop(future)
                # repro: allow[R002] attempt timing envelope
                elapsed = time.monotonic() - started
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    broken = True
                    settle(position, attempt, "worker-crash",
                           "worker process died", elapsed)
                except Exception as exc:
                    settle(position, attempt, "error",
                           f"{type(exc).__name__}: {exc}", elapsed, exc=exc)
                else:
                    state.finish(outcome, attempt, position)
                    slots[position] = outcome
                    if progress is not None:
                        progress.update(worker_pid=outcome.worker_pid,
                                        seconds=outcome.seconds)
            if broken:
                # the pool is unusable; every other in-flight cell died too
                for position, attempt, started in inflight.values():
                    settle(position, attempt, "worker-crash",
                           "worker process died",
                           # repro: allow[R002] attempt timing envelope
                           time.monotonic() - started)
                inflight.clear()
                _abandon_pool(executor)
                executor = ProcessPoolExecutor(max_workers=workers)
            elif cell_timeout is not None and inflight:
                # repro: allow[R002] cell-timeout overdue scan
                now = time.monotonic()
                overdue = [(future, meta) for future, meta in inflight.items()
                           if now - meta[2] > cell_timeout]
                if overdue:
                    for future, (position, attempt, started) in overdue:
                        del inflight[future]
                        settle(position, attempt, "timeout",
                               f"cell exceeded cell_timeout={cell_timeout}s",
                               now - started)
                    # collateral damage: resubmit without charging an attempt
                    for position, attempt, _ in inflight.values():
                        heapq.heappush(ready, (0.0, position, attempt))
                    inflight.clear()
                    _abandon_pool(executor)
                    executor = ProcessPoolExecutor(max_workers=workers)
            while next_delivery < len(slots) \
                    and slots[next_delivery] is not None:
                _deliver(bus, slots[next_delivery], next_delivery)
                next_delivery += 1
    except BaseException:
        # strict failure or ^C: don't block behind still-running cells —
        # they are pure functions, killing them loses nothing
        _abandon_pool(executor)
        raise
    executor.shutdown(wait=True)
    return list(slots)


def timing_summary(outcomes: Sequence[CellOutcome],
                   wall_seconds: Optional[float] = None) -> Dict[str, object]:
    """Aggregate per-cell timings: totals, extremes and per-worker load.

    Pass the driver-side ``wall_seconds`` (time around the ``run_cells``
    call) to additionally report ``wall_seconds`` and ``utilization`` —
    busy seconds divided by ``wall * workers_used``, the fraction of the
    pool's capacity the grid actually kept busy.

    Retried and failed cells never inflate utilization: ``busy_seconds``
    (and the per-cell extremes) count only each cell's *successful* attempt,
    while wasted attempts are reported separately as ``retries`` /
    ``retry_seconds`` and permanent failures as ``failed_cells`` — keys that
    appear only when the grid actually retried or failed something.
    """
    if not outcomes:
        summary: Dict[str, object] = {"cells": 0, "busy_seconds": 0.0,
                                      "workers_used": 0}
        if wall_seconds is not None:
            summary["wall_seconds"] = round(wall_seconds, 4)
        return summary
    succeeded = [outcome for outcome in outcomes
                 if outcome.result is not None]
    failed = len(outcomes) - len(succeeded)
    seconds = [outcome.seconds for outcome in succeeded]
    by_worker: Dict[int, float] = {}
    for outcome in succeeded:
        by_worker[outcome.worker_pid] = by_worker.get(outcome.worker_pid, 0.0) \
            + outcome.seconds
    retries = sum(outcome.attempts - (1 if outcome.result is not None else 0)
                  for outcome in outcomes)
    retry_seconds = sum(outcome.retry_seconds for outcome in outcomes)
    summary = {
        "cells": len(outcomes),
        "busy_seconds": round(sum(seconds), 4),
        "workers_used": len(by_worker),
    }
    if seconds:
        summary["max_cell_seconds"] = round(max(seconds), 4)
        summary["min_cell_seconds"] = round(min(seconds), 4)
        summary["per_worker_busy_seconds"] = [
            round(value, 4) for value in sorted(by_worker.values())]
    if retries:
        summary["retries"] = retries
        summary["retry_seconds"] = round(retry_seconds, 4)
    if failed:
        summary["failed_cells"] = failed
    if wall_seconds is not None:
        summary["wall_seconds"] = round(wall_seconds, 4)
        capacity = wall_seconds * len(by_worker)
        summary["utilization"] = round(sum(seconds) / capacity, 4) \
            if capacity > 0 else 0.0
    return summary


# ---------------------------------------------------------------------- #
# sweep grids
# ---------------------------------------------------------------------- #


def sweep_cells(configurations: Sequence[SweepConfiguration],
                seeds: Sequence[int], record_trace: bool = False,
                max_rounds: int = 200_000,
                legacy_seeding: bool = False) -> List[GridCell]:
    """Flatten a configuration x seed grid into schedulable cells."""
    if not seeds:
        raise ExperimentError("at least one seed is required")
    return [
        GridCell(kind=_SWEEP, spec=configuration, index=index, seed=seed,
                 record_trace=record_trace, max_rounds=max_rounds,
                 legacy_seeding=legacy_seeding)
        for index, configuration in enumerate(configurations)
        for seed in seeds
    ]


def _merge_sweeps(configurations: Sequence[SweepConfiguration],
                  outcomes: Sequence[CellOutcome]) -> List[SweepResult]:
    """Group run results back into one SweepResult per configuration.

    ``run_cells`` returns outcomes in cell order (configuration-major, seed
    order within a configuration), so appending in sequence reproduces the
    exact run order of the serial path.
    """
    results = [SweepResult(configuration=configuration)
               for configuration in configurations]
    for outcome in outcomes:
        if outcome.result is not None:  # non-strict grids may drop cells
            results[outcome.cell.index].runs.append(outcome.result)
    return results


def parallel_sweep(configuration: SweepConfiguration, seeds: Sequence[int],
                   workers: Optional[int] = None, record_trace: bool = False,
                   max_rounds: int = 200_000,
                   legacy_seeding: bool = False, bus=None,
                   capture: Optional[bool] = None,
                   progress=None,
                   cell_timeout: Optional[float] = None,
                   max_retries: int = 0, strict: bool = True,
                   faults: Optional[FaultPlan] = None) -> SweepResult:
    """Sharded :func:`~repro.simulation.sweep.run_sweep`: one cell per seed.

    Bit-identical to ``run_sweep(configuration, seeds, ...)`` for every
    worker count — the pool executes the same :func:`run_sweep_cell` calls
    and the merge preserves seed order.
    """
    cells = sweep_cells([configuration], seeds, record_trace=record_trace,
                        max_rounds=max_rounds, legacy_seeding=legacy_seeding)
    outcomes = run_cells(cells, workers=workers, bus=bus, capture=capture,
                         progress=progress, cell_timeout=cell_timeout,
                         max_retries=max_retries, strict=strict, faults=faults)
    return _merge_sweeps([configuration], outcomes)[0]


def parallel_grid_sweep(configurations: Sequence[SweepConfiguration],
                        seeds: Sequence[int], workers: Optional[int] = None,
                        legacy_seeding: bool = False, bus=None,
                        capture: Optional[bool] = None,
                        progress=None,
                        cell_timeout: Optional[float] = None,
                        max_retries: int = 0, strict: bool = True,
                        faults: Optional[FaultPlan] = None) -> List[SweepResult]:
    """Shard a whole configuration grid at (cell, seed) granularity.

    All ``len(configurations) * len(seeds)`` runs share one work queue, so a
    single expensive cell cannot serialise the grid the way per-cell
    parallelism would.  Results come back as one
    :class:`~repro.simulation.sweep.SweepResult` per configuration, in
    configuration order, bit-identical to the serial nested loop.
    """
    configurations = list(configurations)
    cells = sweep_cells(configurations, seeds, legacy_seeding=legacy_seeding)
    outcomes = run_cells(cells, workers=workers, bus=bus, capture=capture,
                         progress=progress, cell_timeout=cell_timeout,
                         max_retries=max_retries, strict=strict, faults=faults)
    return _merge_sweeps(configurations, outcomes)


def grid_sweep_with_outcomes(configurations: Sequence[SweepConfiguration],
                             seeds: Sequence[int], workers: Optional[int] = None,
                             record_trace: bool = False,
                             legacy_seeding: bool = False, bus=None,
                             capture: Optional[bool] = None,
                             progress=None,
                             cell_timeout: Optional[float] = None,
                             max_retries: int = 0, strict: bool = True,
                             faults: Optional[FaultPlan] = None):
    """Like :func:`parallel_grid_sweep`, also returning the raw envelopes.

    Returns ``(sweep_results, outcomes)``: the merged per-configuration
    :class:`~repro.simulation.sweep.SweepResult` list plus the flat
    :class:`CellOutcome` list in cell order — what the run store needs to
    record each run together with its timing envelope
    (:func:`repro.store.record_sweep_outcomes`).
    """
    configurations = list(configurations)
    cells = sweep_cells(configurations, seeds, record_trace=record_trace,
                        legacy_seeding=legacy_seeding)
    outcomes = run_cells(cells, workers=workers, bus=bus, capture=capture,
                         progress=progress, cell_timeout=cell_timeout,
                         max_retries=max_retries, strict=strict, faults=faults)
    return _merge_sweeps(configurations, outcomes), outcomes


# ---------------------------------------------------------------------- #
# scenario grids
# ---------------------------------------------------------------------- #


def _scenario_grid(kind: str, scenarios, workers: Optional[int], bus=None,
                   capture: Optional[bool] = None,
                   progress=None,
                   cell_timeout: Optional[float] = None,
                   max_retries: int = 0, strict: bool = True,
                   faults: Optional[FaultPlan] = None) -> List[Optional[RunResult]]:
    cells = [GridCell(kind=kind, spec=scenario, index=index)
             for index, scenario in enumerate(scenarios)]
    return [outcome.result
            for outcome in run_cells(cells, workers=workers, bus=bus,
                                     capture=capture, progress=progress,
                                     cell_timeout=cell_timeout,
                                     max_retries=max_retries, strict=strict,
                                     faults=faults)]


def parallel_scenario_grid(scenarios: Sequence[Scenario],
                           workers: Optional[int] = None, bus=None,
                           capture: Optional[bool] = None,
                           progress=None,
                           cell_timeout: Optional[float] = None,
                           max_retries: int = 0, strict: bool = True,
                           faults: Optional[FaultPlan] = None) -> List[Optional[RunResult]]:
    """Run a list of static scenarios across a process pool (input order).

    Under ``strict=False`` a permanently failed scenario's slot holds
    ``None`` so the surviving results keep their input positions.
    """
    return _scenario_grid(_SCENARIO, scenarios, workers, bus=bus,
                          capture=capture, progress=progress,
                          cell_timeout=cell_timeout, max_retries=max_retries,
                          strict=strict, faults=faults)


def parallel_dynamic_grid(scenarios: Sequence[DynamicScenario],
                          workers: Optional[int] = None, bus=None,
                          capture: Optional[bool] = None,
                          progress=None,
                          cell_timeout: Optional[float] = None,
                          max_retries: int = 0, strict: bool = True,
                          faults: Optional[FaultPlan] = None) -> List[Optional[RunResult]]:
    """Run a list of dynamic scenarios across a process pool (input order).

    The per-scenario trajectories (``trace_max_min`` etc.) are bit-identical
    to serial :func:`~repro.simulation.scenario.run_dynamic_scenario` calls;
    with ``rng_mode="counter"`` this holds exactly for the randomized
    algorithms too, which is what makes many-seed recovery-time statistics
    cheap to scale out.  Under ``strict=False`` a permanently failed
    scenario's slot holds ``None`` (see :func:`run_cells`).
    """
    return _scenario_grid(_DYNAMIC, scenarios, workers, bus=bus,
                          capture=capture, progress=progress,
                          cell_timeout=cell_timeout, max_retries=max_retries,
                          strict=strict, faults=faults)
