"""Sharded process-pool driver for sweep and scenario grids.

Seed x configuration grids are embarrassingly parallel: every (cell, seed)
run is a pure function of a small, picklable spec — a
:class:`~repro.simulation.sweep.SweepConfiguration` plus a seed, a
:class:`~repro.simulation.scenario.Scenario`, or a
:class:`~repro.simulation.scenario.DynamicScenario`.  This module shards a
grid of such cells across a :class:`~concurrent.futures.ProcessPoolExecutor`
and merges the per-run :class:`~repro.simulation.results.RunResult`s back in
grid order, **bit-identically** to the serial path:

* every worker executes exactly the same per-cell function the serial loop
  uses (:func:`repro.simulation.sweep.run_sweep_cell`,
  :func:`~repro.simulation.scenario.run_scenario`,
  :func:`~repro.simulation.scenario.run_dynamic_scenario`);
* per-purpose seed derivation (:mod:`repro.simulation.seeding`) makes each
  run a pure function of its spec — nothing depends on which worker runs it
  or in what order;
* for randomized algorithms, ``rng_mode="counter"`` keys every draw on
  ``(seed, round, edge-or-node)`` so trajectories are exactly reproducible
  regardless of scheduling.

Results come back wrapped in :class:`CellOutcome` envelopes carrying
per-cell wall-clock timing and the worker pid, so drivers (and the
``parallel`` benchmark suite) can report scaling and load-balance without
touching the :class:`RunResult` payloads being merged.

Dispatch is chunked: cells are handed to workers ``chunksize`` at a time
(default: about four chunks per worker) to amortise pickling overhead while
keeping the queue fine-grained enough that one slow cell does not serialise
the grid.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..exceptions import ExperimentError
from .results import RunResult
from .scenario import DynamicScenario, Scenario, run_dynamic_scenario, run_scenario
from .sweep import SweepConfiguration, SweepResult, run_sweep_cell

__all__ = [
    "GridCell",
    "CellOutcome",
    "default_workers",
    "run_cells",
    "parallel_sweep",
    "parallel_grid_sweep",
    "grid_sweep_with_outcomes",
    "parallel_scenario_grid",
    "parallel_dynamic_grid",
    "timing_summary",
]

_SWEEP = "sweep"
_SCENARIO = "scenario"
_DYNAMIC = "dynamic"
_KINDS = (_SWEEP, _SCENARIO, _DYNAMIC)


@dataclass(frozen=True)
class GridCell:
    """One schedulable unit of a grid: a picklable spec plus its grid position.

    ``index`` is the cell's position in the caller's grid (used to merge
    results back in grid order); for sweep cells ``seed`` is the per-run
    seed and the remaining fields forward the sweep options.
    """

    kind: str
    spec: Union[SweepConfiguration, Scenario, DynamicScenario]
    index: int
    seed: Optional[int] = None
    record_trace: bool = False
    max_rounds: int = 200_000
    legacy_seeding: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ExperimentError(
                f"unknown grid cell kind {self.kind!r}; valid kinds: {_KINDS}")


@dataclass
class CellOutcome:
    """A finished cell: its result plus scheduling metadata.

    ``seconds`` is the in-worker wall-clock of the run itself (pickling and
    queueing excluded); ``worker_pid`` identifies which pool process ran it.
    """

    cell: GridCell
    result: RunResult
    seconds: float
    worker_pid: int


def _execute_cell(cell: GridCell) -> CellOutcome:
    """Run one cell (in a pool worker or inline) — the only execution path."""
    start = time.perf_counter()
    if cell.kind == _SWEEP:
        result = run_sweep_cell(cell.spec, cell.seed,
                                record_trace=cell.record_trace,
                                max_rounds=cell.max_rounds,
                                legacy_seeding=cell.legacy_seeding)
    elif cell.kind == _SCENARIO:
        result = run_scenario(cell.spec)
    else:
        result = run_dynamic_scenario(cell.spec)
    seconds = time.perf_counter() - start
    return CellOutcome(cell=cell, result=result, seconds=seconds,
                       worker_pid=os.getpid())


def _available_cores() -> int:
    """Cores this process may actually use (affinity/cgroup aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_workers(num_cells: int) -> int:
    """The default pool size: one worker per usable core, never more than cells."""
    return max(1, min(num_cells, _available_cores()))


def _chunksize(num_cells: int, workers: int) -> int:
    # ~4 chunks per worker: coarse enough to amortise dispatch, fine enough
    # that the tail of the grid still load-balances across the pool.
    return max(1, num_cells // (workers * 4))


def _cell_label(cell: GridCell) -> str:
    if cell.kind == _SWEEP:
        return f"{cell.spec.label()} seed={cell.seed}"
    return getattr(cell.spec, "name", repr(cell.spec))


def _emit_cell_done(bus, outcome: CellOutcome) -> None:
    """Publish one finished cell's envelope on the driver-side telemetry bus."""
    if bus is None or not bus.active:
        return
    result = outcome.result
    bus.emit("cell_done", "parallel", cell_kind=outcome.cell.kind,
             index=outcome.cell.index, seed=outcome.cell.seed,
             label=_cell_label(outcome.cell), seconds=outcome.seconds,
             worker_pid=outcome.worker_pid, rounds=result.rounds,
             max_min=result.final_max_min)


def run_cells(cells: Sequence[GridCell], workers: Optional[int] = None,
              chunksize: Optional[int] = None, bus=None) -> List[CellOutcome]:
    """Execute a list of grid cells, sharded across a process pool.

    Returns one :class:`CellOutcome` per cell **in input order** regardless
    of completion order (the contract that makes merges deterministic).
    ``workers=None`` uses one worker per available core; ``workers=1`` runs
    serially in-process, which is also the fallback for single-cell grids.

    ``bus`` emits one ``cell_done`` telemetry event per finished cell on the
    driver side (a :class:`~repro.obs.bus.MetricsBus` cannot cross the
    process boundary, so per-round events stay in-worker; the envelopes —
    timing, worker pid, headline metric — stream back in merge order).
    """
    cells = list(cells)
    if not cells:
        return []
    if workers is not None and workers < 1:
        raise ExperimentError("workers must be at least 1")
    if workers is None:
        workers = default_workers(len(cells))
    workers = min(workers, len(cells))
    outcomes: List[CellOutcome] = []
    if workers == 1:
        for cell in cells:
            outcome = _execute_cell(cell)
            _emit_cell_done(bus, outcome)
            outcomes.append(outcome)
        return outcomes
    if chunksize is None:
        chunksize = _chunksize(len(cells), workers)
    with ProcessPoolExecutor(max_workers=workers) as executor:
        for outcome in executor.map(_execute_cell, cells, chunksize=chunksize):
            _emit_cell_done(bus, outcome)
            outcomes.append(outcome)
    return outcomes


def timing_summary(outcomes: Sequence[CellOutcome]) -> Dict[str, object]:
    """Aggregate per-cell timings: totals, extremes and per-worker load."""
    if not outcomes:
        return {"cells": 0, "busy_seconds": 0.0, "workers_used": 0}
    seconds = [outcome.seconds for outcome in outcomes]
    by_worker: Dict[int, float] = {}
    for outcome in outcomes:
        by_worker[outcome.worker_pid] = by_worker.get(outcome.worker_pid, 0.0) \
            + outcome.seconds
    return {
        "cells": len(outcomes),
        "busy_seconds": round(sum(seconds), 4),
        "max_cell_seconds": round(max(seconds), 4),
        "min_cell_seconds": round(min(seconds), 4),
        "workers_used": len(by_worker),
        "per_worker_busy_seconds": [round(value, 4)
                                    for value in sorted(by_worker.values())],
    }


# ---------------------------------------------------------------------- #
# sweep grids
# ---------------------------------------------------------------------- #


def sweep_cells(configurations: Sequence[SweepConfiguration],
                seeds: Sequence[int], record_trace: bool = False,
                max_rounds: int = 200_000,
                legacy_seeding: bool = False) -> List[GridCell]:
    """Flatten a configuration x seed grid into schedulable cells."""
    if not seeds:
        raise ExperimentError("at least one seed is required")
    return [
        GridCell(kind=_SWEEP, spec=configuration, index=index, seed=seed,
                 record_trace=record_trace, max_rounds=max_rounds,
                 legacy_seeding=legacy_seeding)
        for index, configuration in enumerate(configurations)
        for seed in seeds
    ]


def _merge_sweeps(configurations: Sequence[SweepConfiguration],
                  outcomes: Sequence[CellOutcome]) -> List[SweepResult]:
    """Group run results back into one SweepResult per configuration.

    ``run_cells`` returns outcomes in cell order (configuration-major, seed
    order within a configuration), so appending in sequence reproduces the
    exact run order of the serial path.
    """
    results = [SweepResult(configuration=configuration)
               for configuration in configurations]
    for outcome in outcomes:
        results[outcome.cell.index].runs.append(outcome.result)
    return results


def parallel_sweep(configuration: SweepConfiguration, seeds: Sequence[int],
                   workers: Optional[int] = None, record_trace: bool = False,
                   max_rounds: int = 200_000,
                   legacy_seeding: bool = False, bus=None) -> SweepResult:
    """Sharded :func:`~repro.simulation.sweep.run_sweep`: one cell per seed.

    Bit-identical to ``run_sweep(configuration, seeds, ...)`` for every
    worker count — the pool executes the same :func:`run_sweep_cell` calls
    and the merge preserves seed order.
    """
    cells = sweep_cells([configuration], seeds, record_trace=record_trace,
                        max_rounds=max_rounds, legacy_seeding=legacy_seeding)
    outcomes = run_cells(cells, workers=workers, bus=bus)
    return _merge_sweeps([configuration], outcomes)[0]


def parallel_grid_sweep(configurations: Sequence[SweepConfiguration],
                        seeds: Sequence[int], workers: Optional[int] = None,
                        legacy_seeding: bool = False, bus=None) -> List[SweepResult]:
    """Shard a whole configuration grid at (cell, seed) granularity.

    All ``len(configurations) * len(seeds)`` runs share one work queue, so a
    single expensive cell cannot serialise the grid the way per-cell
    parallelism would.  Results come back as one
    :class:`~repro.simulation.sweep.SweepResult` per configuration, in
    configuration order, bit-identical to the serial nested loop.
    """
    configurations = list(configurations)
    cells = sweep_cells(configurations, seeds, legacy_seeding=legacy_seeding)
    outcomes = run_cells(cells, workers=workers, bus=bus)
    return _merge_sweeps(configurations, outcomes)


def grid_sweep_with_outcomes(configurations: Sequence[SweepConfiguration],
                             seeds: Sequence[int], workers: Optional[int] = None,
                             record_trace: bool = False,
                             legacy_seeding: bool = False, bus=None):
    """Like :func:`parallel_grid_sweep`, also returning the raw envelopes.

    Returns ``(sweep_results, outcomes)``: the merged per-configuration
    :class:`~repro.simulation.sweep.SweepResult` list plus the flat
    :class:`CellOutcome` list in cell order — what the run store needs to
    record each run together with its timing envelope
    (:func:`repro.store.record_sweep_outcomes`).
    """
    configurations = list(configurations)
    cells = sweep_cells(configurations, seeds, record_trace=record_trace,
                        legacy_seeding=legacy_seeding)
    outcomes = run_cells(cells, workers=workers, bus=bus)
    return _merge_sweeps(configurations, outcomes), outcomes


# ---------------------------------------------------------------------- #
# scenario grids
# ---------------------------------------------------------------------- #


def _scenario_grid(kind: str, scenarios, workers: Optional[int]) -> List[RunResult]:
    cells = [GridCell(kind=kind, spec=scenario, index=index)
             for index, scenario in enumerate(scenarios)]
    return [outcome.result for outcome in run_cells(cells, workers=workers)]


def parallel_scenario_grid(scenarios: Sequence[Scenario],
                           workers: Optional[int] = None) -> List[RunResult]:
    """Run a list of static scenarios across a process pool (input order)."""
    return _scenario_grid(_SCENARIO, scenarios, workers)


def parallel_dynamic_grid(scenarios: Sequence[DynamicScenario],
                          workers: Optional[int] = None) -> List[RunResult]:
    """Run a list of dynamic scenarios across a process pool (input order).

    The per-scenario trajectories (``trace_max_min`` etc.) are bit-identical
    to serial :func:`~repro.simulation.scenario.run_dynamic_scenario` calls;
    with ``rng_mode="counter"`` this holds exactly for the randomized
    algorithms too, which is what makes many-seed recovery-time statistics
    cheap to scale out.
    """
    return _scenario_grid(_DYNAMIC, scenarios, workers)
