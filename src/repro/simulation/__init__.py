"""Simulation engine, result records and the experiment harness."""

from .engine import (
    ALL_ALGORITHMS,
    BACKEND_KINDS,
    CONTINUOUS_KINDS,
    DIFFUSION_BASELINES,
    FLOW_IMITATION_ALGORITHMS,
    MATCHING_BASELINES,
    compare_algorithms,
    determine_balancing_time,
    make_balancer,
    make_continuous,
    make_schedule,
    run_algorithm,
)
from .locality import DisplacementSummary, summarize_displacements, task_displacements
from .parallel import (
    CellOutcome,
    GridCell,
    grid_sweep_with_outcomes,
    parallel_dynamic_grid,
    parallel_grid_sweep,
    parallel_scenario_grid,
    parallel_sweep,
    run_cells,
)
from .results import RunResult
from .scenario import (
    DynamicScenario,
    Scenario,
    expand_seeds,
    load_dynamic_scenario,
    load_scenario,
    run_dynamic_grid,
    run_dynamic_scenario,
    run_scenario,
    run_scenario_grid,
)
from .seeding import PurposeSeeds, purpose_seeds
from .sweep import SweepConfiguration, SweepResult, grid_sweep, run_sweep, run_sweep_cell
from .workloads import WORKLOADS
from . import experiments, reporting

__all__ = [
    "DisplacementSummary",
    "summarize_displacements",
    "task_displacements",
    "Scenario",
    "DynamicScenario",
    "load_scenario",
    "load_dynamic_scenario",
    "run_scenario",
    "run_scenario_grid",
    "run_dynamic_scenario",
    "run_dynamic_grid",
    "expand_seeds",
    "SweepConfiguration",
    "SweepResult",
    "grid_sweep",
    "run_sweep",
    "run_sweep_cell",
    "WORKLOADS",
    "PurposeSeeds",
    "purpose_seeds",
    "GridCell",
    "CellOutcome",
    "run_cells",
    "grid_sweep_with_outcomes",
    "parallel_sweep",
    "parallel_grid_sweep",
    "parallel_scenario_grid",
    "parallel_dynamic_grid",
    "reporting",
    "ALL_ALGORITHMS",
    "BACKEND_KINDS",
    "CONTINUOUS_KINDS",
    "DIFFUSION_BASELINES",
    "FLOW_IMITATION_ALGORITHMS",
    "MATCHING_BASELINES",
    "compare_algorithms",
    "determine_balancing_time",
    "make_continuous",
    "make_schedule",
    "make_balancer",
    "run_algorithm",
    "RunResult",
    "experiments",
]
