"""Simulation engine, result records and the experiment harness."""

from .engine import (
    ALL_ALGORITHMS,
    BACKEND_KINDS,
    CONTINUOUS_KINDS,
    DIFFUSION_BASELINES,
    FLOW_IMITATION_ALGORITHMS,
    MATCHING_BASELINES,
    compare_algorithms,
    determine_balancing_time,
    make_balancer,
    make_continuous,
    make_schedule,
    run_algorithm,
)
from .locality import DisplacementSummary, summarize_displacements, task_displacements
from .results import RunResult
from .scenario import (
    DynamicScenario,
    Scenario,
    load_dynamic_scenario,
    load_scenario,
    run_dynamic_scenario,
    run_scenario,
)
from .sweep import SweepConfiguration, SweepResult, grid_sweep, run_sweep
from . import experiments, reporting

__all__ = [
    "DisplacementSummary",
    "summarize_displacements",
    "task_displacements",
    "Scenario",
    "DynamicScenario",
    "load_scenario",
    "load_dynamic_scenario",
    "run_scenario",
    "run_dynamic_scenario",
    "SweepConfiguration",
    "SweepResult",
    "grid_sweep",
    "run_sweep",
    "reporting",
    "ALL_ALGORITHMS",
    "BACKEND_KINDS",
    "CONTINUOUS_KINDS",
    "DIFFUSION_BASELINES",
    "FLOW_IMITATION_ALGORITHMS",
    "MATCHING_BASELINES",
    "compare_algorithms",
    "determine_balancing_time",
    "make_continuous",
    "make_schedule",
    "make_balancer",
    "run_algorithm",
    "RunResult",
    "experiments",
]
