"""Declarative experiment scenarios.

A :class:`Scenario` is a complete, serialisable description of one balancing
experiment: the topology (and optional speed profile), the workload, the
continuous substrate, the algorithm and the horizon.  Scenarios can be
round-tripped through plain dictionaries (and therefore JSON files), which
makes experiments shareable and lets the CLI run a whole experiment from a
single config file:

    repro-loadbalance scenario --file my_experiment.json

The scenario runner reuses the engine registry, so every algorithm and
substrate available to :func:`repro.simulation.engine.run_algorithm` can be
driven this way.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..exceptions import ExperimentError
from ..network import topologies
from ..network.graph import Network
from ..tasks import generators
from .engine import (ALL_ALGORITHMS, BACKEND_KINDS, CONTINUOUS_KINDS,
                     RNG_MODES, make_schedule, run_algorithm)
from .results import RunResult
from .seeding import PurposeSeeds, purpose_seeds
from .workloads import WORKLOADS

__all__ = [
    "Scenario",
    "DynamicScenario",
    "load_scenario",
    "load_dynamic_scenario",
    "run_scenario",
    "run_scenario_grid",
    "run_dynamic_scenario",
    "run_dynamic_grid",
    "expand_seeds",
]

#: Speed profiles selectable by name.
_SPEED_PROFILES = {
    "uniform": lambda network, seed: generators.uniform_speeds(network),
    "random": lambda network, seed: generators.random_integer_speeds(network, max_speed=4,
                                                                     seed=seed),
    "power-of-two": lambda network, seed: generators.power_of_two_speeds(network,
                                                                         max_exponent=3,
                                                                         seed=seed),
    "degree": lambda network, seed: generators.proportional_to_degree_speeds(network),
}

#: Workload generators selectable by name — the shared registry, so scenarios
#: and sweeps accept exactly the same workload names.
_WORKLOADS = WORKLOADS

#: Valid values of the ``seeding`` field: ``"legacy"`` reuses the scenario
#: seed for every randomized component (the historical replay contract);
#: ``"per-purpose"`` spawns independent child seeds per component (see
#: :mod:`repro.simulation.seeding`).
SEEDING_MODES = ("legacy", "per-purpose")


# ---------------------------------------------------------------------- #
# helpers shared by Scenario and DynamicScenario
# ---------------------------------------------------------------------- #


def _validate_common(scenario) -> None:
    """Checks shared by both scenario kinds (duck-typed on the field names)."""
    if scenario.algorithm not in ALL_ALGORITHMS:
        raise ExperimentError(
            f"unknown algorithm {scenario.algorithm!r}; valid: {ALL_ALGORITHMS}")
    if scenario.continuous_kind not in CONTINUOUS_KINDS:
        raise ExperimentError(
            f"unknown continuous kind {scenario.continuous_kind!r}; "
            f"valid: {CONTINUOUS_KINDS}")
    if scenario.workload not in _WORKLOADS:
        raise ExperimentError(
            f"unknown workload {scenario.workload!r}; valid: {sorted(_WORKLOADS)}")
    if scenario.speed_profile not in _SPEED_PROFILES:
        raise ExperimentError(
            f"unknown speed profile {scenario.speed_profile!r}; "
            f"valid: {sorted(_SPEED_PROFILES)}")
    if scenario.backend not in BACKEND_KINDS:
        raise ExperimentError(
            f"unknown backend {scenario.backend!r}; valid: {BACKEND_KINDS}")
    if scenario.rng_mode not in RNG_MODES:
        raise ExperimentError(
            f"unknown rng mode {scenario.rng_mode!r}; valid: {RNG_MODES}")
    if scenario.seeding not in SEEDING_MODES:
        raise ExperimentError(
            f"unknown seeding mode {scenario.seeding!r}; valid: {SEEDING_MODES}")
    if scenario.max_task_weight < 1:
        raise ExperimentError("max_task_weight must be at least 1")
    if scenario.num_nodes < 2:
        raise ExperimentError("a scenario needs at least two nodes")
    if scenario.tokens_per_node < 0:
        raise ExperimentError("workload densities must be non-negative")


def _from_dict(cls, data: Dict[str, object]):
    """Build a scenario dataclass from a dictionary, rejecting unknown keys."""
    allowed = set(cls.__dataclass_fields__)
    unknown = set(data) - allowed
    if unknown:
        raise ExperimentError(f"unknown scenario fields: {sorted(unknown)}")
    if "name" not in data or "algorithm" not in data:
        raise ExperimentError("a scenario requires at least 'name' and 'algorithm'")
    return cls(**data)


def _scenario_dict(scenario) -> Dict[str, object]:
    """``asdict`` minus later-added fields at their defaults.

    Dropping ``seeding="legacy"`` keeps the serialised form — and therefore
    the run store's canonical config hashes — identical to what pre-``seeding``
    versions produced for the same experiment.
    """
    data = asdict(scenario)
    if data.get("seeding") == "legacy":
        del data["seeding"]
    return data


def _write_json(payload: Dict[str, object], path: Union[str, pathlib.Path]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _read_json(path: Union[str, pathlib.Path]) -> Dict[str, object]:
    path = pathlib.Path(path)
    if not path.exists():
        raise ExperimentError(f"no such scenario file: {path}")
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"scenario file {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ExperimentError("a scenario file must contain a JSON object")
    return data


def _build_network(topology: str, num_nodes: int, speed_profile: str,
                   seed: int) -> Network:
    network = topologies.named_topology(topology, num_nodes, seed=seed)
    speeds = _SPEED_PROFILES[speed_profile](network, seed)
    return network.with_speeds(speeds)


def _build_weighted_load(task_counts, max_task_weight: int, seed: int):
    """Columnar weighted workload: the vector counts tasks, weights are drawn."""
    from ..tasks.weighted import weighted_loads_from_task_counts

    return weighted_loads_from_task_counts(task_counts, max_task_weight, seed=seed)


@dataclass
class Scenario:
    """A complete, serialisable description of one balancing experiment.

    Attributes
    ----------
    name:
        Free-form identifier used in reports.
    algorithm:
        One of :data:`repro.simulation.engine.ALL_ALGORITHMS`.
    topology:
        Named topology family (see :func:`repro.network.topologies.named_topology`).
    num_nodes:
        Approximate network size.
    tokens_per_node:
        Workload density (total tokens = ``tokens_per_node * n`` for most workloads).
    workload:
        One of ``point``, ``two-point``, ``uniform``, ``half-nodes``,
        ``gradient``, ``balanced``.
    speed_profile:
        One of ``uniform``, ``random``, ``power-of-two``, ``degree``.
    continuous_kind:
        Continuous substrate ("fos", "sos", "periodic-matching", "random-matching").
    base_load:
        Extra balanced load (tokens per speed unit) added on top of the
        workload — the Theorem 3(2)/8(2) padding.
    rounds:
        Horizon; ``None`` means "until the continuous substrate balances".
    seed:
        Master seed for topology sampling, workload placement and algorithm
        randomness.
    record_trace:
        Whether to record the per-round discrepancy trace.
    backend:
        Load-state backend ("auto", "object", "array"); see
        :mod:`repro.backend`.
    max_task_weight:
        When greater than 1 the workload vector counts *tasks* per node and
        every task draws an integer weight uniformly from
        ``[1, max_task_weight]`` (algorithm1 only) — the weighted-task
        setting of the paper's Theorem 3.
    rng_mode:
        How the randomized processes (algorithm2, randomized-rounding,
        excess-tokens) draw their randomness: "sequential" or the order-free,
        vectorisable edge/node-keyed "counter" mode.
    seeding:
        How ``seed`` is distributed over the randomized components:
        ``"legacy"`` (default) reuses the one integer everywhere — the
        historical replay contract — while ``"per-purpose"`` spawns
        independent child seeds for the topology sample, workload placement,
        matching schedule and algorithm randomness
        (:mod:`repro.simulation.seeding`).
    """

    name: str
    algorithm: str
    topology: str = "torus"
    num_nodes: int = 64
    tokens_per_node: int = 32
    workload: str = "point"
    speed_profile: str = "uniform"
    continuous_kind: str = "fos"
    base_load: int = 0
    rounds: Optional[int] = None
    seed: int = 0
    record_trace: bool = False
    backend: str = "auto"
    max_task_weight: int = 1
    rng_mode: str = "sequential"
    seeding: str = "legacy"

    def __post_init__(self) -> None:
        _validate_common(self)
        if self.base_load < 0:
            raise ExperimentError("workload densities must be non-negative")
        if self.rounds is not None and self.rounds < 0:
            raise ExperimentError("rounds must be non-negative")

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        """Return a plain-dictionary representation (JSON friendly).

        ``seeding`` is omitted at its ``"legacy"`` default, so configuration
        dictionaries (and the run store's config hashes) of pre-existing
        scenarios are unchanged by the field's introduction.
        """
        return _scenario_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        """Build a scenario from a dictionary, rejecting unknown keys."""
        return _from_dict(cls, data)

    def to_json(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the scenario to a JSON file and return the path."""
        return _write_json(self.to_dict(), path)

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #

    def _purpose_seeds(self) -> PurposeSeeds:
        """Per-component seeds under this scenario's ``seeding`` mode."""
        return purpose_seeds(self.seed, legacy=self.seeding == "legacy")

    def build_network(self) -> Network:
        """Instantiate the network (topology + speed profile) of this scenario."""
        return _build_network(self.topology, self.num_nodes, self.speed_profile,
                              self._purpose_seeds().topology)

    def build_load(self, network: Network) -> np.ndarray:
        """Instantiate the integer workload vector of this scenario."""
        load = _WORKLOADS[self.workload](network, self.tokens_per_node,
                                         self._purpose_seeds().workload)
        if self.base_load:
            load = load + generators.balanced_load(network, self.base_load)
        return load

    def build_weighted_load(self, network: Network):
        """Instantiate the columnar weighted workload (``max_task_weight > 1``)."""
        return _build_weighted_load(self.build_load(network), self.max_task_weight,
                                    self._purpose_seeds().workload)


def load_scenario(path: Union[str, pathlib.Path]) -> Scenario:
    """Load a scenario from a JSON file."""
    return Scenario.from_dict(_read_json(path))


def run_scenario(scenario: Scenario, bus=None) -> RunResult:
    """Materialise and execute a scenario, returning the run result.

    ``bus`` forwards a :class:`~repro.obs.bus.MetricsBus` to the engine for
    per-round telemetry (see :mod:`repro.obs`).  Under
    ``seeding="per-purpose"`` the matching schedule and the algorithm's
    randomness draw from independent child seeds; the default ``"legacy"``
    mode reproduces historical trajectories exactly.
    """
    seeds = scenario._purpose_seeds()
    network = scenario.build_network()
    if scenario.max_task_weight > 1:
        workload = {"weighted_load": scenario.build_weighted_load(network)}
    else:
        workload = {"initial_load": scenario.build_load(network)}
    if scenario.seeding != "legacy":
        workload["schedule"] = make_schedule(scenario.continuous_kind, network,
                                             seed=seeds.schedule)
    return run_algorithm(
        scenario.algorithm,
        network,
        continuous_kind=scenario.continuous_kind,
        rounds=scenario.rounds,
        seed=seeds.algorithm,
        record_trace=scenario.record_trace,
        backend=scenario.backend,
        rng_mode=scenario.rng_mode,
        bus=bus,
        **workload,
    )


# ---------------------------------------------------------------------- #
# dynamic scenarios
# ---------------------------------------------------------------------- #


@dataclass
class DynamicScenario:
    """A serialisable description of one dynamic (streaming) experiment.

    The static fields mirror :class:`Scenario`; ``events`` names one of the
    event profiles of :data:`repro.dynamic.events.EVENT_PROFILES` and
    ``rounds`` is the fixed horizon of the stream (a dynamic run never
    "balances and stops" — it is observed for a fixed window).  With
    ``max_task_weight > 1`` the stream starts from a weighted workload
    (``tokens_per_node`` then counts *tasks*; algorithm1 only) while events
    keep streaming unit tokens.

    ``seeding`` mirrors :class:`Scenario`: ``"per-purpose"`` additionally
    gives the event generator its own independent child seed (the
    ``"events"`` purpose), so the arrival pattern decorrelates from the
    topology/workload/algorithm randomness.
    """

    name: str
    algorithm: str
    topology: str = "torus"
    num_nodes: int = 64
    tokens_per_node: int = 8
    workload: str = "uniform"
    speed_profile: str = "uniform"
    continuous_kind: str = "fos"
    events: str = "burst"
    rounds: int = 240
    seed: int = 0
    backend: str = "auto"
    max_task_weight: int = 1
    rng_mode: str = "sequential"
    seeding: str = "legacy"

    def __post_init__(self) -> None:
        from ..dynamic.events import EVENT_PROFILES

        _validate_common(self)
        if self.events not in EVENT_PROFILES:
            raise ExperimentError(
                f"unknown event profile {self.events!r}; valid: {sorted(EVENT_PROFILES)}")
        if self.rounds < 0:
            raise ExperimentError("rounds must be non-negative")

    def to_dict(self) -> Dict[str, object]:
        """Return a plain-dictionary representation (JSON friendly).

        As for :class:`Scenario`, ``seeding`` is omitted at its ``"legacy"``
        default to keep config hashes stable.
        """
        return _scenario_dict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DynamicScenario":
        """Build a dynamic scenario from a dictionary, rejecting unknown keys."""
        return _from_dict(cls, data)

    def to_json(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the scenario to a JSON file and return the path."""
        return _write_json(self.to_dict(), path)

    def _purpose_seeds(self) -> PurposeSeeds:
        """Per-component seeds under this scenario's ``seeding`` mode."""
        return purpose_seeds(self.seed, legacy=self.seeding == "legacy")

    def build_network(self) -> Network:
        """Instantiate the initial network (topology + speed profile)."""
        return _build_network(self.topology, self.num_nodes, self.speed_profile,
                              self._purpose_seeds().topology)

    def build_load(self, network: Network) -> np.ndarray:
        """Instantiate the initial integer workload vector."""
        return _WORKLOADS[self.workload](network, self.tokens_per_node,
                                         self._purpose_seeds().workload)

    def build_weighted_load(self, network: Network):
        """Instantiate the columnar weighted workload (``max_task_weight > 1``)."""
        return _build_weighted_load(self.build_load(network), self.max_task_weight,
                                    self._purpose_seeds().workload)


def load_dynamic_scenario(path: Union[str, pathlib.Path]) -> DynamicScenario:
    """Load a dynamic scenario from a JSON file."""
    return DynamicScenario.from_dict(_read_json(path))


def run_dynamic_scenario(scenario: DynamicScenario, bus=None,
                         checkpoint_every: Optional[int] = None,
                         checkpoint_path=None) -> RunResult:
    """Materialise and execute a dynamic scenario, returning the run result.

    ``bus`` forwards a :class:`~repro.obs.bus.MetricsBus` to the streaming
    engine for per-round telemetry (see :mod:`repro.obs`).  With
    ``checkpoint_every``/``checkpoint_path`` the stream snapshots itself
    periodically; the checkpoint embeds the scenario so ``repro resume`` (or
    :func:`repro.checkpoint.resume_stream`) can rebuild the event generator
    without further input.
    """
    from ..dynamic.events import make_event_generator
    from ..dynamic.stream import run_stream

    seeds = scenario._purpose_seeds()
    network = scenario.build_network()
    if scenario.max_task_weight > 1:
        load = scenario.build_weighted_load(network)
    else:
        load = scenario.build_load(network)
    generator = make_event_generator(scenario.events, network,
                                     scenario.tokens_per_node, seed=seeds.events)
    return run_stream(
        scenario.algorithm,
        network,
        load,
        generator,
        rounds=scenario.rounds,
        continuous_kind=scenario.continuous_kind,
        seed=seeds.algorithm,
        backend=scenario.backend,
        rng_mode=scenario.rng_mode,
        bus=bus,
        checkpoint_every=checkpoint_every,
        checkpoint_path=checkpoint_path,
        checkpoint_meta=({"scenario": scenario.to_dict()}
                         if checkpoint_every is not None else None),
    )


# ---------------------------------------------------------------------- #
# scenario grids (sharded across workers)
# ---------------------------------------------------------------------- #


def expand_seeds(scenario, seeds: Sequence[int]) -> List:
    """Replicate a scenario once per seed (names suffixed ``-s{seed}``).

    Works for both :class:`Scenario` and :class:`DynamicScenario`; the
    replicas are the natural grid for many-seed statistics (e.g. recovery
    times per spectral-gap point) and feed directly into
    :func:`run_scenario_grid` / :func:`run_dynamic_grid`.
    """
    if not seeds:
        raise ExperimentError("at least one seed is required")
    return [replace(scenario, name=f"{scenario.name}-s{seed}", seed=int(seed))
            for seed in seeds]


def run_scenario_grid(scenarios: Sequence[Scenario],
                      workers: Optional[int] = None, bus=None,
                      capture: Optional[bool] = None,
                      progress=None,
                      cell_timeout: Optional[float] = None,
                      max_retries: int = 0, strict: bool = True,
                      faults=None) -> List[Optional[RunResult]]:
    """Run several static scenarios, sharded across ``workers`` processes.

    ``workers=None`` uses one worker per available core; results come back
    in input order, bit-identical to serial :func:`run_scenario` calls.
    Each scenario's ``seeding`` mode travels with it into the workers.
    ``bus``/``capture``/``progress`` and the fault-tolerance knobs
    (``cell_timeout``/``max_retries``/``strict``/``faults``) behave as in
    :func:`repro.simulation.parallel.run_cells` (worker telemetry is
    captured and relayed whenever the bus has a subscriber; under
    ``strict=False`` a failed scenario's slot holds ``None``).
    """
    from .parallel import parallel_scenario_grid

    return parallel_scenario_grid(scenarios, workers=workers, bus=bus,
                                  capture=capture, progress=progress,
                                  cell_timeout=cell_timeout,
                                  max_retries=max_retries, strict=strict,
                                  faults=faults)


def run_dynamic_grid(scenarios: Sequence[DynamicScenario],
                     workers: Optional[int] = None, bus=None,
                     capture: Optional[bool] = None,
                     progress=None,
                     cell_timeout: Optional[float] = None,
                     max_retries: int = 0, strict: bool = True,
                     faults=None) -> List[Optional[RunResult]]:
    """Run several dynamic scenarios, sharded across ``workers`` processes.

    ``workers=None`` uses one worker per available core; trajectories come
    back in input order, bit-identical to serial
    :func:`run_dynamic_scenario` calls (exactly so for randomized algorithms
    under ``rng_mode="counter"``).  Each scenario's ``seeding`` mode travels
    with it into the workers; ``bus``/``capture``/``progress`` and the
    fault-tolerance knobs behave as in
    :func:`repro.simulation.parallel.run_cells`.
    """
    from .parallel import parallel_dynamic_grid

    return parallel_dynamic_grid(scenarios, workers=workers, bus=bus,
                                 capture=capture, progress=progress,
                                 cell_timeout=cell_timeout,
                                 max_retries=max_retries, strict=strict,
                                 faults=faults)
