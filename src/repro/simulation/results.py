"""Result records produced by the simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """The outcome of running one discrete balancing algorithm on one instance.

    Attributes
    ----------
    algorithm:
        Registry name of the algorithm (see :mod:`repro.simulation.engine`).
    continuous_kind:
        Which continuous substrate drove the run ("fos", "sos",
        "periodic-matching" or "random-matching").
    network_name / num_nodes / max_degree:
        The instance the algorithm ran on.
    rounds:
        Number of synchronous rounds executed (the continuous balancing time
        ``T`` in comparison runs).
    total_weight:
        Total weight of the original workload (excluding dummy tokens).
    max_task_weight:
        ``w_max`` of the workload.
    final_max_min / final_max_avg:
        Discrepancies of the final load vector.  For flow-imitation runs the
        loads *include* dummy tokens (the conservative view); the
        ``*_no_dummies`` fields report the same metrics after eliminating the
        dummy tokens, with the max-avg referenced to the original workload.
    dummy_tokens:
        Number of dummy tokens drawn from the infinite source (flow imitation
        only; 0 for baselines).
    used_infinite_source / went_negative:
        Failure-mode indicators: whether the infinite source was needed (flow
        imitation) or whether any node's load went negative (baselines that
        allow it).
    trace_max_min:
        Optional per-round trace of the max-min discrepancy (index 0 is the
        initial state).
    trace_total_weight:
        Optional per-round trace of the total *real* (non-dummy) load.  Only
        populated by dynamic runs, where arrivals and departures change the
        total over time; index 0 is the initial state.
    event_timeline:
        Optional chronological record of the workload/topology events of a
        dynamic run (:mod:`repro.dynamic`).  Each entry is the JSON-friendly
        dictionary of one applied (or rejected) event, with at least
        ``round``, ``kind``, ``node``, ``tokens`` and ``applied`` keys.
    extra:
        Free-form additional measurements (e.g. the spectral gap), plus the
        observability keys every engine run records: ``"backend"`` (the
        load-state backend ``auto`` actually resolved to) and
        ``"backend_reason"`` (why — in particular why it fell back to the
        object path, so silent fallbacks show up in benchmarks and CI).
    """

    algorithm: str
    continuous_kind: str
    network_name: str
    num_nodes: int
    max_degree: int
    rounds: int
    total_weight: float
    max_task_weight: float
    final_max_min: float
    final_max_avg: float
    final_max_min_no_dummies: Optional[float] = None
    final_max_avg_no_dummies: Optional[float] = None
    dummy_tokens: int = 0
    used_infinite_source: bool = False
    went_negative: bool = False
    trace_max_min: Optional[List[float]] = None
    trace_total_weight: Optional[List[float]] = None
    event_timeline: Optional[List[Dict[str, object]]] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Return a flat dictionary view (suitable for CSV rows / dataframes).

        ``extra`` entries are merged in after the base columns; an ``extra``
        key that collides with a base column is added as ``extra_<key>``
        instead of silently overwriting the column it shadows.
        """
        row: Dict[str, object] = {
            "algorithm": self.algorithm,
            "continuous_kind": self.continuous_kind,
            "network": self.network_name,
            "n": self.num_nodes,
            "max_degree": self.max_degree,
            "rounds": self.rounds,
            "total_weight": self.total_weight,
            "w_max": self.max_task_weight,
            "max_min": self.final_max_min,
            "max_avg": self.final_max_avg,
            "max_min_no_dummies": self.final_max_min_no_dummies,
            "max_avg_no_dummies": self.final_max_avg_no_dummies,
            "dummy_tokens": self.dummy_tokens,
            "used_infinite_source": self.used_infinite_source,
            "went_negative": self.went_negative,
        }
        if self.event_timeline is not None:
            row["events"] = len(self.event_timeline)
        for key, value in self.extra.items():
            row[f"extra_{key}" if key in row else key] = value
        return row
