"""Simulation engine: build, couple and run balancing algorithms by name.

The engine provides a uniform, registry-style API used by the examples, the
experiment harness and the benchmarks:

* :func:`make_continuous` builds a continuous substrate ("fos", "sos",
  "periodic-matching", "random-matching");
* :func:`run_algorithm` runs one discrete algorithm (the paper's Algorithm 1
  or 2, or one of the literature baselines) on one workload and returns a
  :class:`~repro.simulation.results.RunResult`;
* :func:`compare_algorithms` measures the continuous balancing time ``T``
  once and runs every requested algorithm for exactly ``T`` rounds — the
  comparison the paper's Tables 1 and 2 are about.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..backend import BACKEND_KINDS, BackendChoice, get_backend, resolve_backend
from ..continuous.base import BALANCE_TOLERANCE, ContinuousProcess
from ..continuous.dimension_exchange import DimensionExchange
from ..continuous.fos import FirstOrderDiffusion
from ..continuous.sos import SecondOrderDiffusion
from ..core.flow_imitation import FlowCoupledBalancer, TaskSelectionPolicy
from ..discrete.base import DiscreteBalancer
from ..discrete.baselines.matching import RandomizedRoundingMatching, RoundDownMatching
from ..exceptions import ConvergenceError, ExperimentError
from ..network.graph import Network
from ..network.matchings import (
    MatchingSchedule,
    PeriodicMatchingSchedule,
    RandomMatchingSchedule,
)
from ..counter_rng import RNG_MODES, validate_rng_mode
from ..obs.bus import MetricsBus
from ..obs.probe import RoundProbe
from ..tasks.assignment import TaskAssignment
from ..tasks.load import as_token_counts, max_avg_discrepancy, max_min_discrepancy
from ..tasks.weighted import WeightedLoads
from .results import RunResult

__all__ = [
    "CONTINUOUS_KINDS",
    "FLOW_IMITATION_ALGORITHMS",
    "DIFFUSION_BASELINES",
    "MATCHING_BASELINES",
    "ALL_ALGORITHMS",
    "BACKEND_KINDS",
    "RNG_MODES",
    "make_schedule",
    "make_continuous",
    "make_balancer",
    "determine_balancing_time",
    "run_algorithm",
    "compare_algorithms",
]

CONTINUOUS_KINDS = ("fos", "sos", "periodic-matching", "random-matching")
FLOW_IMITATION_ALGORITHMS = ("algorithm1", "algorithm2")
DIFFUSION_BASELINES = ("round-down", "quasirandom", "randomized-rounding", "excess-tokens")
MATCHING_BASELINES = ("matching-round-down", "matching-randomized")
ALL_ALGORITHMS = FLOW_IMITATION_ALGORITHMS + DIFFUSION_BASELINES + MATCHING_BASELINES

_MATCHING_KINDS = ("periodic-matching", "random-matching")


def make_schedule(continuous_kind: str, network: Network,
                  seed: Optional[int] = None) -> Optional[MatchingSchedule]:
    """Build the matching schedule required by a matching-based continuous kind."""
    if continuous_kind == "periodic-matching":
        return PeriodicMatchingSchedule(network)
    if continuous_kind == "random-matching":
        return RandomMatchingSchedule(network, seed=seed)
    return None


def make_continuous(
    continuous_kind: str,
    network: Network,
    initial_load: Sequence[float],
    schedule: Optional[MatchingSchedule] = None,
    seed: Optional[int] = None,
    check_negative_load: bool = False,
) -> ContinuousProcess:
    """Construct a continuous process of the requested kind."""
    if continuous_kind == "fos":
        return FirstOrderDiffusion(network, initial_load,
                                   check_negative_load=check_negative_load)
    if continuous_kind == "sos":
        return SecondOrderDiffusion(network, initial_load,
                                    check_negative_load=check_negative_load)
    if continuous_kind in _MATCHING_KINDS:
        if schedule is None:
            schedule = make_schedule(continuous_kind, network, seed=seed)
        return DimensionExchange(network, initial_load, schedule,
                                 check_negative_load=check_negative_load)
    raise ExperimentError(
        f"unknown continuous kind {continuous_kind!r}; valid kinds: {CONTINUOUS_KINDS}"
    )


def determine_balancing_time(
    network: Network,
    initial_load: Sequence[float],
    continuous_kind: str = "fos",
    tolerance: float = BALANCE_TOLERANCE,
    schedule: Optional[MatchingSchedule] = None,
    seed: Optional[int] = None,
    max_rounds: int = 200_000,
) -> int:
    """Measure the balancing time ``T`` of the continuous substrate on this instance."""
    process = make_continuous(continuous_kind, network, initial_load,
                              schedule=schedule, seed=seed)
    return process.run_until_balanced(tolerance=tolerance, max_rounds=max_rounds)


def _integer_token_loads(initial_load: Sequence[float]) -> np.ndarray:
    loads = np.asarray(initial_load, dtype=float)
    if not np.allclose(loads, np.round(loads)):
        raise ExperimentError(
            "integer token loads are required; pass a TaskAssignment for weighted tasks"
        )
    return np.round(loads).astype(np.int64)


def _build_flow_imitation(
    algorithm: str,
    network: Network,
    initial_load: Optional[Sequence[float]],
    assignment: Optional[TaskAssignment],
    weighted_load: Optional[WeightedLoads],
    continuous_kind: str,
    schedule: Optional[MatchingSchedule],
    seed: Optional[int],
    selection_policy: str,
    backend: str,
    rng_mode: str,
) -> FlowCoupledBalancer:
    counts = None
    if assignment is not None:
        reference_load = assignment.loads()
    elif weighted_load is not None:
        reference_load = weighted_load.load_vector().astype(float)
    else:
        counts = _integer_token_loads(initial_load)
        reference_load = counts.astype(float)
    continuous = make_continuous(continuous_kind, network, reference_load,
                                 schedule=schedule, seed=seed)
    backend_impl = get_backend(backend, assignment=assignment,
                               weighted=weighted_load, algorithm=algorithm)
    return backend_impl.build_flow_imitation(
        algorithm, continuous, initial_load=counts, assignment=assignment,
        weighted=weighted_load, seed=seed, selection_policy=selection_policy,
        rng_mode=rng_mode,
    )


def _build_baseline(
    algorithm: str,
    network: Network,
    initial_load: Sequence[float],
    continuous_kind: str,
    schedule: Optional[MatchingSchedule],
    seed: Optional[int],
    backend: str,
    rng_mode: str = "sequential",
) -> DiscreteBalancer:
    # A clear error beats a silently rounded workload: the baselines balance
    # whole tokens, so fractional loads are a caller bug.
    loads = as_token_counts(initial_load, network, error=ExperimentError)
    if algorithm in DIFFUSION_BASELINES:
        if continuous_kind not in ("fos", "sos"):
            raise ExperimentError(
                f"{algorithm!r} is a diffusion baseline; use continuous_kind 'fos'"
            )
        cls = get_backend(backend).diffusion_class(algorithm, rng_mode=rng_mode)
        if algorithm in ("round-down", "quasirandom"):
            return cls(network, loads)
        # The randomized baselines draw order-free counter randomness on demand.
        return cls(network, loads, seed=seed, rng_mode=rng_mode)
    if algorithm in MATCHING_BASELINES:
        if continuous_kind not in _MATCHING_KINDS:
            raise ExperimentError(
                f"{algorithm!r} is a matching baseline; use a matching continuous_kind"
            )
        if schedule is None:
            schedule = make_schedule(continuous_kind, network, seed=seed)
        # Matching baselines are columnar already; both backends share them.
        if algorithm == "matching-round-down":
            return RoundDownMatching(network, loads, schedule)
        return RandomizedRoundingMatching(network, loads, schedule, seed=seed)
    raise ExperimentError(
        f"unknown algorithm {algorithm!r}; valid algorithms: {ALL_ALGORITHMS}"
    )


def make_balancer(
    algorithm: str,
    network: Network,
    initial_load: Optional[Sequence[float]] = None,
    assignment: Optional[TaskAssignment] = None,
    weighted_load: Optional[WeightedLoads] = None,
    continuous_kind: str = "fos",
    schedule: Optional[MatchingSchedule] = None,
    seed: Optional[int] = None,
    selection_policy: str = TaskSelectionPolicy.FIFO,
    backend: str = "auto",
    rng_mode: str = "sequential",
) -> DiscreteBalancer:
    """Construct (and couple) a discrete balancer of the requested kind.

    This is the registry entry point shared by :func:`run_algorithm` and the
    dynamic streaming engine (:mod:`repro.dynamic.stream`), which rebuilds —
    "re-couples" — the balancer whenever events change the workload or the
    topology.  Exactly one of ``initial_load`` / ``assignment`` /
    ``weighted_load`` must be given; weighted workloads (assignments or
    :class:`~repro.tasks.weighted.WeightedLoads` buckets) are only supported
    by the flow-imitation algorithms.

    ``backend`` selects the load-state representation (see
    :mod:`repro.backend`): ``"auto"`` (default) uses the vectorised array
    backend for integer token loads, columnar weight buckets and
    integer-weight task assignments, falling back to the object backend only
    for workloads that need task objects (non-integer weights); the backends
    produce identical trajectories for any given seed, so the choice is
    purely about speed.  ``rng_mode`` selects how the randomized processes —
    Algorithm 2, the randomized-rounding diffusion and the excess-token
    baseline — draw their randomness: "sequential" consumes one shared
    generator in iteration order, the "counter" mode keys a Philox generator
    on ``(seed, round, edge-or-node)`` so every draw is order-free (see
    :mod:`repro.counter_rng`); deterministic algorithms ignore it.
    """
    if algorithm not in ALL_ALGORITHMS:
        raise ExperimentError(
            f"unknown algorithm {algorithm!r}; valid algorithms: {ALL_ALGORITHMS}"
        )
    validate_rng_mode(rng_mode, error=ExperimentError)
    workloads_given = sum(w is not None for w in (initial_load, assignment, weighted_load))
    if workloads_given != 1:
        raise ExperimentError(
            "provide exactly one of initial_load, assignment or weighted_load")
    if algorithm in FLOW_IMITATION_ALGORITHMS:
        return _build_flow_imitation(algorithm, network, initial_load, assignment,
                                     weighted_load, continuous_kind, schedule, seed,
                                     selection_policy, backend, rng_mode)
    if assignment is not None or weighted_load is not None:
        raise ExperimentError(
            "task assignments (weighted tasks) are only supported by the "
            "flow-imitation algorithms"
        )
    return _build_baseline(algorithm, network, initial_load,
                           continuous_kind, schedule, seed, backend,
                           rng_mode=rng_mode)


def run_algorithm(
    algorithm: str,
    network: Network,
    initial_load: Optional[Sequence[float]] = None,
    assignment: Optional[TaskAssignment] = None,
    weighted_load: Optional[WeightedLoads] = None,
    continuous_kind: str = "fos",
    rounds: Optional[int] = None,
    tolerance: float = BALANCE_TOLERANCE,
    schedule: Optional[MatchingSchedule] = None,
    seed: Optional[int] = None,
    record_trace: bool = False,
    max_rounds: int = 200_000,
    selection_policy: str = TaskSelectionPolicy.FIFO,
    backend: str = "auto",
    rng_mode: str = "sequential",
    bus: Optional[MetricsBus] = None,
    audit: bool = False,
) -> RunResult:
    """Run a single discrete balancing algorithm and summarize the outcome.

    Parameters
    ----------
    algorithm:
        One of :data:`ALL_ALGORITHMS`.
    initial_load / assignment / weighted_load:
        Provide exactly one: an integer token load vector, a
        :class:`TaskAssignment`, or columnar
        :class:`~repro.tasks.weighted.WeightedLoads` buckets (weighted tasks
        are only supported by ``"algorithm1"``).
    continuous_kind:
        The continuous substrate to imitate / round.
    rounds:
        How many rounds to run.  ``None`` means "until the continuous
        substrate is balanced" — measured internally for flow imitation, and
        via :func:`determine_balancing_time` for baselines.
    record_trace:
        When ``True``, the per-round max-min discrepancy trace is stored in
        the result.
    backend:
        Load-state backend (see :mod:`repro.backend`); ``"auto"`` picks the
        vectorised array backend whenever the workload allows it.  The
        backend actually used — and why — is recorded in
        ``result.extra["backend"]`` / ``extra["backend_reason"]``.
    rng_mode:
        How the randomized processes (Algorithm 2, randomized-rounding
        diffusion, excess tokens) draw their randomness: "sequential", or the
        order-free edge/node-keyed "counter" mode of
        :mod:`repro.counter_rng`; deterministic algorithms ignore it.
    bus:
        Optional :class:`~repro.obs.bus.MetricsBus`: the run emits
        ``run_start`` / per-round ``round`` / ``run_end`` telemetry events
        through an attached :class:`~repro.obs.probe.RoundProbe`.
        Instrumentation is read-only — trajectories are bit-identical with
        and without a subscriber — and the accumulated kernel wall-clock is
        recorded in ``result.extra["kernel_seconds"]``.
    audit:
        Check the paper's per-round invariants with a
        :class:`~repro.core.diagnostics.FlowImitationAuditor` after every
        round (flow-imitation algorithms only).  The audit summary lands in
        ``result.extra["audit"]``; violations are also emitted on ``bus`` as
        ``audit_violation`` events.
    """
    if algorithm not in ALL_ALGORITHMS:
        raise ExperimentError(
            f"unknown algorithm {algorithm!r}; valid algorithms: {ALL_ALGORITHMS}"
        )
    workloads_given = sum(w is not None for w in (initial_load, assignment, weighted_load))
    if workloads_given != 1:
        raise ExperimentError(
            "provide exactly one of initial_load, assignment or weighted_load")

    is_flow_imitation = algorithm in FLOW_IMITATION_ALGORITHMS
    if (assignment is not None or weighted_load is not None) and not is_flow_imitation:
        raise ExperimentError(
            "task assignments (weighted tasks) are only supported by the "
            "flow-imitation algorithms"
        )

    if schedule is None and continuous_kind in _MATCHING_KINDS:
        schedule = make_schedule(continuous_kind, network, seed=seed)

    if assignment is not None:
        reference_load = assignment.loads()
    elif weighted_load is not None:
        reference_load = weighted_load.load_vector().astype(float)
    else:
        reference_load = np.asarray(initial_load, dtype=float)
    original_weight = float(reference_load.sum())

    choice = resolve_backend(backend, assignment=assignment,
                             weighted=weighted_load, algorithm=algorithm,
                             rng_mode=rng_mode)
    if is_flow_imitation:
        # Pass the already-resolved concrete backend so the object path does
        # not repeat the per-task integer-weight scan of the resolution.
        balancer: DiscreteBalancer = make_balancer(
            algorithm, network, initial_load=initial_load, assignment=assignment,
            weighted_load=weighted_load,
            continuous_kind=continuous_kind, schedule=schedule, seed=seed,
            selection_policy=selection_policy, backend=choice.name,
            rng_mode=rng_mode,
        )
        w_max = balancer.w_max  # type: ignore[union-attr]
    else:
        if rounds is None:
            rounds = determine_balancing_time(
                network, reference_load, continuous_kind, tolerance=tolerance,
                schedule=schedule, seed=seed, max_rounds=max_rounds,
            )
        balancer = make_balancer(algorithm, network, initial_load=reference_load,
                                 continuous_kind=continuous_kind,
                                 schedule=schedule, seed=seed, backend=backend,
                                 rng_mode=rng_mode)
        w_max = 1.0
        # The backend choice only selects classes for the diffusion baselines;
        # report what actually ran, not just what was resolved.
        if algorithm in MATCHING_BASELINES:
            choice = BackendChoice(
                choice.name, "matching baselines share one integer-vector "
                             "implementation across backends")

    probe: Optional[RoundProbe] = None
    if bus is not None:
        probe = RoundProbe(bus, source="engine", context={
            "algorithm": algorithm, "backend": choice.name, "rng_mode": rng_mode})
        balancer.attach_probe(probe)
        bus.emit("run_start", "engine", algorithm=algorithm,
                 network=network.name, n=network.num_nodes,
                 max_degree=network.max_degree, continuous=continuous_kind,
                 backend=choice.name, rng_mode=rng_mode, seed=seed,
                 rounds=rounds, total_weight=original_weight)

    auditor = None
    if audit:
        if not isinstance(balancer, FlowCoupledBalancer):
            raise ExperimentError(
                "audit=True requires a flow-imitation algorithm "
                "(the audited invariants are about the coupled processes)")
        from ..core.diagnostics import FlowImitationAuditor

        auditor = FlowImitationAuditor(balancer, bus=bus)

    trace: Optional[List[float]] = [] if record_trace else None

    def record() -> None:
        if auditor is not None:
            auditor.check_round()
        if trace is not None:
            trace.append(max_min_discrepancy(balancer.loads(), network))

    if trace is not None:
        trace.append(max_min_discrepancy(balancer.loads(), network))
    executed = 0
    if rounds is not None:
        for _ in range(rounds):
            balancer.advance()
            executed += 1
            record()
    else:
        # Flow imitation with an adaptive horizon: run until the internal
        # continuous process reaches its balancing time T.
        flow_balancer = balancer  # type: ignore[assignment]
        assert isinstance(flow_balancer, FlowCoupledBalancer)
        while not flow_balancer.continuous.is_balanced(tolerance):
            if executed >= max_rounds:
                raise ConvergenceError(
                    f"continuous substrate did not balance within {max_rounds} rounds"
                )
            flow_balancer.advance()
            executed += 1
            record()

    final_loads = balancer.loads()
    result = RunResult(
        algorithm=algorithm,
        continuous_kind=continuous_kind,
        network_name=network.name,
        num_nodes=network.num_nodes,
        max_degree=network.max_degree,
        rounds=executed,
        total_weight=original_weight,
        max_task_weight=w_max,
        final_max_min=max_min_discrepancy(final_loads, network),
        final_max_avg=max_avg_discrepancy(final_loads, network,
                                          total_weight=original_weight),
        trace_max_min=trace,
    )
    result.extra["backend"] = choice.name
    result.extra["backend_reason"] = choice.reason
    if auditor is not None:
        result.extra["audit"] = auditor.report.as_extra()
    if probe is not None:
        balancer.attach_probe(None)
        result.extra["kernel_seconds"] = probe.kernel_seconds
        bus.emit("run_end", "engine", round_index=executed,
                 algorithm=algorithm, rounds=executed,
                 max_min=result.final_max_min, max_avg=result.final_max_avg,
                 kernel_seconds=probe.kernel_seconds)

    if isinstance(balancer, FlowCoupledBalancer):
        no_dummy_loads = balancer.loads(include_dummies=False)
        result.final_max_min_no_dummies = max_min_discrepancy(no_dummy_loads, network)
        result.final_max_avg_no_dummies = max_avg_discrepancy(
            no_dummy_loads, network, total_weight=original_weight
        )
        result.dummy_tokens = balancer.dummy_tokens_created
        result.used_infinite_source = balancer.used_infinite_source
    else:
        result.went_negative = getattr(balancer, "went_negative", False)
    return result


def compare_algorithms(
    network: Network,
    initial_load: Sequence[float],
    algorithms: Sequence[str],
    continuous_kind: str = "fos",
    tolerance: float = BALANCE_TOLERANCE,
    seed: Optional[int] = None,
    rounds: Optional[int] = None,
    record_trace: bool = False,
    max_rounds: int = 200_000,
    backend: str = "auto",
    rng_mode: str = "sequential",
) -> List[RunResult]:
    """Run several algorithms on the same instance for the same number of rounds.

    The number of rounds defaults to the balancing time ``T`` of the
    continuous substrate on this instance (the horizon at which the paper's
    theorems bound the discrepancy).  Matching-based runs share a single
    matching schedule so every algorithm observes the same matchings.
    """
    for algorithm in algorithms:
        if algorithm not in ALL_ALGORITHMS:
            raise ExperimentError(f"unknown algorithm {algorithm!r}")
    schedule = make_schedule(continuous_kind, network, seed=seed)
    if rounds is None:
        rounds = determine_balancing_time(
            network, initial_load, continuous_kind, tolerance=tolerance,
            schedule=schedule, seed=seed, max_rounds=max_rounds,
        )
    results = []
    for index, algorithm in enumerate(algorithms):
        run_seed = None if seed is None else seed + 1000 * (index + 1)
        results.append(
            run_algorithm(
                algorithm,
                network,
                initial_load=initial_load,
                continuous_kind=continuous_kind,
                rounds=rounds,
                tolerance=tolerance,
                schedule=schedule,
                seed=run_seed,
                record_trace=record_trace,
                max_rounds=max_rounds,
                backend=backend,
                rng_mode=rng_mode,
            )
        )
    return results
