"""The shared workload registry used by sweeps, scenarios and the CLI.

Historically :mod:`repro.simulation.sweep` and :mod:`repro.simulation.scenario`
each kept their own name -> generator table and the two drifted apart: the
sweep table lacked ``two-point`` and ``balanced``.  Both entry points now
select from this single registry, so every workload name means the same thing
everywhere (and new workloads only need to be registered once).

Every generator has the uniform signature ``(network, tokens_per_node, seed)``
and returns an integer token vector; deterministic workloads simply ignore
the seed.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from ..network.graph import Network
from ..tasks import generators

__all__ = ["WORKLOADS"]

#: Workload generators selectable by name (integer token loads).
WORKLOADS: Dict[str, Callable[[Network, int, Optional[int]], np.ndarray]] = {
    "point": lambda network, tokens, seed: generators.point_load(
        network, tokens * network.num_nodes),
    "two-point": lambda network, tokens, seed: generators.two_point_load(
        network, tokens * network.num_nodes),
    "uniform": lambda network, tokens, seed: generators.uniform_random_load(
        network, tokens * network.num_nodes, seed=seed),
    "half-nodes": lambda network, tokens, seed: generators.half_nodes_load(
        network, 2 * tokens, seed=seed),
    "gradient": lambda network, tokens, seed: generators.linear_gradient_load(
        network, 2 * tokens),
    "balanced": lambda network, tokens, seed: generators.balanced_load(
        network, tokens),
}
