"""Multi-seed sweeps: run a configuration many times and aggregate the results.

Randomized components (Algorithm 2, randomized-rounding baselines, random
matching schedules, random workloads) make single runs noisy.  A
:class:`SweepConfiguration` describes one experimental cell (algorithm,
topology, workload, substrate); :func:`run_sweep` executes it over several
seeds and returns a :class:`SweepResult` with per-metric
:class:`~repro.analysis.aggregate.SampleStatistics`.

The benchmarks use single representative seeds for speed; the sweep API is
what a user would reach for to put error bars on the tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..analysis.aggregate import SampleStatistics, summarize_samples
from ..exceptions import ExperimentError
from ..network import topologies
from ..network.graph import Network
from ..tasks.generators import (
    half_nodes_load,
    linear_gradient_load,
    point_load,
    uniform_random_load,
)
from .engine import ALL_ALGORITHMS, run_algorithm
from .results import RunResult

__all__ = ["SweepConfiguration", "SweepResult", "run_sweep", "grid_sweep"]

#: Built-in workload generators selectable by name in a sweep configuration.
WORKLOADS: Dict[str, Callable[[Network, int, Optional[int]], np.ndarray]] = {
    "point": lambda network, tokens, seed: point_load(network, tokens * network.num_nodes),
    "uniform": lambda network, tokens, seed: uniform_random_load(
        network, tokens * network.num_nodes, seed=seed),
    "half-nodes": lambda network, tokens, seed: half_nodes_load(
        network, 2 * tokens, seed=seed),
    "gradient": lambda network, tokens, seed: linear_gradient_load(
        network, 2 * tokens),
}


@dataclass(frozen=True)
class SweepConfiguration:
    """One experimental cell of a sweep.

    Attributes
    ----------
    algorithm:
        One of :data:`repro.simulation.engine.ALL_ALGORITHMS`.
    topology:
        A named topology family (see :func:`repro.network.topologies.named_topology`).
    num_nodes:
        Approximate network size.
    tokens_per_node:
        Average workload density.
    workload:
        One of :data:`WORKLOADS` (``"point"``, ``"uniform"``, ``"half-nodes"``,
        ``"gradient"``).
    continuous_kind:
        The continuous substrate ("fos", "sos", "periodic-matching",
        "random-matching").
    """

    algorithm: str
    topology: str = "torus"
    num_nodes: int = 64
    tokens_per_node: int = 32
    workload: str = "point"
    continuous_kind: str = "fos"

    def label(self) -> str:
        """A compact human-readable label for tables."""
        return (f"{self.algorithm} on {self.topology}(n~{self.num_nodes}) "
                f"[{self.workload}, {self.continuous_kind}]")


@dataclass
class SweepResult:
    """Aggregated outcome of running one configuration over several seeds."""

    configuration: SweepConfiguration
    runs: List[RunResult] = field(default_factory=list)

    @property
    def num_runs(self) -> int:
        """Number of completed runs."""
        return len(self.runs)

    def statistic(self, metric: str) -> SampleStatistics:
        """Aggregate one metric ("max_min", "max_avg", "rounds", "dummy_tokens")."""
        extractors = {
            "max_min": lambda run: run.final_max_min,
            "max_avg": lambda run: run.final_max_avg,
            "rounds": lambda run: float(run.rounds),
            "dummy_tokens": lambda run: float(run.dummy_tokens),
        }
        if metric not in extractors:
            raise ExperimentError(
                f"unknown metric {metric!r}; valid metrics: {sorted(extractors)}"
            )
        if not self.runs:
            raise ExperimentError("the sweep produced no runs to aggregate")
        return summarize_samples([extractors[metric](run) for run in self.runs])

    def as_row(self) -> Dict[str, object]:
        """Flatten into a table row: configuration plus the key aggregates."""
        max_min = self.statistic("max_min")
        rounds = self.statistic("rounds")
        return {
            "algorithm": self.configuration.algorithm,
            "topology": self.configuration.topology,
            "n": self.configuration.num_nodes,
            "workload": self.configuration.workload,
            "substrate": self.configuration.continuous_kind,
            "runs": self.num_runs,
            "max_min_mean": max_min.mean,
            "max_min_p90": max_min.percentile_90,
            "max_min_worst": max_min.maximum,
            "rounds_mean": rounds.mean,
        }


def run_sweep(configuration: SweepConfiguration, seeds: Sequence[int],
              record_trace: bool = False, max_rounds: int = 200_000) -> SweepResult:
    """Run one configuration once per seed and aggregate the results.

    The seed controls the topology sample (for random families), the workload
    placement, the matching schedule and the algorithm's internal randomness,
    so repeated sweeps with the same seeds are fully reproducible.
    """
    if configuration.algorithm not in ALL_ALGORITHMS:
        raise ExperimentError(f"unknown algorithm {configuration.algorithm!r}")
    if configuration.workload not in WORKLOADS:
        raise ExperimentError(
            f"unknown workload {configuration.workload!r}; valid: {sorted(WORKLOADS)}"
        )
    if not seeds:
        raise ExperimentError("at least one seed is required")
    result = SweepResult(configuration=configuration)
    for seed in seeds:
        network = topologies.named_topology(
            configuration.topology, configuration.num_nodes, seed=seed)
        load = WORKLOADS[configuration.workload](
            network, configuration.tokens_per_node, seed)
        run = run_algorithm(
            configuration.algorithm,
            network,
            initial_load=load,
            continuous_kind=configuration.continuous_kind,
            seed=seed,
            record_trace=record_trace,
            max_rounds=max_rounds,
        )
        result.runs.append(run)
    return result


def grid_sweep(algorithms: Sequence[str], topologies_and_sizes: Sequence[Sequence],
               seeds: Sequence[int], tokens_per_node: int = 32,
               workload: str = "point", continuous_kind: str = "fos") -> List[SweepResult]:
    """Run the cross product of algorithms and (topology, size) pairs."""
    results: List[SweepResult] = []
    for topology, size in topologies_and_sizes:
        for algorithm in algorithms:
            configuration = SweepConfiguration(
                algorithm=algorithm, topology=topology, num_nodes=int(size),
                tokens_per_node=tokens_per_node, workload=workload,
                continuous_kind=continuous_kind,
            )
            results.append(run_sweep(configuration, seeds))
    return results
