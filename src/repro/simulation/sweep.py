"""Multi-seed sweeps: run a configuration many times and aggregate the results.

Randomized components (Algorithm 2, randomized-rounding baselines, random
matching schedules, random workloads) make single runs noisy.  A
:class:`SweepConfiguration` describes one experimental cell (algorithm,
topology, workload, substrate); :func:`run_sweep` executes it over several
seeds and returns a :class:`SweepResult` with per-metric
:class:`~repro.analysis.aggregate.SampleStatistics`.

Each (cell, seed) run derives **independent child seeds** for the topology
sample, the workload placement, the matching schedule and the algorithm's
internal randomness via :mod:`repro.simulation.seeding` — reusing one integer
for all four (the historical behaviour, still available as
``legacy_seeding=True``) correlates components that the experiment design
treats as independent.

Sweeps are embarrassingly parallel across (cell, seed) pairs: pass
``workers=N`` to :func:`run_sweep` / :func:`grid_sweep` to shard the runs
over a process pool (:mod:`repro.simulation.parallel`).  The merge is
bit-identical to the serial path because every run is a pure function of its
cell and seed.

The benchmarks use single representative seeds for speed; the sweep API is
what a user would reach for to put error bars on the tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.aggregate import SampleStatistics, summarize_samples
from ..exceptions import ExperimentError
from ..network import topologies
from .engine import ALL_ALGORITHMS, BACKEND_KINDS, RNG_MODES, make_schedule, run_algorithm
from .results import RunResult
from .seeding import purpose_seeds
from .workloads import WORKLOADS

__all__ = [
    "WORKLOADS",
    "SweepConfiguration",
    "SweepResult",
    "run_sweep",
    "run_sweep_cell",
    "grid_sweep",
]


@dataclass(frozen=True)
class SweepConfiguration:
    """One experimental cell of a sweep.

    Attributes
    ----------
    algorithm:
        One of :data:`repro.simulation.engine.ALL_ALGORITHMS`.
    topology:
        A named topology family (see :func:`repro.network.topologies.named_topology`).
    num_nodes:
        Approximate network size.
    tokens_per_node:
        Average workload density.
    workload:
        One of :data:`~repro.simulation.workloads.WORKLOADS` (``"point"``,
        ``"two-point"``, ``"uniform"``, ``"half-nodes"``, ``"gradient"``,
        ``"balanced"``).
    continuous_kind:
        The continuous substrate ("fos", "sos", "periodic-matching",
        "random-matching").
    backend:
        Load-state backend ("auto", "object", "array"); see :mod:`repro.backend`.
    rng_mode:
        How randomized processes draw ("sequential", or the order-free
        "counter" mode of :mod:`repro.counter_rng`).
    """

    algorithm: str
    topology: str = "torus"
    num_nodes: int = 64
    tokens_per_node: int = 32
    workload: str = "point"
    continuous_kind: str = "fos"
    backend: str = "auto"
    rng_mode: str = "sequential"

    def label(self) -> str:
        """A compact human-readable label for tables."""
        return (f"{self.algorithm} on {self.topology}(n~{self.num_nodes}) "
                f"[{self.workload}, {self.continuous_kind}]")


@dataclass
class SweepResult:
    """Aggregated outcome of running one configuration over several seeds."""

    configuration: SweepConfiguration
    runs: List[RunResult] = field(default_factory=list)

    @property
    def num_runs(self) -> int:
        """Number of completed runs."""
        return len(self.runs)

    def statistic(self, metric: str) -> SampleStatistics:
        """Aggregate one metric ("max_min", "max_avg", "rounds", "dummy_tokens")."""
        extractors = {
            "max_min": lambda run: run.final_max_min,
            "max_avg": lambda run: run.final_max_avg,
            "rounds": lambda run: float(run.rounds),
            "dummy_tokens": lambda run: float(run.dummy_tokens),
        }
        if metric not in extractors:
            raise ExperimentError(
                f"unknown metric {metric!r}; valid metrics: {sorted(extractors)}"
            )
        if not self.runs:
            raise ExperimentError("the sweep produced no runs to aggregate")
        return summarize_samples([extractors[metric](run) for run in self.runs])

    def as_row(self) -> Dict[str, object]:
        """Flatten into a table row: configuration plus the key aggregates."""
        max_min = self.statistic("max_min")
        rounds = self.statistic("rounds")
        return {
            "algorithm": self.configuration.algorithm,
            "topology": self.configuration.topology,
            "n": self.configuration.num_nodes,
            "workload": self.configuration.workload,
            "substrate": self.configuration.continuous_kind,
            "runs": self.num_runs,
            "max_min_mean": max_min.mean,
            "max_min_p90": max_min.percentile_90,
            "max_min_worst": max_min.maximum,
            "rounds_mean": rounds.mean,
        }


def _validate_configuration(configuration: SweepConfiguration) -> None:
    if configuration.algorithm not in ALL_ALGORITHMS:
        raise ExperimentError(f"unknown algorithm {configuration.algorithm!r}")
    if configuration.workload not in WORKLOADS:
        raise ExperimentError(
            f"unknown workload {configuration.workload!r}; valid: {sorted(WORKLOADS)}"
        )
    if configuration.backend not in BACKEND_KINDS:
        raise ExperimentError(
            f"unknown backend {configuration.backend!r}; valid: {BACKEND_KINDS}")
    if configuration.rng_mode not in RNG_MODES:
        raise ExperimentError(
            f"unknown rng mode {configuration.rng_mode!r}; valid: {RNG_MODES}")


def run_sweep_cell(configuration: SweepConfiguration, seed: int,
                   record_trace: bool = False, max_rounds: int = 200_000,
                   legacy_seeding: bool = False, bus=None) -> RunResult:
    """Execute one (configuration, seed) run — the unit of sweep sharding.

    This is the pure function both the serial loop of :func:`run_sweep` and
    the process-pool workers of :mod:`repro.simulation.parallel` call, which
    is what makes parallel merges bit-identical to serial ones.  The seed
    spawns independent child streams for the topology, the workload, the
    matching schedule and the algorithm (see
    :mod:`repro.simulation.seeding`); ``legacy_seeding=True`` restores the
    historical single-integer reuse.

    ``bus`` forwards a :class:`~repro.obs.bus.MetricsBus` to
    :func:`~repro.simulation.engine.run_algorithm`, streaming per-round
    telemetry from the cell.  In a process-pool worker this is the worker's
    private capture bus; the driver relays the captured stream back onto the
    main bus with ``(worker, cell, seed)`` attribution (see
    :mod:`repro.obs.relay`).
    """
    _validate_configuration(configuration)
    seeds = purpose_seeds(seed, legacy=legacy_seeding)
    network = topologies.named_topology(
        configuration.topology, configuration.num_nodes, seed=seeds.topology)
    load = WORKLOADS[configuration.workload](
        network, configuration.tokens_per_node, seeds.workload)
    schedule = make_schedule(configuration.continuous_kind, network,
                             seed=seeds.schedule)
    return run_algorithm(
        configuration.algorithm,
        network,
        initial_load=load,
        continuous_kind=configuration.continuous_kind,
        schedule=schedule,
        seed=seeds.algorithm,
        record_trace=record_trace,
        max_rounds=max_rounds,
        backend=configuration.backend,
        rng_mode=configuration.rng_mode,
        bus=bus,
    )


def run_sweep(configuration: SweepConfiguration, seeds: Sequence[int],
              record_trace: bool = False, max_rounds: int = 200_000,
              legacy_seeding: bool = False,
              workers: Optional[int] = None, bus=None) -> SweepResult:
    """Run one configuration once per seed and aggregate the results.

    Each seed spawns independent child streams for the topology sample (for
    random families), the workload placement, the matching schedule and the
    algorithm's internal randomness, so repeated sweeps with the same seeds
    are fully reproducible and the components stay uncorrelated across
    seeds.  ``legacy_seeding=True`` restores the historical behaviour of
    passing the same integer to every component.

    ``workers`` shards the per-seed runs over a process pool (``None`` or 1
    runs serially in-process); the merged result is bit-identical either way.
    """
    _validate_configuration(configuration)
    if not seeds:
        raise ExperimentError("at least one seed is required")
    if workers is not None and workers > 1:
        from .parallel import parallel_sweep

        return parallel_sweep(configuration, seeds, workers=workers,
                              record_trace=record_trace, max_rounds=max_rounds,
                              legacy_seeding=legacy_seeding, bus=bus)
    result = SweepResult(configuration=configuration)
    for seed in seeds:
        result.runs.append(
            run_sweep_cell(configuration, seed, record_trace=record_trace,
                           max_rounds=max_rounds, legacy_seeding=legacy_seeding,
                           bus=bus))
    return result


def grid_sweep(algorithms: Sequence[str], topologies_and_sizes: Sequence[Sequence],
               seeds: Sequence[int], tokens_per_node: int = 32,
               workload: str = "point", continuous_kind: str = "fos",
               legacy_seeding: bool = False,
               workers: Optional[int] = None) -> List[SweepResult]:
    """Run the cross product of algorithms and (topology, size) pairs.

    With ``workers`` the whole grid is sharded at (cell, seed) granularity —
    one queue of runs across all cells, so a slow cell does not serialise
    the grid — and merged back per configuration, bit-identically to the
    serial path.
    """
    configurations = [
        SweepConfiguration(
            algorithm=algorithm, topology=topology, num_nodes=int(size),
            tokens_per_node=tokens_per_node, workload=workload,
            continuous_kind=continuous_kind,
        )
        for topology, size in topologies_and_sizes
        for algorithm in algorithms
    ]
    if workers is not None and workers > 1:
        from .parallel import parallel_grid_sweep

        return parallel_grid_sweep(configurations, seeds, workers=workers,
                                   legacy_seeding=legacy_seeding)
    return [run_sweep(configuration, seeds, legacy_seeding=legacy_seeding)
            for configuration in configurations]
