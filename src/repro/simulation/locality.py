"""Task locality analysis: how far do tasks travel from their origin?

The introduction of the paper motivates neighbourhood load balancing partly
by locality: because tasks only move between neighbours, they "have the
tendency to keep the tasks close to their initial location which is
beneficial if the tasks originated on the same resource have to exchange
information".

This module quantifies that claim for the flow-imitation algorithms.  Each
:class:`~repro.tasks.task.Task` optionally records its ``origin`` node; after
a run we can measure the graph distance between every task's origin and its
final location and summarise the displacement distribution.  The ablation
benchmark ``benchmarks/bench_locality.py`` compares the displacement of
Algorithm 1 under the different task-selection policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx
import numpy as np

from ..exceptions import ExperimentError
from ..network.graph import Network
from ..tasks.assignment import TaskAssignment

__all__ = ["DisplacementSummary", "task_displacements", "summarize_displacements"]


@dataclass(frozen=True)
class DisplacementSummary:
    """Distribution of task displacements (graph distance origin -> final node)."""

    tasks_measured: int
    mean: float
    median: float
    maximum: int
    fraction_stationary: float
    fraction_within_one_hop: float

    def as_dict(self) -> Dict[str, float]:
        """Return the summary as a plain dictionary."""
        return {
            "tasks_measured": self.tasks_measured,
            "mean": self.mean,
            "median": self.median,
            "max": self.maximum,
            "fraction_stationary": self.fraction_stationary,
            "fraction_within_one_hop": self.fraction_within_one_hop,
        }


def task_displacements(assignment: TaskAssignment,
                       include_dummies: bool = False) -> List[int]:
    """Return the graph distance from origin to current node for every task.

    Tasks without a recorded origin are skipped; dummy tasks are skipped
    unless ``include_dummies`` is set.
    """
    network: Network = assignment.network
    network.require_connected()
    lengths = dict(nx.all_pairs_shortest_path_length(network.graph))
    displacements: List[int] = []
    for node in network.nodes:
        for task in assignment.tasks_at(node):
            if task.is_dummy and not include_dummies:
                continue
            if task.origin is None:
                continue
            displacements.append(int(lengths[task.origin][node]))
    return displacements


def summarize_displacements(assignment: TaskAssignment,
                            include_dummies: bool = False) -> DisplacementSummary:
    """Summarise the displacement distribution of an assignment's tasks."""
    displacements = task_displacements(assignment, include_dummies=include_dummies)
    if not displacements:
        raise ExperimentError(
            "no tasks with a recorded origin; create tasks with origin=... to "
            "use the locality analysis"
        )
    values = np.asarray(displacements, dtype=float)
    return DisplacementSummary(
        tasks_measured=int(values.size),
        mean=float(values.mean()),
        median=float(np.median(values)),
        maximum=int(values.max()),
        fraction_stationary=float(np.mean(values == 0)),
        fraction_within_one_hop=float(np.mean(values <= 1)),
    )
