"""The repo-specific determinism-and-invariants rules.

Every replayability guarantee this library ships is enforced dynamically —
permutation tests for order-free counter draws, worker-count invariance for
parallel merges, kill-at-every-round checkpoint tests.  These rules are the
static counterparts: they make the invariants reviewable at diff time,
before a test run has to catch the regression.

========  =============================  =========================================
rule id   name                           guards
========  =============================  =========================================
R001      nondeterministic-rng           every draw threads a seed from a
                                         parameter (PRs 3-5 seed hygiene)
R002      wall-clock-in-logic            algorithm logic is time-free; clocks
                                         live in ``obs/``/``store/`` or marked
                                         timing envelopes
R003      unordered-iteration-           no set/dict-view iteration feeding RNG
          feeding-draws                  draws or flow emission (PR 4's
                                         permutation invariance)
R004      process-boundary-purity        boundary dataclasses stay picklable and
                                         canonical-JSON-stable (PR 5 dispatch,
                                         PR 6 config hashes)
R005      kernel-phase-coverage          backend round kernels run under
                                         ``kernel_phase(...)`` (PR 7 traces)
========  =============================  =========================================
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .engine import ModuleContext, RuleVisitor, VisitorRule

__all__ = [
    "NondeterministicRngRule",
    "WallClockInLogicRule",
    "UnorderedIterationRule",
    "ProcessBoundaryPurityRule",
    "KernelPhaseCoverageRule",
    "ALL_RULES",
    "RULES_BY_ID",
    "BOUNDARY_TYPES",
]


def _is_constant(node: ast.expr) -> bool:
    """Literal constants (incl. ``-3``) — a hard-coded, unthreaded seed."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.operand, ast.Constant):
        return True
    return False


def _seed_threaded(call: ast.Call) -> bool:
    """Whether a constructor call receives a non-literal seed argument."""
    candidates: List[ast.expr] = list(call.args[:1])
    candidates.extend(keyword.value for keyword in call.keywords
                      if keyword.arg == "seed")
    for candidate in candidates:
        if not _is_constant(candidate):
            return True
    return False


# --------------------------------------------------------------------- #
# R001 nondeterministic-rng
# --------------------------------------------------------------------- #

#: ``random.<draw>()`` — the interpreter-global Mersenne Twister.
_PY_RANDOM_DRAWS: FrozenSet[str] = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "seed",
})

#: ``np.random.<draw>()`` — numpy's legacy module-global RandomState.
_NP_GLOBAL_DRAWS: FrozenSet[str] = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf", "sample",
    "standard_normal", "choice", "shuffle", "permutation", "seed",
    "get_state", "set_state", "normal", "uniform", "binomial", "poisson",
    "exponential", "beta", "gamma", "bytes", "integers",
})


class _RngVisitor(RuleVisitor):
    """Track rng-module aliases, flag global-state draws and unthreaded seeds."""

    def __init__(self, rule: "NondeterministicRngRule",
                 module: ModuleContext) -> None:
        super().__init__(rule, module)
        self._random_modules: Set[str] = set()
        self._numpy_modules: Set[str] = set()
        self._np_random_modules: Set[str] = set()
        self._default_rng_names: Set[str] = set()
        self._random_draw_names: Dict[str, str] = {}
        self._random_class_names: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self._random_modules.add(bound)
            elif alias.name == "numpy":
                self._numpy_modules.add(bound)
            elif alias.name == "numpy.random":
                if alias.asname:
                    self._np_random_modules.add(alias.asname)
                else:
                    self._numpy_modules.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "numpy" and alias.name == "random":
                self._np_random_modules.add(bound)
            elif node.module == "numpy.random" and alias.name == "default_rng":
                self._default_rng_names.add(bound)
            elif node.module == "random":
                if alias.name in _PY_RANDOM_DRAWS:
                    self._random_draw_names[bound] = alias.name
                elif alias.name == "Random":
                    self._random_class_names.add(bound)
        self.generic_visit(node)

    def _resolve_module_attr(self, func: ast.expr) -> Optional[Tuple[str, str]]:
        """Resolve ``mod.attr`` to ``("random"|"np.random", attr)``."""
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in self._random_modules:
                return ("random", func.attr)
            if base.id in self._np_random_modules:
                return ("np.random", func.attr)
        if (isinstance(base, ast.Attribute) and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in self._numpy_modules):
            return ("np.random", func.attr)
        return None

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve_module_attr(node.func)
        if resolved is not None:
            family, attr = resolved
            if family == "random":
                if attr in _PY_RANDOM_DRAWS:
                    self.report(node, (
                        f"random.{attr}() draws from the process-global RNG; "
                        "thread a seeded Generator/Random instance from a "
                        "parameter instead"))
                elif attr == "Random" and not _seed_threaded(node):
                    self.report(node, (
                        "random.Random() without a seed threaded from a "
                        "parameter is not replayable"))
            else:
                if attr == "default_rng":
                    if not _seed_threaded(node):
                        self.report(node, (
                            "default_rng() without a seed threaded from a "
                            "parameter (missing or hard-coded literal) "
                            "breaks replay"))
                elif attr in _NP_GLOBAL_DRAWS:
                    self.report(node, (
                        f"np.random.{attr}() uses numpy's module-global "
                        "RandomState; use a seeded Generator threaded from "
                        "a parameter"))
        elif isinstance(node.func, ast.Name):
            name = node.func.id
            if name in self._default_rng_names and not _seed_threaded(node):
                self.report(node, (
                    "default_rng() without a seed threaded from a parameter "
                    "(missing or hard-coded literal) breaks replay"))
            elif name in self._random_draw_names:
                origin = self._random_draw_names[name]
                self.report(node, (
                    f"{name}() (= random.{origin}) draws from the "
                    "process-global RNG; thread a seeded instance instead"))
            elif name in self._random_class_names and not _seed_threaded(node):
                self.report(node, (
                    "Random() without a seed threaded from a parameter is "
                    "not replayable"))
        self.generic_visit(node)


class NondeterministicRngRule(VisitorRule):
    """R001: every random draw must thread its seed from a parameter."""

    rule_id = "R001"
    name = "nondeterministic-rng"
    description = ("global-state or unseeded RNG use outside counter_rng.py/"
                   "faults.py/tests")
    visitor_class = _RngVisitor

    #: The two modules allowed to own raw entropy: the counter-RNG helpers
    #: (which *define* the seeding discipline) and the fault injectors.
    exempt_files: FrozenSet[str] = frozenset({"counter_rng.py", "faults.py"})

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.is_test and module.filename not in self.exempt_files


# --------------------------------------------------------------------- #
# R002 wall-clock-in-logic
# --------------------------------------------------------------------- #

#: Clock reads on the ``time`` module (wall and monotonic: both are
#: nondeterministic inputs if they leak into algorithm logic).
_TIME_CALLS: FrozenSet[str] = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "gmtime",
    "localtime", "ctime", "asctime",
})

#: Clock-reading classmethods on ``datetime.datetime`` / ``datetime.date``.
_DATETIME_CALLS: FrozenSet[str] = frozenset({"now", "utcnow", "today"})

_DATETIME_CLASSES: FrozenSet[str] = frozenset({"datetime", "date"})


class _WallClockVisitor(RuleVisitor):
    """Flag clock reads; the observability layer is exempt by scoping."""

    def __init__(self, rule: "WallClockInLogicRule",
                 module: ModuleContext) -> None:
        super().__init__(rule, module)
        self._time_modules: Set[str] = set()
        self._datetime_modules: Set[str] = set()
        self._time_func_names: Dict[str, str] = {}
        self._datetime_class_names: Set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if alias.name == "time":
                self._time_modules.add(bound)
            elif alias.name == "datetime":
                self._datetime_modules.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "time" and alias.name in _TIME_CALLS:
                self._time_func_names[bound] = alias.name
            elif (node.module == "datetime"
                    and alias.name in _DATETIME_CLASSES):
                self._datetime_class_names.add(bound)
        self.generic_visit(node)

    def _clock_read(self, func: ast.expr) -> Optional[str]:
        """The dotted name of the clock read ``func`` performs, if any."""
        if isinstance(func, ast.Name):
            origin = self._time_func_names.get(func.id)
            if origin is not None:
                return f"time.{origin}"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        base = func.value
        if isinstance(base, ast.Name):
            if base.id in self._time_modules and func.attr in _TIME_CALLS:
                return f"time.{func.attr}"
            if (base.id in self._datetime_class_names
                    and func.attr in _DATETIME_CALLS):
                return f"datetime.{func.attr}"
        if (isinstance(base, ast.Attribute)
                and base.attr in _DATETIME_CLASSES
                and isinstance(base.value, ast.Name)
                and base.value.id in self._datetime_modules
                and func.attr in _DATETIME_CALLS):
            return f"datetime.{base.attr}.{func.attr}"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        clock = self._clock_read(node.func)
        if clock is not None:
            self.report(node, (
                f"wall-clock read {clock}() outside obs//store/: algorithm "
                "logic must be time-free — move it behind the observability "
                "layer, or mark an intentional timing envelope with "
                "'# repro: allow[R002] <reason>'"))
        self.generic_visit(node)


class WallClockInLogicRule(VisitorRule):
    """R002: no clock reads outside ``obs/``, ``store/`` and marked envelopes."""

    rule_id = "R002"
    name = "wall-clock-in-logic"
    description = ("time.time()/datetime.now()-style clock reads outside "
                   "obs//store/ or a marked timing envelope")
    visitor_class = _WallClockVisitor

    def applies_to(self, module: ModuleContext) -> bool:
        if module.is_test:
            return False
        return not (module.in_directory("obs") or module.in_directory("store"))


# --------------------------------------------------------------------- #
# R003 unordered-iteration-feeding-draws
# --------------------------------------------------------------------- #

_RNG_NAMES: FrozenSet[str] = frozenset({"rng", "_rng"})

_RNG_DRAW_METHODS: FrozenSet[str] = frozenset({
    "integers", "random", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "binomial",
})

_FLOW_CALL_NAMES: FrozenSet[str] = frozenset({"move", "send", "deliver", "emit"})


def _unordered_desc(node: ast.expr) -> Optional[str]:
    """Describe ``node`` when it is a syntactically unordered iterable."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute) and func.attr in ("keys", "values",
                                                             "items"):
            return f"a mapping's .{func.attr}() view"
    return None


def _iteration_sink(nodes: List[ast.stmt]) -> Optional[str]:
    """What the loop body does that makes iteration order load-bearing."""
    for statement in nodes:
        for node in ast.walk(statement):
            if isinstance(node, ast.Name) and node.id in _RNG_NAMES:
                return "touches an RNG"
            if isinstance(node, ast.Attribute) and node.attr in _RNG_NAMES:
                return "touches an RNG"
            if isinstance(node, ast.Call):
                func = node.func
                attr = func.attr if isinstance(func, ast.Attribute) else (
                    func.id if isinstance(func, ast.Name) else "")
                if attr in _RNG_DRAW_METHODS:
                    return "draws randomness"
                if attr in _FLOW_CALL_NAMES or "flow" in attr:
                    return "emits flow"
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    text = (target.attr if isinstance(target, ast.Attribute)
                            else target.id if isinstance(target, ast.Name)
                            else "")
                    if "flow" in text or "cumulative" in text:
                        return "updates cumulative flow"
    return None


class _UnorderedIterationVisitor(RuleVisitor):
    """Flag for-loops/comprehensions over unordered collections that draw."""

    def _check(self, node: ast.AST, iter_node: ast.expr,
               body: List[ast.stmt]) -> None:
        desc = _unordered_desc(iter_node)
        if desc is None:
            return
        sink = _iteration_sink(body)
        if sink is None:
            return
        self.report(node, (
            f"iterating {desc} while the loop body {sink}: iteration order "
            "is not canonical across processes — iterate sorted(...) or an "
            "indexed sequence so draws stay order-free (permutation "
            "invariance, PR 4)"))

    def visit_For(self, node: ast.For) -> None:
        self._check(node, node.iter, node.body)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.expr,
                             generators: List[ast.comprehension]) -> None:
        for generator in generators:
            desc = _unordered_desc(generator.iter)
            if desc is None:
                continue
            sink = _iteration_sink([ast.Expr(value=node)])
            if sink is not None:
                self.report(node, (
                    f"comprehension over {desc} while its body {sink}: "
                    "iteration order is not canonical across processes — "
                    "iterate sorted(...) so draws stay order-free"))
                return
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, node.generators)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, node.generators)


class UnorderedIterationRule(VisitorRule):
    """R003: no unordered iteration where the body draws or emits flow."""

    rule_id = "R003"
    name = "unordered-iteration-feeding-draws"
    description = ("set/dict-view iteration feeding RNG draws or flow "
                   "emission in backend//core//discrete/")
    visitor_class = _UnorderedIterationVisitor

    def applies_to(self, module: ModuleContext) -> bool:
        if module.is_test:
            return False
        return (module.in_directory("backend") or module.in_directory("core")
                or module.in_directory("discrete"))


# --------------------------------------------------------------------- #
# R004 process-boundary-purity
# --------------------------------------------------------------------- #

#: The dataclasses that cross a process or disk boundary: worker dispatch
#: (pickle) and run-store/checkpoint hashing (canonical JSON).  Extend this
#: registry when a new spec type starts travelling.
BOUNDARY_TYPES: FrozenSet[str] = frozenset({
    "GridCell", "CellFailure", "CellOutcome", "FaultPlan", "Scenario",
    "DynamicScenario", "SweepConfiguration", "StreamCheckpoint",
    "CapturedEvent",
})

#: Annotation names that mean "not picklable" or "not canonically
#: serialisable": callables, live iterators, handles, locks, executors.
_FORBIDDEN_ANNOTATIONS: FrozenSet[str] = frozenset({
    "Callable", "Generator", "Iterator", "AsyncIterator", "AsyncGenerator",
    "Coroutine", "Awaitable", "IO", "TextIO", "BinaryIO", "TextIOBase",
    "TextIOWrapper", "BufferedReader", "BufferedWriter", "FileIO",
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Barrier",
    "Thread", "Process", "Pool", "ProcessPoolExecutor", "ThreadPoolExecutor",
    "Future", "Popen", "socket", "ModuleType", "FunctionType", "LambdaType",
    "MethodType", "GeneratorType", "memoryview",
})


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _forbidden_in_annotation(node: ast.expr) -> List[str]:
    """Forbidden type names referenced anywhere inside an annotation."""
    offenders: List[str] = []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return offenders
    for child in ast.walk(node):
        name = ""
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            offenders.extend(_forbidden_in_annotation(child))
        if name in _FORBIDDEN_ANNOTATIONS:
            offenders.append(name)
    return offenders


def _callable_default(node: Optional[ast.expr]) -> bool:
    """A default value that stores a callable on every instance."""
    if node is None:
        return False
    if isinstance(node, ast.Lambda):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        is_field = (isinstance(func, ast.Name) and func.id == "field") or (
            isinstance(func, ast.Attribute) and func.attr == "field")
        if is_field:
            for keyword in node.keywords:
                if keyword.arg == "default" and isinstance(keyword.value,
                                                           ast.Lambda):
                    return True
    return False


class _BoundaryPurityVisitor(RuleVisitor):
    """Check registered boundary dataclasses field by field."""

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name in BOUNDARY_TYPES and _is_dataclass_decorated(node):
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if not isinstance(statement.target, ast.Name):
                    continue
                field_name = statement.target.id
                for offender in _forbidden_in_annotation(
                        statement.annotation):
                    self.report(statement, (
                        f"boundary type {node.name}: field '{field_name}' "
                        f"is annotated with {offender}, which does not "
                        "survive the process boundary (pickle) or canonical-"
                        "JSON config hashing — carry plain data and rebuild "
                        "the live object on the far side"))
                if _callable_default(statement.value):
                    self.report(statement, (
                        f"boundary type {node.name}: field '{field_name}' "
                        "stores a callable default on every instance; use "
                        "field(default_factory=...) to build plain data "
                        "instead"))
        self.generic_visit(node)


class ProcessBoundaryPurityRule(VisitorRule):
    """R004: boundary dataclasses carry only picklable, JSON-stable fields."""

    rule_id = "R004"
    name = "process-boundary-purity"
    description = ("registered boundary dataclasses must have picklable, "
                   "canonical-JSON-stable fields")
    visitor_class = _BoundaryPurityVisitor

    def applies_to(self, module: ModuleContext) -> bool:
        return not module.is_test


# --------------------------------------------------------------------- #
# R005 kernel-phase-coverage
# --------------------------------------------------------------------- #

#: The round entry points the Chrome traces time.  ``advance`` is included
#: so a backend that bypasses ``_execute_round`` still gets caught.
_ROUND_METHODS: FrozenSet[str] = frozenset({"_execute_round", "advance"})


def _is_abstract(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (target.id if isinstance(target, ast.Name)
                else target.attr if isinstance(target, ast.Attribute) else "")
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _is_stub_body(body: List[ast.stmt]) -> bool:
    """Docstring-only / ``pass`` / ``raise`` bodies are declarations, not kernels."""
    for statement in body:
        if isinstance(statement, ast.Expr) and isinstance(statement.value,
                                                          ast.Constant):
            continue
        if isinstance(statement, (ast.Pass, ast.Raise)):
            continue
        return False
    return True


def _contains_kernel_phase(node: ast.FunctionDef) -> bool:
    for child in ast.walk(node):
        if not isinstance(child, (ast.With, ast.AsyncWith)):
            continue
        for item in child.items:
            expr = item.context_expr
            if not isinstance(expr, ast.Call):
                continue
            func = expr.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else "")
            if name == "kernel_phase":
                return True
    return False


class _KernelPhaseVisitor(RuleVisitor):
    """Every concrete round method must wrap its work in kernel_phase(...)."""

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if (node.name in _ROUND_METHODS and not _is_abstract(node)
                and not _is_stub_body(node.body)
                and not _contains_kernel_phase(node)):
            self.report(node, (
                f"round kernel {node.name}() runs outside a "
                "kernel_phase(...) block: wrap its hot section so the "
                "Chrome traces and hot-kernel tables stay honest (PR 7)"))
        self.generic_visit(node)


class KernelPhaseCoverageRule(VisitorRule):
    """R005: backend round kernels report into the kernel-phase clock."""

    rule_id = "R005"
    name = "kernel-phase-coverage"
    description = ("round/advance kernels in backend/ and "
                   "core/flow_imitation.py must run under kernel_phase(...)")
    visitor_class = _KernelPhaseVisitor

    def applies_to(self, module: ModuleContext) -> bool:
        if module.is_test or module.filename == "__init__.py":
            return False
        if module.in_directory("backend"):
            return True
        return (module.in_directory("core")
                and module.filename == "flow_imitation.py")


ALL_RULES: Tuple[VisitorRule, ...] = (
    NondeterministicRngRule(),
    WallClockInLogicRule(),
    UnorderedIterationRule(),
    ProcessBoundaryPurityRule(),
    KernelPhaseCoverageRule(),
)

RULES_BY_ID: Dict[str, VisitorRule] = {rule.rule_id: rule for rule in ALL_RULES}
