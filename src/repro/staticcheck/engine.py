"""AST analysis engine: modules, rules, suppressions, reports, exit codes.

The engine is deliberately dependency-free (stdlib ``ast`` + ``tokenize``
only) so ``repro check`` runs anywhere the library imports, including the CI
gate before the heavy scientific stack is exercised.

Pieces
------
:class:`ModuleContext`
    One parsed source file plus the path predicates rules scope by
    (``in_directory("backend")``, ``is_test``, ...) and its parsed
    ``# repro: allow[rule-id]`` suppression comments.
:class:`Rule` / :class:`RuleVisitor` / :class:`VisitorRule`
    The visitor framework: a rule declares an id/name/description, scopes
    itself with :meth:`Rule.applies_to` and emits :class:`Finding`\\ s — for
    the common case by subclassing :class:`RuleVisitor` and calling
    :meth:`RuleVisitor.report` from ``visit_*`` methods.
:func:`check_paths`
    Walk files, run every applicable rule, split findings into live and
    suppressed, and return a :class:`CheckReport` with the 0/1/2 exit-code
    contract (0 clean, 1 unsuppressed findings, 2 unreadable/unparseable
    input).

Suppressions
------------
A comment ``# repro: allow[R001] why it is fine`` disarms the named rule(s)
for findings on the same line, or — when the comment stands alone on its own
line — for findings on the line immediately below.  Multiple ids separate
with commas; ``*`` allows every rule.  The reason text is carried into the
report so reviewers can audit suppressions without chasing the diff.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from .findings import Finding

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
    "Suppression",
    "parse_suppressions",
    "ModuleContext",
    "Rule",
    "RuleVisitor",
    "VisitorRule",
    "CheckReport",
    "check_paths",
    "render_text",
    "render_json",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9*,\s_-]+)\]\s*(.*)")


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: str
    standalone: bool

    def covers(self, rule_id: str) -> bool:
        """Whether this comment disarms ``rule_id`` (``*`` matches all)."""
        return "*" in self.rule_ids or rule_id in self.rule_ids


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """Extract suppression comments, keyed by physical line number."""
    suppressions: Dict[int, Suppression] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions  # the AST parse reports the real error
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        rule_ids = tuple(part.strip() for part in match.group(1).split(",")
                         if part.strip())
        if not rule_ids:
            continue
        line = token.start[0]
        suppressions[line] = Suppression(
            line=line,
            rule_ids=rule_ids,
            reason=match.group(2).strip(),
            standalone=token.line.strip().startswith("#"),
        )
    return suppressions


class ModuleContext:
    """One parsed python file plus the predicates rules scope by."""

    def __init__(self, path: Path, display: str, source: str,
                 tree: ast.Module) -> None:
        self.path = path
        self.display = display
        self.source = source
        self.tree = tree
        self.parts: Tuple[str, ...] = PurePosixPath(
            display.replace("\\", "/")).parts
        self.suppressions = parse_suppressions(source)

    @property
    def filename(self) -> str:
        """The file's base name (``flow.py``)."""
        return self.parts[-1] if self.parts else ""

    def in_directory(self, name: str) -> bool:
        """Whether any *directory* component of the path equals ``name``."""
        return name in self.parts[:-1]

    @property
    def is_test(self) -> bool:
        """Test modules are exempt from most rules (they *probe* hazards)."""
        return (self.in_directory("tests")
                or self.filename.startswith("test_")
                or self.filename == "conftest.py")

    def suppression_for(self, line: int) -> Optional[Suppression]:
        """The suppression covering ``line``: same line, or standalone above."""
        same = self.suppressions.get(line)
        if same is not None:
            return same
        above = self.suppressions.get(line - 1)
        if above is not None and above.standalone:
            return above
        return None


class Rule(ABC):
    """One static check: an id, a scope predicate and a finding generator."""

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, module: ModuleContext) -> bool:
        """Whether this rule runs on ``module`` (path-based scoping)."""
        return True

    @abstractmethod
    def check(self, module: ModuleContext) -> List[Finding]:
        """Analyse one module and return its findings (suppressed included)."""


class RuleVisitor(ast.NodeVisitor):
    """Base visitor for rules: collect findings via :meth:`report`."""

    def __init__(self, rule: Rule, module: ModuleContext) -> None:
        self.rule = rule
        self.module = module
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        """Record a finding anchored at ``node``, honouring suppressions."""
        line = int(getattr(node, "lineno", 1))
        col = int(getattr(node, "col_offset", 0))
        suppression = self.module.suppression_for(line)
        suppressed = suppression is not None and suppression.covers(
            self.rule.rule_id)
        reason = suppression.reason if (suppressed and suppression) else ""
        self.findings.append(Finding(
            path=self.module.display, line=line, col=col,
            rule_id=self.rule.rule_id, message=message,
            suppressed=suppressed, suppression_reason=reason))


class VisitorRule(Rule):
    """A rule implemented by walking the AST with a :class:`RuleVisitor`."""

    visitor_class: Type[RuleVisitor] = RuleVisitor

    def check(self, module: ModuleContext) -> List[Finding]:
        visitor = self.visitor_class(self, module)
        visitor.visit(module.tree)
        return visitor.findings


@dataclass
class CheckReport:
    """The outcome of one :func:`check_paths` run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """The 0/1/2 contract: clean / findings / unreadable input."""
        if self.errors:
            return EXIT_ERROR
        if self.findings:
            return EXIT_FINDINGS
        return EXIT_CLEAN


def _display_path(path: Path) -> str:
    """The path as reported in findings: as given, posix separators."""
    return str(path).replace("\\", "/")


def iter_python_files(paths: Sequence[str],
                      errors: Optional[List[Tuple[str, str]]] = None,
                      ) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                parts = candidate.parts
                if any(part == "__pycache__" or part.startswith(".")
                       for part in parts):
                    continue
                seen.setdefault(candidate, None)
        elif path.is_file():
            seen.setdefault(path, None)
        elif errors is not None:
            errors.append((_display_path(path), "no such file or directory"))
    return sorted(seen)


def check_paths(paths: Sequence[str],
                rules: Optional[Iterable[Rule]] = None) -> CheckReport:
    """Run ``rules`` (default: all registered) over ``paths``."""
    if rules is None:
        from .rules import ALL_RULES

        active: List[Rule] = list(ALL_RULES)
    else:
        active = list(rules)
    report = CheckReport()
    for path in iter_python_files(paths, errors=report.errors):
        display = _display_path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.errors.append((display, f"unreadable: {exc}"))
            continue
        try:
            tree = ast.parse(source, filename=display)
        except SyntaxError as exc:
            report.errors.append(
                (display, f"syntax error: {exc.msg} (line {exc.lineno})"))
            continue
        report.files_checked += 1
        module = ModuleContext(path, display, source, tree)
        for rule in active:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                if finding.suppressed:
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)
    report.findings.sort()
    report.suppressed.sort()
    return report


def render_text(report: CheckReport, show_suppressed: bool = False) -> str:
    """The human-readable report (one ``path:line:col: RULE ...`` per line)."""
    lines: List[str] = []
    for display, message in report.errors:
        lines.append(f"{display}: error: {message}")
    for finding in report.findings:
        lines.append(finding.render())
    if show_suppressed:
        for finding in report.suppressed:
            lines.append(finding.render())
    summary = (f"{report.files_checked} file(s) checked: "
               f"{len(report.findings)} finding(s), "
               f"{len(report.suppressed)} suppressed")
    if report.errors:
        summary += f", {len(report.errors)} error(s)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: CheckReport) -> Dict[str, object]:
    """The machine-readable report shape (stable; version-tagged)."""
    return {
        "version": 1,
        "files_checked": report.files_checked,
        "exit_code": report.exit_code,
        "findings": [finding.as_dict() for finding in report.findings],
        "suppressed": [finding.as_dict() for finding in report.suppressed],
        "errors": [{"path": display, "message": message}
                   for display, message in report.errors],
    }
