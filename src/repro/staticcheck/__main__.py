"""``python -m repro.staticcheck [paths...]`` — delegate to the runner."""

import sys

from .runner import main

sys.exit(main())
