"""Finding datatypes for the static determinism-and-invariants checker.

A :class:`Finding` is one rule violation anchored to a ``path:line:col``
location.  Findings are plain frozen dataclasses ordered by location so
reports are stable regardless of rule execution order — the same property
the run store relies on for canonical-JSON config hashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    ``suppressed`` findings matched a ``# repro: allow[rule-id]`` comment on
    (or immediately above) the offending line; they are reported separately
    and never fail the check.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    suppressed: bool = False
    suppression_reason: str = ""

    def render(self) -> str:
        """The one-line ``path:line:col: RULE message`` text form."""
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"
        if self.suppressed:
            reason = f" ({self.suppression_reason})" if self.suppression_reason else ""
            text += f" [suppressed{reason}]"
        return text

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (the ``--format json`` shape)."""
        data: Dict[str, object] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col + 1,
            "message": self.message,
        }
        if self.suppressed:
            data["suppressed"] = True
            if self.suppression_reason:
                data["reason"] = self.suppression_reason
        return data
