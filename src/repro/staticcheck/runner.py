"""The ``repro check`` entry point: argument handling, output, exit code.

Kept separate from :mod:`repro.cli` so the checker is importable and
scriptable (``python -m repro.staticcheck src``) without the full CLI, and
separate from :mod:`.engine` so the engine stays pure (no printing).
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional, Sequence, TextIO

from .engine import EXIT_CLEAN, EXIT_ERROR, Rule, check_paths, render_json, render_text
from .rules import ALL_RULES, RULES_BY_ID

__all__ = ["run_check", "rule_table"]


def rule_table() -> str:
    """A plain-text table of the registered rules."""
    width = max(len(rule.name) for rule in ALL_RULES)
    lines = [f"{rule.rule_id}  {rule.name.ljust(width)}  {rule.description}"
             for rule in ALL_RULES]
    return "\n".join(lines)


def _select_rules(rule_ids: Optional[str],
                  stream: TextIO) -> Optional[List[Rule]]:
    """Resolve a ``--rules R001,R003`` selection (``None`` = every rule)."""
    if rule_ids is None:
        return list(ALL_RULES)
    selected: List[Rule] = []
    for raw in rule_ids.split(","):
        rule_id = raw.strip()
        if not rule_id:
            continue
        rule = RULES_BY_ID.get(rule_id)
        if rule is None:
            print(f"error: unknown rule {rule_id!r}; known: "
                  f"{', '.join(sorted(RULES_BY_ID))}", file=stream)
            return None
        selected.append(rule)
    if not selected:
        print("error: --rules selected no rules", file=stream)
        return None
    return selected


def run_check(paths: Sequence[str],
              output_format: str = "text",
              rule_ids: Optional[str] = None,
              list_rules: bool = False,
              show_suppressed: bool = False) -> int:
    """Run the checker the way the CLI does; return the process exit code."""
    if list_rules:
        print(rule_table())
        return EXIT_CLEAN
    rules = _select_rules(rule_ids, sys.stderr)
    if rules is None:
        return EXIT_ERROR
    report = check_paths(list(paths) or ["src"], rules=rules)
    if output_format == "json":
        print(json.dumps(render_json(report), indent=2, sort_keys=True))
    else:
        print(render_text(report, show_suppressed=show_suppressed))
    return report.exit_code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.staticcheck [paths...]`` — the bare-bones driver."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    return run_check(arguments or ["src"])


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI tests
    sys.exit(main())
