"""Static determinism-and-invariants analysis (``repro check``).

The dynamic test suite proves this library's replayability guarantees by
*running* the code — permutation tests for order-free counter draws,
worker-count invariance for parallel merges, kill-at-every-round
checkpoint/resume identity.  This package is their static counterpart: an
AST pass that makes the same invariants reviewable at diff time, before one
unseeded draw or stray clock read silently breaks replay.

Usage::

    repro check src                  # text report, exit 0/1/2
    repro check src --format json    # machine-readable findings
    repro check --list-rules         # the rule registry

Suppress an intentional finding with a trailing (or immediately preceding,
standalone) comment naming the rule and the reason::

    start = time.perf_counter()  # repro: allow[R002] cell timing envelope

See :mod:`repro.staticcheck.rules` for the rule registry (R001-R005) and
:mod:`repro.staticcheck.engine` for the visitor framework.
"""

from .engine import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    CheckReport,
    ModuleContext,
    Rule,
    RuleVisitor,
    Suppression,
    VisitorRule,
    check_paths,
    parse_suppressions,
    render_json,
    render_text,
)
from .findings import Finding
from .rules import ALL_RULES, BOUNDARY_TYPES, RULES_BY_ID
from .runner import rule_table, run_check

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
    "Finding",
    "CheckReport",
    "ModuleContext",
    "Rule",
    "RuleVisitor",
    "Suppression",
    "VisitorRule",
    "check_paths",
    "parse_suppressions",
    "render_json",
    "render_text",
    "ALL_RULES",
    "RULES_BY_ID",
    "BOUNDARY_TYPES",
    "rule_table",
    "run_check",
]
