"""Dynamic-workload subsystem: streaming task churn and time-varying topologies.

This package drives any balancer of the registry (the paper's Algorithms 1
and 2 as well as every baseline) through *time-varying* scenarios:

* :mod:`repro.dynamic.events` — the event model: task arrival/departure
  streams (Poisson, bursty, adversarial hotspot) and node join/leave churn,
  plus the named profile registry (:data:`EVENT_PROFILES`);
* :mod:`repro.dynamic.stream` — the streaming engine that interleaves events
  with balancing rounds and re-couples the continuous substrate whenever the
  graph or the total load changes;
* :mod:`repro.dynamic.metrics` — steady-state discrepancy, post-burst
  recovery time, drain rate and time-in-band summaries.
"""

from .events import (
    ARRIVAL,
    DEPARTURE,
    EVENT_KINDS,
    EVENT_PROFILES,
    JOIN,
    LEAVE,
    AdversarialHotspot,
    BurstyArrivals,
    CompositeGenerator,
    DynamicEvent,
    EventGenerator,
    NodeChurn,
    PoissonArrivals,
    PoissonDepartures,
    ScheduledEvents,
    StreamView,
    make_event_generator,
)
from .metrics import (
    burst_rounds,
    drain_rate,
    recovery_report,
    recovery_time,
    steady_state_discrepancy,
    summarize_dynamic,
    time_in_band,
)
from .stream import StreamingEngine, run_stream

__all__ = [
    "ARRIVAL",
    "DEPARTURE",
    "JOIN",
    "LEAVE",
    "EVENT_KINDS",
    "EVENT_PROFILES",
    "DynamicEvent",
    "StreamView",
    "EventGenerator",
    "ScheduledEvents",
    "PoissonArrivals",
    "PoissonDepartures",
    "BurstyArrivals",
    "AdversarialHotspot",
    "NodeChurn",
    "CompositeGenerator",
    "make_event_generator",
    "StreamingEngine",
    "run_stream",
    "steady_state_discrepancy",
    "recovery_time",
    "recovery_report",
    "burst_rounds",
    "drain_rate",
    "time_in_band",
    "summarize_dynamic",
]
