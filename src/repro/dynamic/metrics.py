"""Metrics for dynamic (streaming) balancing runs.

Static runs are judged by their final discrepancy against the paper's
bounds.  Dynamic runs never "finish" — the interesting quantities are about
behaviour over time:

* **steady-state discrepancy**: the discrepancy level the system settles at
  under a sustained stream (trailing-window mean);
* **recovery time**: how many rounds after a burst the discrepancy needs to
  re-enter a target band — the natural band is the Theorem-3-style static
  guarantee ``2 d w_max + 2`` of the *current* configuration;
* **drain rate**: how fast the discrepancy backlog created by a burst is
  worked off (discrepancy units per round during recovery);
* **time in band**: the fraction of rounds the system spends within the band.

All functions operate on the ``trace_max_min`` / ``event_timeline`` fields of
a :class:`~repro.simulation.results.RunResult` produced by
:func:`repro.dynamic.stream.run_stream`, so they can also be applied to
traces loaded from disk.  Trace index ``t`` is the state *after* round
``t - 1`` (index 0 is the initial state); an event applied at the start of
round ``t`` therefore first shows up at trace index ``t + 1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ExperimentError
from ..simulation.results import RunResult

__all__ = [
    "steady_state_discrepancy",
    "recovery_time",
    "burst_rounds",
    "recovery_report",
    "drain_rate",
    "time_in_band",
    "summarize_dynamic",
]


def steady_state_discrepancy(trace: Sequence[float], window: int = 50) -> float:
    """Mean discrepancy over the trailing ``window`` trace entries."""
    if not len(trace):
        raise ExperimentError("cannot summarise an empty trace")
    if window < 1:
        raise ExperimentError("window must be at least 1")
    tail = np.asarray(trace[-window:], dtype=float)
    return float(tail.mean())


def recovery_time(trace: Sequence[float], event_round: int, band: float) -> Optional[int]:
    """Rounds until the trace re-enters ``band`` after the given event round.

    ``event_round`` is the round at whose start the disturbance was applied;
    the search starts at trace index ``event_round + 1`` (the first state
    that can reflect it).  Returns the number of rounds from the event until
    the first in-band state, or ``None`` if the trace never recovers.
    """
    if event_round < 0:
        raise ExperimentError("event_round must be non-negative")
    for index in range(event_round + 1, len(trace)):
        if trace[index] <= band:
            return index - event_round
    return None


def burst_rounds(timeline: Sequence[Dict[str, object]],
                 tag: str = "burst") -> List[int]:
    """Rounds at which applied events with the given tag fired."""
    return [int(entry["round"]) for entry in timeline
            if entry.get("tag") == tag and entry.get("applied")]


def drain_rate(trace: Sequence[float], start: int, end: int) -> float:
    """Average discrepancy decrease per round between two trace indices."""
    if not 0 <= start < end < len(trace):
        raise ExperimentError(
            f"invalid trace window [{start}, {end}] for a trace of length {len(trace)}")
    return float((trace[start] - trace[end]) / (end - start))


def time_in_band(trace: Sequence[float], band: float, start: int = 0) -> float:
    """Fraction of trace entries (from ``start``) that lie within ``band``."""
    values = np.asarray(trace[start:], dtype=float)
    if values.size == 0:
        raise ExperimentError("cannot summarise an empty trace window")
    return float(np.mean(values <= band))


def recovery_report(result: RunResult, band: float,
                    tag: str = "burst") -> List[Dict[str, object]]:
    """Per-burst recovery summary for a dynamic run result.

    For every applied event tagged ``tag``, reports the peak discrepancy
    reached after the event, the recovery time back into ``band`` and the
    drain rate over the recovery window.  Recovery is measured against the
    next burst (or the end of the trace), so overlapping bursts do not blame
    each other.
    """
    if result.trace_max_min is None or result.event_timeline is None:
        raise ExperimentError(
            "recovery_report needs a dynamic result with traces and a timeline")
    trace = result.trace_max_min
    # Two burst events landing on the same round are one disturbance as far
    # as recovery is concerned; without the dedupe the duplicated round makes
    # ``horizon == event_round``, the peak window empty and the peak NaN.
    rounds = sorted(dict.fromkeys(burst_rounds(result.event_timeline, tag=tag)))
    reports: List[Dict[str, object]] = []
    for position, event_round in enumerate(rounds):
        horizon = rounds[position + 1] if position + 1 < len(rounds) else len(trace) - 1
        # The event fires at the start of round event_round, so the first
        # trace index that can reflect it is event_round + 1.
        window = trace[event_round + 1:min(horizon, len(trace) - 1) + 1]
        recovered = recovery_time(trace[:horizon + 1], event_round, band)
        entry: Dict[str, object] = {
            "round": event_round,
            "peak": float(max(window)) if len(window) else float("nan"),
            "recovery_time": recovered,
        }
        if recovered is not None and recovered > 1:
            # Drain from the first state that reflects the burst (index
            # event_round + 1) down to the first in-band state.
            entry["drain_rate"] = drain_rate(trace, event_round + 1,
                                             event_round + recovered)
        reports.append(entry)
    return reports


def summarize_dynamic(result: RunResult, band: float, window: int = 50,
                      tag: str = "burst", start: int = 0) -> Dict[str, object]:
    """One-row summary of a dynamic run (used by the CLI and the benchmarks).

    ``start`` discards the first ``start`` trace entries from the
    ``time_in_band`` fraction — the warm-up prefix of a stream (e.g. the
    initial point-load transient) is about the starting condition, not the
    steady-state behaviour, and counting it dilutes the fraction.
    """
    if result.trace_max_min is None:
        raise ExperimentError("summarize_dynamic needs a result with trace_max_min")
    if start < 0:
        raise ExperimentError("start (the warm-up prefix) must be non-negative")
    trace = result.trace_max_min
    reports = recovery_report(result, band, tag=tag) if result.event_timeline else []
    recoveries = [entry["recovery_time"] for entry in reports
                  if entry["recovery_time"] is not None]
    summary: Dict[str, object] = {
        "band": float(band),
        "steady_state": steady_state_discrepancy(trace, window=window),
        "time_in_band": time_in_band(trace, band, start=start),
        "final_max_min": result.final_max_min,
        "bursts": len(reports),
        "recovered_bursts": len(recoveries),
        "mean_recovery_time": float(np.mean(recoveries)) if recoveries else None,
    }
    return summary
