"""Streaming engine: drive any balancer through a time-varying scenario.

The engine interleaves :class:`~repro.dynamic.events.DynamicEvent` streams
with synchronous balancing rounds.  Each round it

1. polls the event generator with a read-only :class:`StreamView`;
2. applies the returned events to its own mutable system state (per-node
   token counts and a :class:`networkx.Graph` keyed by *stable labels* that
   survive node churn);
3. **re-couples** the balancer whenever an event changed the workload or the
   topology — the continuous substrate of the paper's framework is only
   meaningful for a fixed graph and total load, so the discrete balancer is
   rebuilt from the current loads through the same registry
   (:func:`repro.simulation.engine.make_balancer`) used by static runs;
4. advances the balancer one round and records the discrepancy, the total
   real load and the quadratic potential.

Re-coupling is the dynamic analogue of restarting the paper's Algorithm 1/2
on the current configuration: between events the coupling (and therefore the
Theorem 3/8 guarantees relative to the *current* configuration) is exactly
the static one.  Dummy tokens created by a flow-imitation balancer are
eliminated at each re-coupling boundary (the paper's final clean-up step), so
the tracked workload always equals ``initial + arrivals - departures``.

Node leaves that would disconnect the network (or shrink it below three
nodes) are rejected and recorded as such — the engine unconditionally
preserves connectivity, which every balancing process in this library
requires.

**Weighted streams.**  The initial workload may be a weighted
:class:`~repro.tasks.assignment.TaskAssignment` or columnar
:class:`~repro.tasks.weighted.WeightedLoads` (integer weights, algorithm1
only).  The engine then tracks per-node *weight buckets* instead of plain
token counts; arrivals and departures still act on unit-weight tokens (the
streamed work), while the heavy tasks travel only through balancing and
node leaves.  Re-coupling hands the balancer ``WeightedLoads`` buckets in
canonical (ascending-weight) order, so the object and columnar backends stay
trajectory-identical on weighted streams too — and the columnar fast path
keeps re-coupling O(n + buckets) with no per-task objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from ..backend import resolve_backend
from ..core.flow_imitation import FlowCoupledBalancer, TaskSelectionPolicy
from ..exceptions import ExperimentError
from ..obs.bus import MetricsBus
from ..obs.probe import RoundProbe
from ..network.graph import Network
from ..simulation.engine import ALL_ALGORITHMS, CONTINUOUS_KINDS, make_balancer, make_schedule
from ..simulation.results import RunResult
from ..tasks.assignment import TaskAssignment
from ..tasks.load import max_avg_discrepancy, max_min_discrepancy, quadratic_potential
from ..tasks.weighted import WeightedLoads
from .events import ARRIVAL, DEPARTURE, JOIN, LEAVE, DynamicEvent, EventGenerator, StreamView

__all__ = ["run_stream", "StreamingEngine"]


def _round_robin_counts(start: int, count: int, targets: int) -> List[int]:
    """How many of positions ``start .. start+count-1`` land on each residue mod ``targets``."""
    base, remainder = divmod(count, targets)
    counts = [base] * targets
    for k in range(remainder):
        counts[(start + k) % targets] += 1
    return counts


class StreamingEngine:
    """Mutable system state plus the event/round loop of a dynamic run.

    Most callers should use :func:`run_stream`; the class is public so tests
    and long-running drivers can step the system round by round and inspect
    intermediate state.
    """

    def __init__(
        self,
        algorithm: str,
        network: Network,
        initial_load: Union[Sequence[float], TaskAssignment, WeightedLoads],
        generator: EventGenerator,
        continuous_kind: str = "fos",
        seed: Optional[int] = None,
        selection_policy: str = TaskSelectionPolicy.FIFO,
        backend: str = "auto",
        rng_mode: str = "sequential",
        bus: Optional[MetricsBus] = None,
    ) -> None:
        if algorithm not in ALL_ALGORITHMS:
            raise ExperimentError(
                f"unknown algorithm {algorithm!r}; valid algorithms: {ALL_ALGORITHMS}")
        if continuous_kind not in CONTINUOUS_KINDS:
            raise ExperimentError(
                f"unknown continuous kind {continuous_kind!r}; valid: {CONTINUOUS_KINDS}")
        network.require_connected()

        if isinstance(initial_load, TaskAssignment):
            initial_load = WeightedLoads.from_assignment(initial_load)
        weighted: Optional[WeightedLoads] = None
        if isinstance(initial_load, WeightedLoads):
            if initial_load.num_nodes != network.num_nodes:
                raise ExperimentError(
                    f"initial load must cover {network.num_nodes} nodes, "
                    f"got {initial_load.num_nodes}")
            if initial_load.max_weight() > 1:
                weighted = initial_load
                if algorithm != "algorithm1":
                    raise ExperimentError(
                        "weighted dynamic streams require algorithm1 (the only "
                        "algorithm defined for weighted tasks)")
            loads = initial_load.load_vector().astype(float)
        else:
            loads = np.asarray(list(initial_load), dtype=float)
            if loads.shape != (network.num_nodes,):
                raise ExperimentError(
                    f"initial load must have length {network.num_nodes}, got {loads.shape}")
            if np.any(loads < 0) or not np.allclose(loads, np.round(loads)):
                raise ExperimentError("dynamic runs require non-negative integer token loads")

        self._algorithm = algorithm
        self._continuous_kind = continuous_kind
        self._generator = generator
        self._seed = seed
        self._selection_policy = selection_policy
        self._rng_mode = rng_mode
        self._requested_backend = backend
        self._weighted = weighted is not None
        # Unit-token streams resolve "auto" to the vectorised count-vector
        # backend; weighted streams to the columnar weight-bucket backend.
        # Either way the backends are trajectory-identical.
        choice = resolve_backend(backend, weighted=weighted, algorithm=algorithm,
                                 rng_mode=rng_mode)
        self._backend = choice.name
        self._backend_reason = choice.reason
        self._base_name = network.name
        self._bus = bus
        self._probe = None if bus is None else RoundProbe(
            bus, source="stream", context={
                "algorithm": algorithm, "backend": choice.name,
                "rng_mode": rng_mode})

        # Stable-label state: the graph and token counts the events act on.
        # ``network`` already uses contiguous labels 0..n-1, which become the
        # initial stable labels; joins get fresh labels beyond the maximum.
        self._graph: nx.Graph = nx.Graph()
        self._graph.add_nodes_from(range(network.num_nodes))
        self._graph.add_edges_from(network.edges)
        self._tokens: Dict[int, int] = {
            node: int(round(loads[node])) for node in network.nodes}
        # Weighted streams additionally track {weight: count} buckets per
        # label; ``_tokens`` then holds the total real *weight* per label.
        self._buckets: Dict[int, Dict[int, int]] = {}
        if self._weighted:
            for node in network.nodes:
                self._buckets[node] = dict(weighted.node_buckets(node))
        self._speeds: Dict[int, float] = {
            node: float(network.speeds[node]) for node in network.nodes}
        self._next_label = network.num_nodes

        self._round = 0
        self._recouplings = 0
        self._fast_recouplings = 0
        self._arrived = 0
        self._departed = 0
        self._rejected_events = 0
        self._clamped_tokens = 0
        # Failure-mode counters accumulated across re-couplings (each
        # coupling discards the previous balancer together with its own
        # counters, so the run-level totals live here).
        self._dummy_tokens = 0
        self._used_infinite_source = False
        self._went_negative = False
        self._timeline: List[Dict[str, object]] = []
        # Checkpoint support: snapshot of the stable-label state at the last
        # coupling boundary plus the number of plain (event-free) rounds
        # advanced since — everything after the boundary is deterministic
        # replay (see state_dict / restore).
        self._boundary: Dict[str, object] = {}
        self._rounds_since_boundary = 0

        self._network: Network = None  # type: ignore[assignment]
        self._balancer = None
        self._couple()

    # ------------------------------------------------------------------ #
    # read-only state
    # ------------------------------------------------------------------ #

    @property
    def round_index(self) -> int:
        """The index of the next round to be executed."""
        return self._round

    @property
    def network(self) -> Network:
        """The currently coupled network."""
        return self._network

    @property
    def balancer(self):
        """The currently coupled discrete balancer."""
        return self._balancer

    @property
    def recouplings(self) -> int:
        """How many times events forced the balancer to be re-coupled."""
        return self._recouplings

    @property
    def fast_recouplings(self) -> int:
        """How many re-couplings took the O(n) in-place path (topology fixed)."""
        return self._fast_recouplings

    @property
    def backend(self) -> str:
        """The resolved load-state backend driving this stream."""
        return self._backend

    @property
    def timeline(self) -> List[Dict[str, object]]:
        """Chronological record of all events seen so far (copy)."""
        return [dict(entry) for entry in self._timeline]

    @property
    def labels(self) -> Tuple[int, ...]:
        """Sorted stable labels of the nodes currently in the system."""
        return tuple(sorted(self._graph.nodes()))

    @property
    def weighted(self) -> bool:
        """Whether this stream tracks weighted tasks (weight buckets)."""
        return self._weighted

    def tokens_by_label(self) -> Dict[int, int]:
        """Current real (non-dummy) load per stable label (copy).

        On weighted streams the value is the node's total real task weight.
        """
        return dict(self._tokens)

    def buckets_by_label(self) -> Dict[int, Dict[int, int]]:
        """Current real ``{weight: count}`` buckets per label (weighted streams)."""
        return {label: dict(bucket) for label, bucket in self._buckets.items()}

    def total_real_load(self) -> int:
        """Total real load (token count, or total weight on weighted streams)."""
        return int(sum(self._tokens.values()))

    def view(self) -> StreamView:
        """The read-only snapshot handed to the event generator this round."""
        return StreamView(round_index=self._round, labels=self.labels,
                          loads=dict(self._tokens), network=self._network)

    # ------------------------------------------------------------------ #
    # metrics of the current state
    # ------------------------------------------------------------------ #

    def current_discrepancy(self) -> float:
        """Max-min discrepancy of the physical loads (dummies included)."""
        return max_min_discrepancy(self._balancer.loads(), self._network)

    def current_potential(self) -> float:
        """Quadratic potential of the physical loads (dummies included)."""
        return quadratic_potential(self._balancer.loads(), self._network)

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #

    def config_dict(self) -> Dict[str, object]:
        """The immutable run configuration a checkpoint must match to resume.

        Hashed into the checkpoint's ``config_hash`` (via the run store's
        canonical-JSON machinery) so a checkpoint can only be restored onto
        the configuration that produced it.
        """
        return {
            "algorithm": self._algorithm,
            "continuous_kind": self._continuous_kind,
            "seed": self._seed,
            "selection_policy": self._selection_policy,
            "rng_mode": self._rng_mode,
            "backend": self._requested_backend,
            "resolved_backend": self._backend,
            "weighted": self._weighted,
            "base_name": self._base_name,
        }

    def state_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot of the full mutable stream state.

        The snapshot holds the stable-label system (graph, speeds, tokens),
        every run-level counter, the event generator's randomness position
        and the last coupling **boundary** (workload + rounds advanced since).
        :meth:`restore` re-couples at the boundary and deterministically
        replays the post-boundary rounds, so the pair round-trips the engine
        bit-identically at *any* round — no balancer internals need to be
        serialised.
        """
        return {
            "round": self._round,
            "recouplings": self._recouplings,
            "fast_recouplings": self._fast_recouplings,
            "arrived": self._arrived,
            "departed": self._departed,
            "rejected_events": self._rejected_events,
            "clamped_tokens": self._clamped_tokens,
            "dummy_tokens": self._dummy_tokens,
            "used_infinite_source": self._used_infinite_source,
            "went_negative": self._went_negative,
            "next_label": self._next_label,
            "backend_reason": self._backend_reason,
            "nodes": [int(node) for node in sorted(self._graph.nodes())],
            "edges": sorted([int(u), int(v)] if u <= v else [int(v), int(u)]
                            for u, v in self._graph.edges()),
            "speeds": {int(label): float(speed)
                       for label, speed in self._speeds.items()},
            "tokens": dict(self._tokens),
            "buckets": self.buckets_by_label() if self._weighted else None,
            "boundary": {**{key: value for key, value in self._boundary.items()
                            if key != "buckets"},
                         "buckets": (self._boundary["buckets"]
                                     if self._weighted else None),
                         "rounds_since": self._rounds_since_boundary},
            "timeline": self.timeline,
            "generator": self._generator.state_dict(),
        }

    @staticmethod
    def _int_keys(mapping, cast=int) -> Dict[int, object]:
        """Undo JSON's string-keying of an integer-keyed mapping."""
        return {int(key): cast(value) for key, value in mapping.items()}

    @classmethod
    def restore(cls, config: Dict[str, object], state: Dict[str, object],
                generator: EventGenerator,
                bus: Optional[MetricsBus] = None) -> "StreamingEngine":
        """Rebuild an engine from :meth:`config_dict` + :meth:`state_dict`.

        ``generator`` must be a *freshly constructed* event generator of the
        same shape as the checkpointed run's (its randomness position is
        restored from the snapshot).  The engine re-couples the balancer at
        the checkpoint's last coupling boundary and replays the event-free
        rounds since, which reproduces the balancer, schedule and substrate
        state bit-identically — the restored engine continues exactly as the
        uninterrupted run would have.  A post-replay integrity check
        verifies the replayed loads match the snapshotted ones and raises
        :class:`~repro.exceptions.CheckpointError` otherwise.
        """
        from ..exceptions import CheckpointError

        engine = cls.__new__(cls)
        engine._algorithm = config["algorithm"]
        engine._continuous_kind = config["continuous_kind"]
        engine._generator = generator
        engine._seed = config["seed"]
        engine._selection_policy = config["selection_policy"]
        engine._rng_mode = config["rng_mode"]
        engine._requested_backend = config["backend"]
        engine._backend = config["resolved_backend"]
        engine._backend_reason = state.get(
            "backend_reason", "restored from checkpoint")
        engine._weighted = bool(config["weighted"])
        engine._base_name = config["base_name"]
        engine._bus = None
        engine._probe = None

        boundary = state["boundary"]
        engine._graph = nx.Graph()
        engine._graph.add_nodes_from(int(node) for node in state["nodes"])
        engine._graph.add_edges_from((int(u), int(v))
                                     for u, v in state["edges"])
        engine._speeds = cls._int_keys(state["speeds"], float)
        engine._tokens = cls._int_keys(boundary["tokens"])
        engine._buckets = {}
        if engine._weighted:
            engine._buckets = {
                int(label): cls._int_keys(bucket)
                for label, bucket in boundary["buckets"].items()}
        engine._next_label = int(state["next_label"])

        engine._round = int(state["round"])
        engine._recouplings = int(state["recouplings"])
        engine._fast_recouplings = int(state["fast_recouplings"])
        engine._arrived = int(state["arrived"])
        engine._departed = int(state["departed"])
        engine._rejected_events = int(state["rejected_events"])
        engine._clamped_tokens = int(boundary["clamped_tokens"])
        engine._dummy_tokens = int(state["dummy_tokens"])
        engine._used_infinite_source = bool(state["used_infinite_source"])
        engine._went_negative = bool(state["went_negative"])
        engine._timeline = [dict(entry) for entry in state["timeline"]]

        engine._network = None
        engine._balancer = None
        engine._couple()
        for _ in range(int(boundary["rounds_since"])):
            engine._balancer.advance()
            engine._sync_tokens_from_balancer()
            engine._rounds_since_boundary += 1

        expected_tokens = cls._int_keys(state["tokens"])
        if engine._tokens != expected_tokens:
            raise CheckpointError(
                "checkpoint integrity failure: replaying "
                f"{boundary['rounds_since']} round(s) from the coupling "
                "boundary did not reproduce the snapshotted loads")
        if engine._clamped_tokens != int(state["clamped_tokens"]):
            raise CheckpointError(
                "checkpoint integrity failure: replayed clamped-token "
                f"count {engine._clamped_tokens} != snapshotted "
                f"{state['clamped_tokens']}")
        generator.load_state_dict(state["generator"])

        if bus is not None:
            engine._bus = bus
            engine._probe = RoundProbe(
                bus, source="stream", context={
                    "algorithm": engine._algorithm, "backend": engine._backend,
                    "rng_mode": engine._rng_mode})
            engine._balancer.attach_probe(engine._probe)
        return engine

    # ------------------------------------------------------------------ #
    # coupling
    # ------------------------------------------------------------------ #

    def _couple_seed(self) -> Optional[int]:
        return None if self._seed is None else self._seed + 7919 * self._recouplings

    def _current_workload(self) -> Union[np.ndarray, WeightedLoads]:
        """The stable-label state as the balancer workload (canonical order)."""
        labels = self.labels
        if self._weighted:
            return WeightedLoads.from_buckets([self._buckets[label] for label in labels])
        return np.array([self._tokens[label] for label in labels], dtype=np.int64)

    def _couple(self) -> None:
        """(Re)build the network and balancer from the stable-label state."""
        self._harvest_balancer_counters()
        labels = self.labels
        speeds = [self._speeds[label] for label in labels]
        # Network relabels the (sorted, stable) labels to 0..n-1 itself and
        # keeps the originals in ``node_labels`` — the index -> stable-label
        # mapping the StreamView contract promises to generators.
        network = Network(self._graph.copy(), speeds=speeds,
                          name=f"{self._base_name}+dynamic")
        workload = self._current_workload()

        couple_seed = self._couple_seed()
        schedule = make_schedule(self._continuous_kind, network, seed=couple_seed)
        self._network = network
        self._balancer = make_balancer(
            self._algorithm, network,
            initial_load=None if self._weighted else workload,
            weighted_load=workload if self._weighted else None,
            continuous_kind=self._continuous_kind, schedule=schedule,
            seed=couple_seed, selection_policy=self._selection_policy,
            backend=self._backend, rng_mode=self._rng_mode,
        )
        if self._probe is not None:
            self._balancer.attach_probe(self._probe)
        self._mark_boundary()

    def _mark_boundary(self) -> None:
        """Snapshot the stable-label state at a coupling boundary.

        Between boundaries the system evolves by plain ``advance()`` rounds —
        a deterministic function of the boundary workload, the network and
        the per-coupling seed — so a checkpoint only needs the boundary
        state plus the round count since it; restoration re-couples at the
        boundary and replays (:meth:`restore`).  ``clamped_tokens`` is
        snapshotted too because the replayed syncs re-accumulate any
        post-boundary clamping.
        """
        self._boundary = {
            "tokens": dict(self._tokens),
            "buckets": {label: dict(bucket)
                        for label, bucket in self._buckets.items()},
            "clamped_tokens": self._clamped_tokens,
        }
        self._rounds_since_boundary = 0

    def _recouple_loads(self) -> None:
        """O(n) re-coupling: only loads changed, so rewind the balancer in place.

        The network, the matching schedule object and the substrate's cached
        spectral data (diffusion weights, transfer rates, the SOS ``beta``)
        are all reused; with the same per-coupling seed the resulting system
        is bit-identical to a full :meth:`_couple` rebuild, which keeps
        dynamic trajectories independent of how a re-coupling was performed.
        On the array backend this removes every O(W) term from the event
        path — the unlock for million-token streams; weighted streams hand
        the balancer columnar weight buckets, so the fast path stays
        O(n + buckets) there too.
        """
        self._harvest_balancer_counters()
        self._balancer.recouple(self._current_workload(), seed=self._couple_seed())
        self._fast_recouplings += 1
        self._mark_boundary()

    def _harvest_balancer_counters(self) -> None:
        """Fold the outgoing balancer's failure-mode counters into the run totals."""
        if self._balancer is None:
            return
        if isinstance(self._balancer, FlowCoupledBalancer):
            self._dummy_tokens += self._balancer.dummy_tokens_created
            self._used_infinite_source |= self._balancer.used_infinite_source
        else:
            self._went_negative |= bool(getattr(self._balancer, "went_negative", False))

    def _sync_tokens_from_balancer(self) -> None:
        """Pull the post-round loads back into the stable-label token counts.

        Flow-imitation balancers report their *real* tasks (dummy tokens are
        dropped at the next re-coupling boundary, mirroring the paper's final
        dummy-elimination step).  Baselines that can drive a node negative
        are clamped at zero here; the clamped amount is recorded so the run
        result can report the conservation violation instead of hiding it.
        Weighted streams pull back the whole per-node weight multiset.
        """
        if self._weighted:
            buckets = self._balancer.real_weight_buckets()
            for index, label in enumerate(self.labels):
                bucket = buckets[index]
                self._buckets[label] = bucket
                self._tokens[label] = sum(w * c for w, c in bucket.items())
            return
        if isinstance(self._balancer, FlowCoupledBalancer):
            loads = self._balancer.loads(include_dummies=False)
        else:
            loads = self._balancer.loads()
        for index, label in enumerate(self.labels):
            count = int(round(float(loads[index])))
            if count < 0:
                self._clamped_tokens += -count
                count = 0
            self._tokens[label] = count

    # ------------------------------------------------------------------ #
    # events
    # ------------------------------------------------------------------ #

    def _apply_event(self, event: DynamicEvent) -> Tuple[bool, Dict[str, object]]:
        """Apply one event to the stable-label state; return (changed, record)."""
        record = event.as_dict()
        record["round"] = self._round
        record["applied"] = True

        if event.kind == ARRIVAL:
            if event.node not in self._tokens:
                record["applied"] = False
            else:
                self._tokens[event.node] += event.tokens
                if self._weighted and event.tokens:
                    bucket = self._buckets[event.node]
                    bucket[1] = bucket.get(1, 0) + event.tokens
                self._arrived += event.tokens
            return record["applied"] and event.tokens > 0, record

        if event.kind == DEPARTURE:
            # Streamed work arrives and departs as unit tokens; on weighted
            # streams the heavy tasks are pinned (they only move through
            # balancing and node leaves), so only unit tokens can depart.
            if self._weighted:
                available = self._buckets.get(event.node, {}).get(1, 0)
            else:
                available = self._tokens.get(event.node, 0)
            realised = min(event.tokens, available)
            record["tokens"] = realised
            if event.node not in self._tokens:
                record["applied"] = False
            else:
                self._tokens[event.node] -= realised
                if self._weighted and realised:
                    bucket = self._buckets[event.node]
                    bucket[1] = available - realised
                    if not bucket[1]:
                        del bucket[1]
                self._departed += realised
            return realised > 0, record

        if event.kind == JOIN:
            attach = [label for label in event.attach_to if label in self._tokens]
            if not attach:
                record["applied"] = False
                return False, record
            label = self._next_label
            self._next_label += 1
            self._graph.add_node(label)
            self._graph.add_edges_from((label, target) for target in attach)
            self._tokens[label] = event.tokens
            if self._weighted:
                self._buckets[label] = {1: event.tokens} if event.tokens else {}
            self._speeds[label] = 1.0
            self._arrived += event.tokens
            record["node"] = label
            record["attach_to"] = attach
            return True, record

        # LEAVE: reject anything that would disconnect the network or shrink
        # it below three nodes; surviving tasks migrate to the neighbours in
        # round-robin order (canonical ascending-weight order on weighted
        # streams), computed arithmetically so huge loads stay O(buckets).
        if (event.node not in self._tokens
                or self._graph.number_of_nodes() <= 3):
            record["applied"] = False
            return False, record
        remaining = self._graph.copy()
        remaining.remove_node(event.node)
        if not nx.is_connected(remaining):
            record["applied"] = False
            return False, record
        neighbors = sorted(self._graph.neighbors(event.node))
        orphaned = self._tokens.pop(event.node)
        self._speeds.pop(event.node)
        self._graph = remaining
        if self._weighted:
            position = 0
            for weight, count in sorted(self._buckets.pop(event.node).items()):
                shares = _round_robin_counts(position, count, len(neighbors))
                for index, share in enumerate(shares):
                    if share:
                        target = self._buckets[neighbors[index]]
                        target[weight] = target.get(weight, 0) + share
                        self._tokens[neighbors[index]] += share * weight
                position += count
        else:
            for index, share in enumerate(
                    _round_robin_counts(0, orphaned, len(neighbors))):
                self._tokens[neighbors[index]] += share
        record["tokens"] = orphaned
        return True, record

    # ------------------------------------------------------------------ #
    # the round loop
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Apply this round's events (re-coupling if needed) and advance."""
        events = self._generator.events(self.view())
        changed = False
        topology_changed = False
        applied_events = 0
        rejected_events = 0
        for event in events:
            event_changed, record = self._apply_event(event)
            changed = changed or event_changed
            topology_changed = topology_changed or (
                event_changed and event.kind in (JOIN, LEAVE))
            if not record["applied"]:
                self._rejected_events += 1
                rejected_events += 1
            else:
                applied_events += 1
            self._timeline.append(record)
        recouple_mode = None
        if changed:
            self._recouplings += 1
            if topology_changed:
                self._couple()
                recouple_mode = "full"
            else:
                self._recouple_loads()
                recouple_mode = "fast"
        bus = self._bus
        if bus is not None and bus.active and recouple_mode is not None:
            bus.emit("recouple", "stream", round_index=self._round,
                     mode=recouple_mode, n=self._network.num_nodes,
                     total_load=self.total_real_load())
        self._balancer.advance()
        self._sync_tokens_from_balancer()
        if bus is not None and bus.active:
            bus.emit("stream_round", "stream", round_index=self._round,
                     max_min=self.current_discrepancy(),
                     total_load=self.total_real_load(),
                     events_applied=applied_events,
                     events_rejected=rejected_events,
                     recoupled=recouple_mode,
                     recouplings=self._recouplings)
        self._round += 1
        self._rounds_since_boundary += 1

    def result(self,
               trace_max_min: Optional[List[float]] = None,
               trace_total_weight: Optional[List[float]] = None) -> RunResult:
        """Summarise the run so far as a :class:`RunResult`."""
        network = self._network
        loads = self._balancer.loads()
        total_real = float(self.total_real_load())
        w_max = (float(self._balancer.w_max)
                 if isinstance(self._balancer, FlowCoupledBalancer) else 1.0)
        result = RunResult(
            algorithm=self._algorithm,
            continuous_kind=self._continuous_kind,
            network_name=network.name,
            num_nodes=network.num_nodes,
            max_degree=network.max_degree,
            rounds=self._round,
            total_weight=total_real,
            max_task_weight=w_max,
            final_max_min=max_min_discrepancy(loads, network),
            final_max_avg=max_avg_discrepancy(loads, network, total_weight=total_real),
            trace_max_min=trace_max_min,
            trace_total_weight=trace_total_weight,
            event_timeline=self.timeline,
        )
        if isinstance(self._balancer, FlowCoupledBalancer):
            real_loads = self._balancer.loads(include_dummies=False)
            result.final_max_min_no_dummies = max_min_discrepancy(real_loads, network)
            result.final_max_avg_no_dummies = max_avg_discrepancy(
                real_loads, network, total_weight=total_real)
            result.dummy_tokens = self._dummy_tokens + self._balancer.dummy_tokens_created
            result.used_infinite_source = (self._used_infinite_source
                                           or self._balancer.used_infinite_source)
        else:
            result.went_negative = (self._went_negative
                                    or bool(getattr(self._balancer, "went_negative", False)))
        result.extra.update({
            "arrivals": float(self._arrived),
            "departures": float(self._departed),
            "recouplings": float(self._recouplings),
            "fast_recouplings": float(self._fast_recouplings),
            "rejected_events": float(self._rejected_events),
            "clamped_tokens": float(self._clamped_tokens),
            "backend": self._backend,
            "backend_reason": self._backend_reason,
        })
        if self._probe is not None:
            result.extra["kernel_seconds"] = self._probe.kernel_seconds
        return result


def run_stream(
    algorithm: str,
    network: Network,
    initial_load: Union[Sequence[float], TaskAssignment, WeightedLoads],
    generator: EventGenerator,
    rounds: int,
    continuous_kind: str = "fos",
    seed: Optional[int] = None,
    selection_policy: str = TaskSelectionPolicy.FIFO,
    backend: str = "auto",
    rng_mode: str = "sequential",
    bus: Optional[MetricsBus] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_path=None,
    checkpoint_meta: Optional[Dict[str, object]] = None,
) -> RunResult:
    """Run ``algorithm`` for ``rounds`` rounds under a stream of events.

    ``initial_load`` is an integer token vector, or — for weighted streams
    (``algorithm1`` only) — a :class:`TaskAssignment` or columnar
    :class:`~repro.tasks.weighted.WeightedLoads` with integer task weights.
    Returns a :class:`~repro.simulation.results.RunResult` whose
    ``trace_max_min`` / ``trace_total_weight`` traces (index 0 is the initial
    state) and ``event_timeline`` describe the whole dynamic run; the
    ``extra`` dictionary carries the arrival/departure/re-coupling counters
    and the resolved load-state backend.  Apply :mod:`repro.dynamic.metrics`
    to the result to obtain steady-state discrepancy, per-burst recovery
    times and drain rates.

    With ``checkpoint_every=N`` the engine state (plus the traces so far) is
    snapshotted to ``checkpoint_path`` every ``N`` rounds and after the final
    round, atomically; :func:`repro.checkpoint.resume_stream` continues an
    interrupted run from the latest snapshot **bit-identically** to the
    uninterrupted run.  ``checkpoint_meta`` is stored verbatim in each
    snapshot (the CLI puts the originating
    :class:`~repro.simulation.scenario.DynamicScenario` there so ``repro
    resume`` can rebuild the event generator without extra arguments).
    """
    if rounds < 0:
        raise ExperimentError("rounds must be non-negative")
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ExperimentError("checkpoint_every must be at least 1")
    if checkpoint_every is not None and checkpoint_path is None:
        raise ExperimentError("checkpoint_every requires a checkpoint_path")
    engine = StreamingEngine(algorithm, network, initial_load, generator,
                             continuous_kind=continuous_kind, seed=seed,
                             selection_policy=selection_policy, backend=backend,
                             rng_mode=rng_mode, bus=bus)
    trace = [engine.current_discrepancy()]
    totals = [float(engine.total_real_load())]
    for _ in range(rounds):
        engine.step()
        trace.append(engine.current_discrepancy())
        totals.append(float(engine.total_real_load()))
        if checkpoint_every is not None and (
                engine.round_index % checkpoint_every == 0
                or engine.round_index == rounds):
            from ..checkpoint import checkpoint_engine, write_checkpoint

            write_checkpoint(
                checkpoint_engine(engine, total_rounds=rounds, trace=trace,
                                  totals=totals, meta=checkpoint_meta),
                checkpoint_path)
    return engine.result(trace_max_min=trace, trace_total_weight=totals)
