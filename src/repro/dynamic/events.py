"""Event model for dynamic (time-varying) workloads.

The static experiments of the paper fix a task multiset and a network and run
a balancer until the continuous substrate balances.  Real load balancers face
*streams*: tasks arrive and depart while balancing is underway, and nodes join
or leave the network.  This module provides the vocabulary for such runs:

* :class:`DynamicEvent` — one atomic change to the system, scheduled for the
  start of a round: a task **arrival**, a task **departure**, a node **join**
  or a node **leave**;
* :class:`EventGenerator` — a deterministic (seeded) source of events, polled
  once per round by the streaming engine with a read-only
  :class:`StreamView` of the current system state;
* concrete generators covering the classic dynamic regimes: Poisson streams,
  periodic bursts, an adversarial hotspot that always targets the most loaded
  node, and node churn;
* a registry of named **event profiles** (:data:`EVENT_PROFILES`) so the CLI,
  scenarios and benchmarks can request "burst" or "churn" by name.

Nodes are identified by *stable labels*: the label a node got when it entered
the system, which never changes even when other nodes leave.  The streaming
engine (:mod:`repro.dynamic.stream`) owns the mapping between stable labels
and the contiguous ``0..n-1`` indices of the currently coupled
:class:`~repro.network.graph.Network`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ExperimentError
from ..network.graph import Network

__all__ = [
    "ARRIVAL",
    "DEPARTURE",
    "JOIN",
    "LEAVE",
    "EVENT_KINDS",
    "DynamicEvent",
    "StreamView",
    "EventGenerator",
    "ScheduledEvents",
    "PoissonArrivals",
    "PoissonDepartures",
    "BurstyArrivals",
    "AdversarialHotspot",
    "NodeChurn",
    "CompositeGenerator",
    "EVENT_PROFILES",
    "make_event_generator",
]

ARRIVAL = "arrival"
DEPARTURE = "departure"
JOIN = "join"
LEAVE = "leave"

EVENT_KINDS = (ARRIVAL, DEPARTURE, JOIN, LEAVE)


@dataclass(frozen=True)
class DynamicEvent:
    """One atomic change to the system, applied at the start of a round.

    Attributes
    ----------
    kind:
        One of :data:`EVENT_KINDS`.
    node:
        The stable label of the affected node.  Required for arrivals,
        departures and leaves; ignored for joins (the engine assigns the
        label of the new node).
    tokens:
        Number of unit tokens added (arrival / join) or requested to be
        removed (departure).  Departures remove at most the tokens actually
        present; the engine records the realised amount in the timeline.
    attach_to:
        For joins: the stable labels of the existing nodes the new node
        connects to (at least one, so the network stays connected).
    tag:
        Free-form marker set by the generator ("burst", "hotspot", ...) so
        metrics can locate specific events in the timeline.
    """

    kind: str
    node: Optional[int] = None
    tokens: int = 0
    attach_to: Tuple[int, ...] = ()
    tag: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ExperimentError(
                f"unknown event kind {self.kind!r}; valid kinds: {EVENT_KINDS}")
        if self.tokens < 0:
            raise ExperimentError("event token counts must be non-negative")
        if self.kind in (ARRIVAL, DEPARTURE, LEAVE) and self.node is None:
            raise ExperimentError(f"{self.kind} events require a node label")
        if self.kind == JOIN and not self.attach_to:
            raise ExperimentError("join events require at least one attachment target")

    def as_dict(self) -> Dict[str, object]:
        """Return a JSON-friendly view (used for result timelines)."""
        return {
            "kind": self.kind,
            "node": self.node,
            "tokens": self.tokens,
            "attach_to": list(self.attach_to),
            "tag": self.tag,
        }


@dataclass(frozen=True)
class StreamView:
    """Read-only snapshot of the streaming system handed to generators.

    Attributes
    ----------
    round_index:
        The round about to be executed.
    labels:
        Sorted stable labels of the nodes currently in the system.
    loads:
        Current integer load per stable label (real tasks, excluding any
        dummy tokens of the flow-imitation algorithms).
    network:
        The currently coupled network (contiguous ``0..n-1`` indices;
        ``network.node_labels`` maps an index back to its stable label).
    """

    round_index: int
    labels: Tuple[int, ...]
    loads: Mapping[int, int]
    network: Network

    @property
    def total_load(self) -> int:
        """Total number of real tokens currently in the system."""
        return int(sum(self.loads.values()))

    def max_load_label(self) -> int:
        """Stable label of the most loaded node (smallest label on ties)."""
        return max(self.labels, key=lambda label: (self.loads.get(label, 0), -label))


class EventGenerator(ABC):
    """Deterministic source of events, polled once per round.

    Generators own their randomness: a generator constructed with the same
    seed yields the same event sequence when shown the same sequence of
    views, which is what makes dynamic runs reproducible end-to-end.

    Generators are also **checkpointable**: :meth:`state_dict` captures the
    internal randomness position (the numpy bit-generator state) as a
    JSON-friendly dictionary, and :meth:`load_state_dict` restores it onto a
    freshly constructed generator of the same shape, after which the two
    yield identical event streams.  The default implementation handles the
    single-``_rng`` generators above; containers override both methods.
    """

    @abstractmethod
    def events(self, view: StreamView) -> List[DynamicEvent]:
        """Return the events to apply at the start of round ``view.round_index``."""

    def state_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot of this generator's mutable state."""
        state: Dict[str, object] = {"type": type(self).__name__}
        rng = getattr(self, "_rng", None)
        if isinstance(rng, np.random.Generator):
            state["rng"] = rng.bit_generator.state
        return state

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot onto this generator."""
        expected = type(self).__name__
        found = state.get("type", expected)
        if found != expected:
            raise ExperimentError(
                f"checkpointed generator state is for {found!r}, "
                f"cannot restore onto {expected!r}")
        rng_state = state.get("rng")
        if rng_state is not None:
            rng = getattr(self, "_rng", None)
            if not isinstance(rng, np.random.Generator):
                raise ExperimentError(
                    f"checkpointed state carries rng state but {expected!r} "
                    f"has no generator to restore it onto")
            rng.bit_generator.state = rng_state


class ScheduledEvents(EventGenerator):
    """A fixed, explicit schedule: ``{round_index: [events, ...]}``."""

    def __init__(self, schedule: Mapping[int, Sequence[DynamicEvent]]) -> None:
        for round_index in schedule:
            if round_index < 0:
                raise ExperimentError("event rounds must be non-negative")
        self._schedule = {int(r): list(evs) for r, evs in schedule.items()}

    def events(self, view: StreamView) -> List[DynamicEvent]:
        return list(self._schedule.get(view.round_index, ()))


class PoissonArrivals(EventGenerator):
    """Each round, ``Poisson(rate)`` unit tokens arrive on uniform random nodes."""

    def __init__(self, rate: float, seed: Optional[int] = None, tag: str = "") -> None:
        if rate < 0:
            raise ExperimentError("arrival rate must be non-negative")
        self._rate = float(rate)
        self._rng = np.random.default_rng(seed)
        self._tag = tag

    def events(self, view: StreamView) -> List[DynamicEvent]:
        count = int(self._rng.poisson(self._rate))
        if count == 0:
            return []
        picks = self._rng.choice(len(view.labels), size=count)
        per_label = np.bincount(picks, minlength=len(view.labels))
        return [
            DynamicEvent(ARRIVAL, node=view.labels[index], tokens=int(tokens), tag=self._tag)
            for index, tokens in enumerate(per_label) if tokens
        ]


class PoissonDepartures(EventGenerator):
    """Each round, ``Poisson(rate)`` tokens finish and leave the system.

    Departing tokens are sampled proportionally to the current loads (each
    in-system token is equally likely to finish), which keeps the stream
    load-neutral when paired with :class:`PoissonArrivals` of the same rate.
    """

    def __init__(self, rate: float, seed: Optional[int] = None, tag: str = "") -> None:
        if rate < 0:
            raise ExperimentError("departure rate must be non-negative")
        self._rate = float(rate)
        self._rng = np.random.default_rng(seed)
        self._tag = tag

    def events(self, view: StreamView) -> List[DynamicEvent]:
        total = view.total_load
        count = min(int(self._rng.poisson(self._rate)), total)
        if count <= 0:
            return []
        loads = np.array([view.loads.get(label, 0) for label in view.labels], dtype=float)
        picks = self._rng.choice(len(view.labels), size=count, p=loads / loads.sum())
        per_label = np.bincount(picks, minlength=len(view.labels))
        events = []
        for index, tokens in enumerate(per_label):
            if not tokens:
                continue
            label = view.labels[index]
            # Never request more tokens than the node actually holds.
            tokens = min(int(tokens), int(view.loads.get(label, 0)))
            if tokens:
                events.append(DynamicEvent(DEPARTURE, node=label, tokens=tokens, tag=self._tag))
        return events


class BurstyArrivals(EventGenerator):
    """Periodic bursts: every ``period`` rounds, dump ``burst_size`` tokens on one node.

    The target node is fixed (``node``) or drawn uniformly per burst.  Bursts
    are tagged ``"burst"`` so :func:`repro.dynamic.metrics.burst_rounds` can
    locate them in the timeline.
    """

    def __init__(self, burst_size: int, period: int, first_round: int = 0,
                 node: Optional[int] = None, seed: Optional[int] = None) -> None:
        if burst_size < 0:
            raise ExperimentError("burst_size must be non-negative")
        if period < 1:
            raise ExperimentError("burst period must be at least 1")
        if first_round < 0:
            raise ExperimentError("first_round must be non-negative")
        self._burst_size = int(burst_size)
        self._period = int(period)
        self._first = int(first_round)
        self._node = node
        self._rng = np.random.default_rng(seed)

    def events(self, view: StreamView) -> List[DynamicEvent]:
        t = view.round_index
        if t < self._first or (t - self._first) % self._period or not self._burst_size:
            return []
        if self._node is not None and self._node in view.labels:
            target = self._node
        else:
            target = view.labels[int(self._rng.integers(len(view.labels)))]
        return [DynamicEvent(ARRIVAL, node=target, tokens=self._burst_size, tag="burst")]


class AdversarialHotspot(EventGenerator):
    """Arrivals that always target the currently most loaded node.

    This is the adversary that keeps the discrepancy as high as the stream
    rate allows: new work lands exactly where balancing has not caught up yet.
    """

    def __init__(self, tokens_per_round: int, seed: Optional[int] = None) -> None:
        if tokens_per_round < 0:
            raise ExperimentError("tokens_per_round must be non-negative")
        self._tokens = int(tokens_per_round)
        self._rng = np.random.default_rng(seed)

    def events(self, view: StreamView) -> List[DynamicEvent]:
        if not self._tokens:
            return []
        return [DynamicEvent(ARRIVAL, node=view.max_load_label(),
                             tokens=self._tokens, tag="hotspot")]


class NodeChurn(EventGenerator):
    """Bernoulli node churn: joins and leaves with per-round probabilities.

    A joining node attaches to ``attach_degree`` uniformly chosen existing
    nodes (so it is immediately connected).  A leave targets a uniformly
    chosen node; the streaming engine *rejects* the leave when removing the
    node would disconnect the network or shrink it below three nodes, which
    is how connectivity is preserved unconditionally.
    """

    def __init__(self, join_probability: float = 0.05, leave_probability: float = 0.05,
                 attach_degree: int = 2, seed: Optional[int] = None) -> None:
        for name, p in (("join_probability", join_probability),
                        ("leave_probability", leave_probability)):
            if not 0.0 <= p <= 1.0:
                raise ExperimentError(f"{name} must be a probability, got {p}")
        if attach_degree < 1:
            raise ExperimentError("attach_degree must be at least 1")
        self._join_p = float(join_probability)
        self._leave_p = float(leave_probability)
        self._attach = int(attach_degree)
        self._rng = np.random.default_rng(seed)

    def events(self, view: StreamView) -> List[DynamicEvent]:
        events: List[DynamicEvent] = []
        if self._rng.random() < self._join_p:
            k = min(self._attach, len(view.labels))
            picks = self._rng.choice(len(view.labels), size=k, replace=False)
            attach = tuple(view.labels[int(index)] for index in sorted(picks))
            events.append(DynamicEvent(JOIN, attach_to=attach, tag="churn"))
        if self._rng.random() < self._leave_p:
            victim = view.labels[int(self._rng.integers(len(view.labels)))]
            events.append(DynamicEvent(LEAVE, node=victim, tag="churn"))
        return events


class CompositeGenerator(EventGenerator):
    """Merge the event streams of several generators (polled in order)."""

    def __init__(self, generators: Sequence[EventGenerator]) -> None:
        self._generators = list(generators)

    def events(self, view: StreamView) -> List[DynamicEvent]:
        merged: List[DynamicEvent] = []
        for generator in self._generators:
            merged.extend(generator.events(view))
        return merged

    def state_dict(self) -> Dict[str, object]:
        return {"type": type(self).__name__,
                "children": [child.state_dict() for child in self._generators]}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        children = state.get("children")
        if not isinstance(children, list) or len(children) != len(self._generators):
            raise ExperimentError(
                f"checkpointed composite state has "
                f"{len(children) if isinstance(children, list) else 'no'} "
                f"children, this generator has {len(self._generators)}")
        for child, child_state in zip(self._generators, children):
            child.load_state_dict(child_state)


# ---------------------------------------------------------------------- #
# named profiles
# ---------------------------------------------------------------------- #


def _poisson_profile(network: Network, tokens_per_node: int,
                     seed: Optional[int]) -> EventGenerator:
    rate = max(1.0, network.num_nodes / 4)
    return CompositeGenerator([
        PoissonArrivals(rate, seed=_derive(seed, 1)),
        PoissonDepartures(rate, seed=_derive(seed, 2)),
    ])


def _burst_profile(network: Network, tokens_per_node: int,
                   seed: Optional[int]) -> EventGenerator:
    burst = max(network.num_nodes, tokens_per_node * network.num_nodes // 2)
    return BurstyArrivals(burst, period=120, first_round=30, seed=_derive(seed, 1))


def _hotspot_profile(network: Network, tokens_per_node: int,
                     seed: Optional[int]) -> EventGenerator:
    rate = max(1, network.num_nodes // 8)
    return CompositeGenerator([
        AdversarialHotspot(rate, seed=_derive(seed, 1)),
        PoissonDepartures(float(rate), seed=_derive(seed, 2)),
    ])


def _churn_profile(network: Network, tokens_per_node: int,
                   seed: Optional[int]) -> EventGenerator:
    rate = max(1.0, network.num_nodes / 8)
    return CompositeGenerator([
        PoissonArrivals(rate, seed=_derive(seed, 1)),
        PoissonDepartures(rate, seed=_derive(seed, 2)),
        NodeChurn(join_probability=0.05, leave_probability=0.05,
                  attach_degree=min(2, network.num_nodes - 1), seed=_derive(seed, 3)),
    ])


def _mixed_profile(network: Network, tokens_per_node: int,
                   seed: Optional[int]) -> EventGenerator:
    return CompositeGenerator([
        _poisson_profile(network, tokens_per_node, _derive(seed, 10)),
        _burst_profile(network, tokens_per_node, _derive(seed, 11)),
        NodeChurn(join_probability=0.02, leave_probability=0.02,
                  attach_degree=min(2, network.num_nodes - 1), seed=_derive(seed, 12)),
    ])


#: Named event profiles usable from the CLI, scenarios and benchmarks.  Each
#: entry maps a name to ``factory(network, tokens_per_node, seed)``.
EVENT_PROFILES: Dict[str, Callable[[Network, int, Optional[int]], EventGenerator]] = {
    "poisson": _poisson_profile,
    "burst": _burst_profile,
    "hotspot": _hotspot_profile,
    "churn": _churn_profile,
    "mixed": _mixed_profile,
}


def make_event_generator(profile: str, network: Network, tokens_per_node: int,
                         seed: Optional[int] = None) -> EventGenerator:
    """Build the named event profile scaled to ``network``."""
    if profile not in EVENT_PROFILES:
        raise ExperimentError(
            f"unknown event profile {profile!r}; valid profiles: {sorted(EVENT_PROFILES)}")
    return EVENT_PROFILES[profile](network, tokens_per_node, seed)


def _derive(seed: Optional[int], salt: int) -> Optional[int]:
    """Derive a deterministic child seed (``None`` stays ``None``)."""
    return None if seed is None else seed * 1_000_003 + salt
