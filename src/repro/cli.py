"""Command line interface: run a single comparison or a named experiment.

Examples
--------
Compare algorithms on a hypercube::

    repro-loadbalance compare --topology hypercube --nodes 64 \
        --algorithms round-down algorithm1 algorithm2

Regenerate the Table 1 comparison::

    repro-loadbalance table1 --size small

The CLI is intentionally thin: it parses arguments, calls the experiment
harness and prints plain-text tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .network import topologies
from .simulation.engine import ALL_ALGORITHMS, BACKEND_KINDS, RNG_MODES, compare_algorithms
from .simulation.workloads import WORKLOADS
from .simulation.experiments import (
    continuous_convergence_rows,
    format_table,
    initial_load_condition_rows,
    scaling_in_n_rows,
    table1_rows,
    table2_rows,
    theorem3_rows,
    theorem8_rows,
)
from .tasks.generators import point_load

__all__ = ["build_parser", "main"]


def _add_fault_tolerance_arguments(command: argparse.ArgumentParser) -> None:
    """The shared self-healing-grid flags (see ``run_cells``)."""
    command.add_argument("--cell-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="kill and retry any grid cell running longer "
                              "than this (pooled runs only)")
    command.add_argument("--max-retries", type=int, default=0, metavar="N",
                         help="retry a failed/timed-out/crashed cell up to N "
                              "times with exponential backoff")
    command.add_argument("--no-strict", dest="strict", action="store_false",
                         help="degrade gracefully: report permanently failed "
                              "cells and keep the surviving results instead "
                              "of aborting the whole grid")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``repro-loadbalance`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-loadbalance",
        description="Discrete load balancing via continuous-flow imitation (PODC 2012 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    compare = subparsers.add_parser("compare", help="compare algorithms on one instance")
    compare.add_argument("--topology", default="torus",
                         help="topology family name (see repro.network.topologies.named_topology)")
    compare.add_argument("--nodes", type=int, default=64, help="approximate number of nodes")
    compare.add_argument("--tokens-per-node", type=int, default=32,
                         help="total tokens divided by n (all placed on node 0)")
    compare.add_argument("--algorithms", nargs="+", default=["round-down", "algorithm1", "algorithm2"],
                         choices=list(ALL_ALGORITHMS), help="algorithms to run")
    compare.add_argument("--continuous", default="fos",
                         choices=["fos", "sos", "periodic-matching", "random-matching"],
                         help="continuous substrate")
    compare.add_argument("--backend", default="auto", choices=list(BACKEND_KINDS),
                         help="load-state backend (array = vectorized fast path)")
    compare.add_argument("--rng-mode", default="sequential", choices=list(RNG_MODES),
                         help="randomized-draw mode (algorithm2, randomized-rounding, "
                              "excess-tokens): sequential draws or the "
                              "order-free edge/node-keyed counter RNG")
    compare.add_argument("--seed", type=int, default=7)

    table1 = subparsers.add_parser("table1", help="reproduce the Table 1 comparison")
    table1.add_argument("--size", default="small", choices=["small", "medium", "large"])
    table1.add_argument("--seed", type=int, default=7)

    table2 = subparsers.add_parser("table2", help="reproduce the Table 2 comparison")
    table2.add_argument("--size", default="small", choices=["small", "medium", "large"])
    table2.add_argument("--matching", default="random-matching",
                        choices=["periodic-matching", "random-matching"])
    table2.add_argument("--seed", type=int, default=7)

    subparsers.add_parser("theorem3", help="validate the Theorem 3 bound (Algorithm 1)")
    subparsers.add_parser("theorem8", help="validate the Theorem 8 bound (Algorithm 2)")
    subparsers.add_parser("convergence", help="continuous balancing times vs spectral predictions")

    scaling = subparsers.add_parser("scaling", help="discrepancy as n grows at fixed degree")
    scaling.add_argument("--family", default="torus")
    scaling.add_argument("--sizes", nargs="+", type=int, default=[16, 36, 64, 100])

    subparsers.add_parser("initial-load", help="sweep of the sufficient-initial-load condition")

    scenario = subparsers.add_parser("scenario", help="run a scenario described by a JSON file")
    scenario.add_argument("--file", required=True, help="path to the scenario JSON file")
    scenario.add_argument("--csv", help="optional path to append the result row as CSV")

    dynamic = subparsers.add_parser(
        "dynamic", help="run a balancer under a streaming (time-varying) workload")
    dynamic.add_argument("--scenario", default="burst",
                         help="event profile name (see repro.dynamic.EVENT_PROFILES)")
    dynamic.add_argument("--algorithm", default="algorithm2", choices=list(ALL_ALGORITHMS))
    dynamic.add_argument("--topology", default="torus")
    dynamic.add_argument("--nodes", type=int, default=64)
    dynamic.add_argument("--tokens-per-node", type=int, default=8,
                         help="density of the initial (uniform random) workload")
    dynamic.add_argument("--continuous", default="fos",
                         choices=["fos", "sos", "periodic-matching", "random-matching"],
                         help="continuous substrate to re-couple after each event")
    dynamic.add_argument("--rounds", type=int, default=240, help="stream horizon")
    dynamic.add_argument("--backend", default="auto", choices=list(BACKEND_KINDS),
                         help="load-state backend (array = vectorized fast path)")
    dynamic.add_argument("--max-task-weight", type=int, default=1,
                         help="start from weighted tasks with integer weights in "
                              "[1, W] (algorithm1 only; events stream unit tokens)")
    dynamic.add_argument("--rng-mode", default="sequential", choices=list(RNG_MODES),
                         help="randomized-draw mode (algorithm2, randomized-rounding, "
                              "excess-tokens): sequential draws or the "
                              "order-free edge/node-keyed counter RNG")
    dynamic.add_argument("--seed", type=int, default=7)
    dynamic.add_argument("--seeds", nargs="+", type=int, default=None,
                         help="run a grid of seeds instead of the single --seed "
                              "(shardable with --workers)")
    dynamic.add_argument("--workers", type=int, default=None,
                         help="process-pool size for a --seeds grid "
                              "(default: one per core)")
    dynamic.add_argument("--warmup", type=int, default=0,
                         help="trace entries to exclude from time_in_band "
                              "(the initial transient)")
    dynamic.add_argument("--csv", help="optional path to write the summary row as CSV")
    dynamic.add_argument("--store", help="append each run to this JSONL run "
                                         "store (see the 'report' command)")
    dynamic.add_argument("--store-label", default="dynamic",
                         help="label the stored records carry")
    dynamic.add_argument("--telemetry", nargs="?", const=1, type=int,
                         default=None, metavar="N",
                         help="stream per-round telemetry to stderr (every "
                              "Nth round; worker events are relayed for "
                              "--seeds grids)")
    dynamic.add_argument("--trace", metavar="OUT.json",
                         help="record a Chrome trace-event profile of the "
                              "run(s) (open in chrome://tracing / Perfetto)")
    dynamic.add_argument("--progress", action="store_true",
                         help="render a live cells-done/ETA line on stderr "
                              "(--seeds grids)")
    dynamic.add_argument("--checkpoint-every", type=int, default=None,
                         metavar="N",
                         help="snapshot the stream every N rounds so a killed "
                              "run resumes bit-identically with 'resume' "
                              "(single runs, not --seeds grids)")
    dynamic.add_argument("--checkpoint-path", metavar="OUT.json",
                         help="where --checkpoint-every writes its snapshot "
                              "(default: <scenario>.checkpoint.json)")
    _add_fault_tolerance_arguments(dynamic)

    resume = subparsers.add_parser(
        "resume", help="resume an interrupted dynamic run from its checkpoint")
    resume.add_argument("--checkpoint", required=True, metavar="CKPT.json",
                        help="checkpoint file written by 'dynamic "
                             "--checkpoint-every' (the scenario travels "
                             "inside it)")
    resume.add_argument("--rounds", type=int, default=None,
                        help="override the stored horizon (default: finish "
                             "the original run)")
    resume.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="keep checkpointing every N rounds while "
                             "resuming (onto the same file)")
    resume.add_argument("--warmup", type=int, default=0,
                        help="trace entries to exclude from time_in_band")
    resume.add_argument("--telemetry", nargs="?", const=1, type=int,
                        default=None, metavar="N",
                        help="stream per-round telemetry to stderr "
                             "(every Nth round)")
    resume.add_argument("--csv", help="optional path to write the summary row as CSV")

    sweep = subparsers.add_parser("sweep", help="run one configuration over several seeds")
    sweep.add_argument("--algorithm", required=True, choices=list(ALL_ALGORITHMS))
    sweep.add_argument("--topology", default="torus")
    sweep.add_argument("--nodes", type=int, default=64)
    sweep.add_argument("--tokens-per-node", type=int, default=32)
    sweep.add_argument("--workload", default="point", choices=sorted(WORKLOADS))
    sweep.add_argument("--continuous", default="fos",
                       choices=["fos", "sos", "periodic-matching", "random-matching"])
    sweep.add_argument("--backend", default="auto", choices=list(BACKEND_KINDS),
                       help="load-state backend (array = vectorized fast path)")
    sweep.add_argument("--rng-mode", default="sequential", choices=list(RNG_MODES),
                       help="randomized-draw mode; 'counter' makes sharded and "
                            "serial runs draw bit-identical randomness")
    sweep.add_argument("--seeds", nargs="+", type=int, default=[1, 2, 3, 4, 5])
    sweep.add_argument("--workers", type=int, default=1,
                       help="shard the per-seed runs over a process pool")
    sweep.add_argument("--legacy-seeding", action="store_true",
                       help="reuse one integer for topology/workload/schedule/"
                            "algorithm randomness (the historical, correlated "
                            "behaviour)")
    sweep.add_argument("--store", help="append each (seed, run) record — with "
                                       "trajectory and timing envelope — to "
                                       "this JSONL run store")
    sweep.add_argument("--store-label", default="sweep",
                       help="label the stored records carry")
    sweep.add_argument("--telemetry", nargs="?", const=1, type=int,
                       default=None, metavar="N",
                       help="stream per-round telemetry to stderr (every Nth "
                            "round; worker events are relayed for --workers "
                            "runs)")
    sweep.add_argument("--trace", metavar="OUT.json",
                       help="record a Chrome trace-event profile of the runs "
                            "(open in chrome://tracing / Perfetto)")
    sweep.add_argument("--progress", action="store_true",
                       help="render a live cells-done/ETA line on stderr")
    _add_fault_tolerance_arguments(sweep)

    grid = subparsers.add_parser(
        "grid", help="sharded sweep grid: algorithms x topologies x seeds")
    grid.add_argument("--algorithms", nargs="+", required=True,
                      choices=list(ALL_ALGORITHMS))
    grid.add_argument("--topologies", nargs="+", default=["torus:64"],
                      help="grid cells as 'family' or 'family:size' "
                           "(e.g. torus:64 cycle:16); bare names use --nodes")
    grid.add_argument("--nodes", type=int, default=64,
                      help="default size for bare --topologies entries")
    grid.add_argument("--tokens-per-node", type=int, default=32)
    grid.add_argument("--workload", default="point", choices=sorted(WORKLOADS))
    grid.add_argument("--continuous", default="fos",
                      choices=["fos", "sos", "periodic-matching", "random-matching"])
    grid.add_argument("--backend", default="auto", choices=list(BACKEND_KINDS),
                      help="load-state backend (array = vectorized fast path)")
    grid.add_argument("--rng-mode", default="sequential", choices=list(RNG_MODES),
                      help="randomized-draw mode; 'counter' makes sharded and "
                           "serial runs draw bit-identical randomness")
    grid.add_argument("--seeds", nargs="+", type=int, default=[1, 2, 3, 4, 5])
    grid.add_argument("--workers", type=int, default=None,
                      help="process-pool size (default: one per core); the grid "
                           "is sharded at (cell, seed) granularity")
    grid.add_argument("--legacy-seeding", action="store_true",
                      help="reuse one integer seed per run for every component")
    grid.add_argument("--telemetry", nargs="?", const=1, type=int,
                      default=None, metavar="N",
                      help="stream per-round telemetry to stderr (every Nth "
                           "round; worker events are relayed to the driver)")
    grid.add_argument("--trace", metavar="OUT.json",
                      help="record a Chrome trace-event profile of the grid — "
                           "one pid per pool worker, one tid per cell (open "
                           "in chrome://tracing / Perfetto)")
    grid.add_argument("--progress", action="store_true",
                      help="render a live cells-done/ETA line on stderr")
    _add_fault_tolerance_arguments(grid)

    audit = subparsers.add_parser(
        "audit", help="run a flow-imitation algorithm and check the paper's invariants each round")
    audit.add_argument("--algorithm", default="algorithm1", choices=["algorithm1", "algorithm2"])
    audit.add_argument("--topology", default="torus")
    audit.add_argument("--nodes", type=int, default=64)
    audit.add_argument("--tokens-per-node", type=int, default=32)
    audit.add_argument("--seed", type=int, default=7)

    report = subparsers.add_parser(
        "report", help="compare stored runs and gate on regressions "
                       "(see repro.store)")
    report.add_argument("--store", required=True,
                        help="JSONL run store to read (written by 'sweep "
                             "--store', 'dynamic --store' or the benchmarks)")
    report.add_argument("--diff", nargs=2, metavar=("BASE", "CAND"),
                        help="diff two records: each selector is 'latest', "
                             "'#index', a label (latest match wins) or a "
                             "config-hash prefix")
    report.add_argument("--no-chart", action="store_true",
                        help="skip the trajectory sparkline chart")
    report.add_argument("--check-regression", action="store_true",
                        help="gate this store against --baseline-store; "
                             "exit 1 on drift")
    report.add_argument("--baseline-store",
                        help="baseline JSONL store for --check-regression")
    report.add_argument("--max-metric-drift", type=float, default=0.0,
                        help="allowed worsening of final discrepancies "
                             "(default 0: bit-exact under counter RNG)")
    report.add_argument("--max-trace-drift", type=float, default=0.0,
                        help="allowed pointwise trajectory deviation "
                             "(default 0: bit-exact under counter RNG)")
    report.add_argument("--max-timing-ratio", type=float, default=None,
                        help="fail when a run exceeds this multiple of the "
                             "baseline wall-clock (timing checks are off "
                             "unless set)")

    trace = subparsers.add_parser(
        "trace", help="profile stored runs: hot-kernel table and Chrome "
                      "trace conversion")
    trace.add_argument("--store", required=True,
                       help="JSONL run store to read (runs recorded by "
                            "'sweep --store' carry kernel-phase summaries "
                            "when traced)")
    trace.add_argument("--out", metavar="OUT.json",
                       help="write the records as Chrome trace-event JSON "
                            "(open in chrome://tracing / Perfetto)")
    trace.add_argument("--top", type=int, default=10,
                       help="rows in the hot-kernel table (default 10)")

    check = subparsers.add_parser(
        "check", help="static determinism-and-invariants analysis "
                      "(see repro.staticcheck)")
    check.add_argument("paths", nargs="*", default=["src"], metavar="PATH",
                       help="files or directories to analyse (default: src)")
    check.add_argument("--format", dest="output_format", default="text",
                       choices=["text", "json"],
                       help="report format (json is version-tagged)")
    check.add_argument("--rules", default=None, metavar="IDS",
                       help="comma-separated rule ids to run "
                            "(e.g. R001,R003; default: all)")
    check.add_argument("--list-rules", action="store_true",
                       help="print the rule registry and exit")
    check.add_argument("--show-suppressed", action="store_true",
                       help="also print findings disarmed by "
                            "'# repro: allow[...]' comments")
    return parser


def _instrument(telemetry: Optional[int], trace: Optional[str],
                progress: bool, total_cells: int, label: str):
    """Wire the shared observability flags into ``(bus, tracer, renderer)``.

    ``--telemetry N`` attaches a stderr console subscriber, ``--trace OUT``
    attaches a :class:`~repro.obs.trace.Tracer`, and ``--progress`` builds a
    live :class:`~repro.obs.progress.GridProgress` status line.  Any of the
    three may be ``None`` when the corresponding flag is absent.
    """
    bus = tracer = renderer = None
    if telemetry is not None or trace:
        from .obs import ConsoleSubscriber, MetricsBus, Tracer

        bus = MetricsBus()
        if telemetry is not None:
            bus.subscribe(ConsoleSubscriber(every=telemetry, stream=sys.stderr))
        if trace:
            tracer = Tracer(label=label).attach(bus)
    if progress and total_cells:
        from .obs import GridProgress

        renderer = GridProgress(total_cells, label=label)
    return bus, tracer, renderer


def _report_failed_cells(outcomes) -> None:
    """Print the structured failure report of a ``--no-strict`` grid."""
    from .simulation.parallel import failed_cells

    for failure in failed_cells(outcomes):
        print(f"WARNING: cell {failure.position} ({failure.label}) failed "
              f"permanently after {failure.attempts} attempt(s): "
              f"[{failure.kind}] {failure.error}", file=sys.stderr)


def _finish_instrumentation(trace_path: Optional[str], tracer, renderer) -> None:
    """Close the progress line, then write the Chrome trace + hot kernels."""
    if renderer is not None:
        renderer.finish()
    if tracer is None:
        return
    tracer.detach()
    path = tracer.write(trace_path)
    rows = tracer.hot_kernels()
    if rows:
        print("hot kernels:")
        print(format_table(rows))
    summary = tracer.summary()
    print(f"wrote Chrome trace ({summary['spans']} spans, "
          f"{summary['rounds']} rounds) to {path} — open in chrome://tracing "
          f"or https://ui.perfetto.dev")


#: ``args`` attributes that point at on-disk artifacts a run may have
#: partially written — surfaced on ^C so the user knows what survived.
_ARTIFACT_ARGS = ("store", "csv", "trace", "checkpoint_path", "checkpoint",
                  "out")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-loadbalance`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _run_command(args, parser)
    except KeyboardInterrupt:
        # The grid driver has already cancelled its futures and torn the
        # pool down on the way out; store appends are fsync'd per record
        # and checkpoints are written atomically, so whatever reached disk
        # before the ^C is complete and usable.
        print("\ninterrupted", file=sys.stderr)
        partial = [getattr(args, attr, None) for attr in _ARTIFACT_ARGS]
        for path in filter(None, partial):
            print(f"partial results: {path}", file=sys.stderr)
        if getattr(args, "checkpoint_path", None) or \
                getattr(args, "checkpoint", None):
            print("resume with: repro-loadbalance resume --checkpoint "
                  f"{getattr(args, 'checkpoint_path', None) or args.checkpoint}",
                  file=sys.stderr)
        return 130


def _run_command(args, parser: argparse.ArgumentParser) -> int:
    """Dispatch one parsed command (the body of :func:`main`)."""
    if args.command == "compare":
        network = topologies.named_topology(args.topology, args.nodes, seed=args.seed)
        load = point_load(network, args.tokens_per_node * network.num_nodes)
        results = compare_algorithms(network, load, args.algorithms,
                                     continuous_kind=args.continuous, seed=args.seed,
                                     backend=args.backend, rng_mode=args.rng_mode)
        rows = [result.as_dict() for result in results]
        print(format_table(rows, columns=["algorithm", "network", "n", "max_degree",
                                          "rounds", "max_min", "max_avg",
                                          "dummy_tokens", "went_negative",
                                          "backend"]))
    elif args.command == "table1":
        rows = table1_rows(size=args.size, seed=args.seed)
        print(format_table(rows))
    elif args.command == "table2":
        rows = table2_rows(size=args.size, matching_kind=args.matching, seed=args.seed)
        print(format_table(rows))
    elif args.command == "theorem3":
        print(format_table(theorem3_rows()))
    elif args.command == "theorem8":
        print(format_table(theorem8_rows()))
    elif args.command == "convergence":
        print(format_table(continuous_convergence_rows()))
    elif args.command == "scaling":
        print(format_table(scaling_in_n_rows(family=args.family, sizes=args.sizes)))
    elif args.command == "initial-load":
        print(format_table(initial_load_condition_rows()))
    elif args.command == "scenario":
        from .simulation.reporting import rows_to_csv
        from .simulation.scenario import load_scenario, run_scenario

        scenario = load_scenario(args.file)
        result = run_scenario(scenario)
        row = {"scenario": scenario.name, **result.as_dict()}
        print(format_table([row], columns=["scenario", "algorithm", "network", "n",
                                           "rounds", "max_min", "max_avg",
                                           "dummy_tokens", "went_negative"]))
        if args.csv:
            rows_to_csv([row], args.csv)
            print(f"wrote {args.csv}")
    elif args.command == "dynamic":
        from .core.algorithm1 import theorem3_discrepancy_bound
        from .dynamic.metrics import recovery_report, summarize_dynamic
        from .simulation.reporting import rows_to_csv
        from .simulation.scenario import (
            DynamicScenario,
            expand_seeds,
            run_dynamic_grid,
            run_dynamic_scenario,
        )

        scenario = DynamicScenario(
            name=f"cli-{args.scenario}", algorithm=args.algorithm,
            topology=args.topology, num_nodes=args.nodes,
            tokens_per_node=args.tokens_per_node, continuous_kind=args.continuous,
            events=args.scenario, rounds=args.rounds, seed=args.seed,
            backend=args.backend, max_task_weight=args.max_task_weight,
            rng_mode=args.rng_mode,
        )
        if args.checkpoint_every is not None and args.seeds:
            parser.error("--checkpoint-every applies to single runs; for "
                         "--seeds grids use --max-retries/--no-strict instead")
        if args.seeds:
            scenarios = expand_seeds(scenario, args.seeds)
            bus, tracer, renderer = _instrument(
                args.telemetry, args.trace, args.progress,
                total_cells=len(scenarios), label="dynamic")
            results = run_dynamic_grid(scenarios, workers=args.workers,
                                       bus=bus, progress=renderer,
                                       cell_timeout=args.cell_timeout,
                                       max_retries=args.max_retries,
                                       strict=args.strict)
            timings = [None] * len(results)
        else:
            import time

            if args.checkpoint_every is not None and not args.checkpoint_path:
                args.checkpoint_path = f"{scenario.name}.checkpoint.json"
            scenarios = [scenario]
            bus, tracer, renderer = _instrument(
                args.telemetry, args.trace, False, 0, label="dynamic")
            start = time.perf_counter()  # repro: allow[R002] run timing envelope
            results = [run_dynamic_scenario(
                scenario, bus=bus, checkpoint_every=args.checkpoint_every,
                checkpoint_path=args.checkpoint_path)]
            # repro: allow[R002] run timing envelope (stored, never in logic)
            timings = [time.perf_counter() - start]
            if args.checkpoint_every is not None:
                print(f"checkpointed every {args.checkpoint_every} round(s) "
                      f"to {args.checkpoint_path}")
        _finish_instrumentation(args.trace, tracer, renderer)
        dropped = [cell for cell, result in zip(scenarios, results)
                   if result is None]
        if dropped:  # --no-strict grids keep going without the failed cells
            survivors = [(cell, result, seconds) for cell, result, seconds
                         in zip(scenarios, results, timings)
                         if result is not None]
            print(f"WARNING: {len(dropped)} of {len(results)} cell(s) failed "
                  f"permanently (seeds "
                  f"{[cell.seed for cell in dropped]}); reporting the "
                  f"survivors", file=sys.stderr)
            if not survivors:
                print("error: every cell failed", file=sys.stderr)
                return 1
            scenarios, results, timings = map(list, zip(*survivors))
        rows = []
        for cell, result in zip(scenarios, results):
            band = theorem3_discrepancy_bound(result.max_degree,
                                              result.max_task_weight)
            summary = summarize_dynamic(result, band, start=args.warmup)
            rows.append({"scenario": args.scenario, "seed": cell.seed,
                         **result.as_dict(), **summary})
        first = results[0]
        print(f"dynamic '{args.scenario}' stream: {args.algorithm} on "
              f"{first.network_name} ({first.num_nodes} nodes after "
              f"{first.rounds} rounds, continuous={args.continuous}, "
              f"backend={args.backend}, {len(results)} seed(s))")
        print(format_table(rows, columns=["scenario", "seed", "algorithm", "n",
                                          "rounds", "events", "arrivals",
                                          "departures", "recouplings",
                                          "steady_state", "band",
                                          "time_in_band", "max_min"]))
        for cell, result, row in zip(scenarios, results, rows):
            for burst in recovery_report(result, row["band"]):
                recovered = burst["recovery_time"]
                recovery = (f"recovered in {recovered} rounds"
                            if recovered is not None else "did NOT recover")
                print(f"  seed {cell.seed}, burst at round {burst['round']}: "
                      f"peak discrepancy {burst['peak']:.1f}, {recovery} "
                      f"(band {row['band']:.1f})")
        if args.csv:
            rows_to_csv(rows, args.csv)
            print(f"wrote {args.csv}")
        if args.store:
            from .store import RunStore, record_run

            store = RunStore(args.store)
            for cell, result, seconds in zip(scenarios, results, timings):
                record_run(store, args.store_label, "dynamic",
                           {**cell.to_dict(), "kind": "dynamic"},
                           seeds=[cell.seed], result=result,
                           timing=None if seconds is None
                           else {"seconds": seconds})
            print(f"stored {len(results)} record(s) in {store.path}")
    elif args.command == "resume":
        from .checkpoint import read_checkpoint, resume_stream
        from .core.algorithm1 import theorem3_discrepancy_bound
        from .dynamic.metrics import recovery_report, summarize_dynamic
        from .exceptions import CheckpointError
        from .simulation.reporting import rows_to_csv

        try:
            checkpoint = read_checkpoint(args.checkpoint)
            horizon = args.rounds if args.rounds is not None \
                else checkpoint.total_rounds
            meta = checkpoint.meta or {}
            name = (meta.get("scenario") or {}).get("name", "resume")
            print(f"resuming '{name}' from {args.checkpoint}: round "
                  f"{checkpoint.round_index} of {horizon} "
                  f"({checkpoint.config['algorithm']}, "
                  f"rng_mode={checkpoint.config['rng_mode']}, config "
                  f"{checkpoint.config_hash[:10]})")
            bus, tracer, renderer = _instrument(
                args.telemetry, None, False, 0, label="resume")
            result = resume_stream(checkpoint, rounds=args.rounds, bus=bus,
                                   checkpoint_every=args.checkpoint_every,
                                   checkpoint_path=args.checkpoint)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        band = theorem3_discrepancy_bound(result.max_degree,
                                          result.max_task_weight)
        summary = summarize_dynamic(result, band, start=args.warmup)
        row = {"scenario": name, **result.as_dict(), **summary}
        print(format_table([row], columns=["scenario", "algorithm", "n",
                                           "rounds", "events", "arrivals",
                                           "departures", "recouplings",
                                           "steady_state", "band",
                                           "time_in_band", "max_min"]))
        for burst in recovery_report(result, band):
            recovered = burst["recovery_time"]
            recovery = (f"recovered in {recovered} rounds"
                        if recovered is not None else "did NOT recover")
            print(f"  burst at round {burst['round']}: peak discrepancy "
                  f"{burst['peak']:.1f}, {recovery} (band {band:.1f})")
        if args.csv:
            rows_to_csv([row], args.csv)
            print(f"wrote {args.csv}")
    elif args.command == "sweep":
        from .simulation.sweep import SweepConfiguration, run_sweep

        configuration = SweepConfiguration(
            algorithm=args.algorithm, topology=args.topology, num_nodes=args.nodes,
            tokens_per_node=args.tokens_per_node, workload=args.workload,
            continuous_kind=args.continuous, backend=args.backend,
            rng_mode=args.rng_mode,
        )
        bus, tracer, renderer = _instrument(
            args.telemetry, args.trace, args.progress,
            total_cells=len(args.seeds), label="sweep")
        if args.store:
            from .simulation.parallel import grid_sweep_with_outcomes
            from .store import RunStore, record_sweep_outcomes

            # The outcome envelopes carry per-run timing and worker pids;
            # traces are recorded so stored runs diff as trajectories.
            results, outcomes = grid_sweep_with_outcomes(
                [configuration], args.seeds, workers=args.workers,
                record_trace=True, legacy_seeding=args.legacy_seeding, bus=bus,
                progress=renderer, cell_timeout=args.cell_timeout,
                max_retries=args.max_retries, strict=args.strict)
            result = results[0]
            _report_failed_cells(outcomes)
            store = RunStore(args.store)
            record_sweep_outcomes(store, args.store_label, outcomes)
            _finish_instrumentation(args.trace, tracer, renderer)
            print(format_table([result.as_row()]))
            print(f"stored {len(outcomes)} record(s) in {store.path}")
        else:
            from .simulation.parallel import parallel_sweep

            fault_tolerant = (args.cell_timeout is not None
                              or args.max_retries > 0 or not args.strict)
            if args.workers > 1 or renderer is not None or fault_tolerant:
                result = parallel_sweep(configuration, args.seeds,
                                        workers=args.workers,
                                        legacy_seeding=args.legacy_seeding,
                                        bus=bus, progress=renderer,
                                        cell_timeout=args.cell_timeout,
                                        max_retries=args.max_retries,
                                        strict=args.strict)
            else:
                result = run_sweep(configuration, seeds=args.seeds,
                                   workers=args.workers,
                                   legacy_seeding=args.legacy_seeding, bus=bus)
            _finish_instrumentation(args.trace, tracer, renderer)
            print(format_table([result.as_row()]))
    elif args.command == "grid":
        from .simulation.parallel import parallel_grid_sweep
        from .simulation.sweep import SweepConfiguration

        pairs = []
        for entry in args.topologies:
            family, _, size = entry.partition(":")
            try:
                pairs.append((family, int(size) if size else args.nodes))
            except ValueError:
                parser.error(f"invalid --topologies entry {entry!r}: expected "
                             f"'family' or 'family:size' with an integer size")
        configurations = [
            SweepConfiguration(
                algorithm=algorithm, topology=topology, num_nodes=size,
                tokens_per_node=args.tokens_per_node, workload=args.workload,
                continuous_kind=args.continuous, backend=args.backend,
                rng_mode=args.rng_mode,
            )
            for topology, size in pairs
            for algorithm in args.algorithms
        ]
        # Always the sharded path: --workers defaults to one per core here
        # (run_cells resolves None), unlike the library grid_sweep whose
        # default stays serial.
        bus, tracer, renderer = _instrument(
            args.telemetry, args.trace, args.progress,
            total_cells=len(configurations) * len(args.seeds), label="grid")
        results = parallel_grid_sweep(configurations, seeds=args.seeds,
                                      workers=args.workers,
                                      legacy_seeding=args.legacy_seeding,
                                      bus=bus, progress=renderer,
                                      cell_timeout=args.cell_timeout,
                                      max_retries=args.max_retries,
                                      strict=args.strict)
        _finish_instrumentation(args.trace, tracer, renderer)
        print(format_table([result.as_row() for result in results
                            if result.runs]))
    elif args.command == "audit":
        from .continuous.fos import FirstOrderDiffusion
        from .core.algorithm1 import DeterministicFlowImitation
        from .core.algorithm2 import RandomizedFlowImitation
        from .core.diagnostics import FlowImitationAuditor
        from .tasks.assignment import TaskAssignment

        network = topologies.named_topology(args.topology, args.nodes, seed=args.seed)
        loads = point_load(network, args.tokens_per_node * network.num_nodes)
        assignment = TaskAssignment.from_unit_loads(network, loads)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        if args.algorithm == "algorithm1":
            balancer = DeterministicFlowImitation(continuous, assignment)
        else:
            balancer = RandomizedFlowImitation(continuous, assignment, seed=args.seed)
        auditor = FlowImitationAuditor(balancer)
        report = auditor.run_until_continuous_balanced()
        print(f"{args.algorithm} on {network.name} (n={network.num_nodes}, "
              f"d={network.max_degree}):")
        print(report.summary())
        print(f"final max-min discrepancy: {balancer.max_min_discrepancy():.1f} "
              f"(Theorem 3 bound {2 * network.max_degree * balancer.w_max + 2:.0f})")
        for violation in report.violations:
            print(f"  VIOLATION round {violation.round_index}: "
                  f"{violation.invariant} — {violation.detail}")
    elif args.command == "report":
        from .exceptions import ExperimentError
        from .store import (
            RunStore,
            check_store_regression,
            comparison_rows,
            diff_rows,
            render_comparison,
        )

        try:
            store = RunStore(args.store)
            records = store.records()
            if args.check_regression:
                if not args.baseline_store:
                    parser.error("--check-regression requires --baseline-store")
                baseline = RunStore(args.baseline_store).records()
                outcome = check_store_regression(
                    baseline, records,
                    max_metric_drift=args.max_metric_drift,
                    max_trace_drift=args.max_trace_drift,
                    max_timing_ratio=args.max_timing_ratio)
                print(outcome.summary())
                if outcome.violations:
                    print(format_table([violation.as_row()
                                        for violation in outcome.violations]))
                return 0 if outcome.ok else 1
            if args.diff:
                base = store.select(args.diff[0], records)
                cand = store.select(args.diff[1], records)
                print(f"baseline:  {base.label} ({base.config_hash[:10]}, "
                      f"{base.created})")
                print(f"candidate: {cand.label} ({cand.config_hash[:10]}, "
                      f"{cand.created})")
                print(format_table(diff_rows(base, cand)))
                if not args.no_chart:
                    print(render_comparison([base, cand]))
            else:
                print(f"{len(records)} record(s) in {store.path}")
                print(format_table(comparison_rows(records)))
                if not args.no_chart:
                    print(render_comparison(records))
        except ExperimentError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.command == "trace":
        import json
        import pathlib

        from .exceptions import ExperimentError
        from .obs.trace import chrome_from_records, hot_kernel_rows
        from .store import RunStore

        try:
            store = RunStore(args.store)
            records = store.records()
        except ExperimentError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"{len(records)} record(s) in {store.path}")
        rows = hot_kernel_rows(records, top=args.top)
        if rows:
            print("hot kernels:")
            print(format_table(rows))
        else:
            print("no kernel-phase summaries in this store (record runs "
                  "with 'sweep --store ... --trace ...' to collect them)")
        if args.out:
            trace = chrome_from_records(records)
            out = pathlib.Path(args.out)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(json.dumps(trace) + "\n")
            print(f"wrote Chrome trace ({len(trace['traceEvents'])} events) "
                  f"to {out} — open in chrome://tracing or "
                  f"https://ui.perfetto.dev")
    elif args.command == "check":
        from .staticcheck import run_check

        return run_check(args.paths, output_format=args.output_format,
                         rule_ids=args.rules, list_rules=args.list_rules,
                         show_suppressed=args.show_suppressed)
    else:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
