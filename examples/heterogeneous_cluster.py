"""Heterogeneous cluster: weighted tasks on processors with different speeds.

The paper's model allows arbitrary task weights and per-node speeds; this is
what distinguishes it from most prior discrete load balancing work.  This
example models a small heterogeneous compute cluster:

* 48 machines connected as a random 4-regular network (think rack-level links);
* machine speeds drawn from {1, 2, 3, 4} (different hardware generations);
* 1500 jobs with integer runtimes (weights) between 1 and 6, all submitted to
  a handful of front-end machines.

It then runs Algorithm 1 on top of a first-order diffusion substrate and
reports the makespan spread before and after balancing, compared against the
Theorem 3 bound.

Run with::

    python examples/heterogeneous_cluster.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DeterministicFlowImitation,
    FirstOrderDiffusion,
    TaskAssignment,
    TaskFactory,
    summarize_loads,
    theorem3_discrepancy_bound,
    topologies,
)
from repro.core.algorithm1 import theorem3_required_base_load
from repro.tasks.generators import balanced_load, random_integer_speeds


def build_cluster(seed: int = 42):
    base = topologies.random_regular(48, 4, seed=seed)
    speeds = random_integer_speeds(base, max_speed=4, seed=seed + 1)
    return base.with_speeds(speeds)


def submit_jobs(network, num_jobs: int, max_runtime: int, seed: int = 7) -> TaskAssignment:
    """All jobs arrive at three front-end nodes (0, 1, 2)."""
    rng = np.random.default_rng(seed)
    factory = TaskFactory()
    assignment = TaskAssignment(network)
    front_ends = (0, 1, 2)
    for _ in range(num_jobs):
        node = int(rng.choice(front_ends))
        runtime = int(rng.integers(1, max_runtime + 1))
        assignment.add(node, factory.create(weight=runtime, origin=node))
    return assignment


def add_base_load(network, assignment: TaskAssignment, w_max: float) -> None:
    """Pad every machine with the balanced base load required by Theorem 3(2).

    In a real cluster this corresponds to machines already running a
    speed-proportional background workload.
    """
    level = int(np.ceil(theorem3_required_base_load(network.max_degree, w_max)))
    factory = TaskFactory(start_id=10**8)
    for node, count in enumerate(balanced_load(network, level)):
        for task in factory.create_many(int(count), weight=1.0, origin=node):
            assignment.add(node, task)


def main() -> None:
    network = build_cluster()
    assignment = submit_jobs(network, num_jobs=1500, max_runtime=6)
    w_max = assignment.max_task_weight()
    add_base_load(network, assignment, w_max)

    before = summarize_loads(assignment.loads(), network)
    print(f"cluster: n={network.num_nodes}, d={network.max_degree}, "
          f"speeds 1..{int(network.speeds.max())}, w_max={w_max:.0f}")
    print(f"before balancing: max makespan {before.max_makespan:.1f}, "
          f"max-min discrepancy {before.max_min_discrepancy:.1f}")

    continuous = FirstOrderDiffusion(network, assignment.loads())
    balancer = DeterministicFlowImitation(continuous, assignment,
                                          selection_policy="largest-first")
    T = balancer.run_until_continuous_balanced()

    after = summarize_loads(balancer.loads(), network)
    bound = theorem3_discrepancy_bound(network.max_degree, w_max)
    print(f"after {T} rounds of Algorithm 1 (largest-first selection):")
    print(f"  max makespan            {after.max_makespan:.1f}")
    print(f"  max-min discrepancy     {after.max_min_discrepancy:.1f}")
    print(f"  Theorem 3 bound         {bound:.1f}")
    print(f"  infinite source used?   {balancer.used_infinite_source}")

    assert after.max_min_discrepancy <= bound
    print("OK: heterogeneous workload balanced within the Theorem 3 bound.")


if __name__ == "__main__":
    main()
