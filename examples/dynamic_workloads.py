"""Dynamic workloads: balancing a live stream of arriving and departing tasks.

The paper's experiments are static — a fixed task multiset is balanced on a
fixed graph.  The dynamic subsystem (:mod:`repro.dynamic`) instead drives a
balancer through *time-varying* scenarios:

1. a **burst** stream: periodic hot-spot dumps, after which we measure how
   many rounds Algorithm 2 needs to pull the discrepancy back into the
   Theorem-3-style band ``2 d w_max + 2``;
2. a load-neutral **Poisson** stream: sustained random arrivals/departures,
   summarised by the steady-state discrepancy;
3. a **churn** stream: on top of the Poisson traffic, nodes join and leave
   the network — the engine re-couples the continuous substrate each time
   the topology changes and never lets the network disconnect.

Run with::

    python examples/dynamic_workloads.py
"""

from __future__ import annotations

from repro import theorem3_discrepancy_bound, topologies
from repro.dynamic import make_event_generator, run_stream, summarize_dynamic
from repro.dynamic.metrics import recovery_report
from repro.simulation.experiments import format_table
from repro.tasks.generators import uniform_random_load

TOKENS_PER_NODE = 8
ROUNDS = 200
SEED = 7


def run_profile(profile: str, algorithm: str = "algorithm2"):
    network = topologies.torus(6, dims=2)
    load = uniform_random_load(network, TOKENS_PER_NODE * network.num_nodes, seed=SEED)
    generator = make_event_generator(profile, network, TOKENS_PER_NODE, seed=SEED)
    result = run_stream(algorithm, network, load, generator, rounds=ROUNDS,
                        continuous_kind="fos", seed=SEED)
    band = theorem3_discrepancy_bound(result.max_degree, result.max_task_weight)
    return result, summarize_dynamic(result, band), band


def main() -> None:
    rows = []
    burst_result = None
    burst_band = None
    for profile in ("burst", "poisson", "churn"):
        result, summary, band = run_profile(profile)
        rows.append({
            "profile": profile,
            "n_final": result.num_nodes,
            "events": len(result.event_timeline),
            "arrivals": result.extra["arrivals"],
            "departures": result.extra["departures"],
            "recouplings": result.extra["recouplings"],
            "steady_state": summary["steady_state"],
            "band": band,
            "time_in_band": summary["time_in_band"],
        })
        if profile == "burst":
            burst_result, burst_band = result, band

    print("Algorithm 2 under three dynamic workload profiles "
          f"(6x6 torus, {ROUNDS} rounds):")
    print(format_table(rows))

    print("\nPer-burst recovery (band = 2*d*w_max + 2, the Theorem 3 guarantee "
          "of the static configuration):")
    for burst in recovery_report(burst_result, burst_band):
        recovered = burst["recovery_time"]
        status = (f"recovered in {recovered} rounds"
                  if recovered is not None else "did not recover in the horizon")
        print(f"  round {burst['round']:4d}: peak discrepancy {burst['peak']:5.1f} "
              f"-> {status}")

    print("\nThe churn profile rebuilds ('re-couples') the continuous substrate "
          "whenever the graph or the workload changes; the timeline records "
          "every join/leave, and leaves that would disconnect the network are "
          "rejected by the engine.")


if __name__ == "__main__":
    main()
