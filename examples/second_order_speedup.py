"""Second-order diffusion: faster convergence — and the negative-load caveat.

The framework of the paper applies to *any* additive terminating continuous
process, so Algorithm 1 can discretize the second-order scheme (SOS) just as
easily as first-order diffusion (FOS).  SOS balances in roughly
``sqrt(1/(1-lambda))`` fewer rounds, which is a big win on poorly-expanding
networks.

There is a catch, and the paper states it explicitly (Definition 1 and the
preconditions of Theorems 3 and 8): among the processes considered, **only
SOS may induce negative load** — its outgoing demand can exceed the available
load.  When that happens the discrete guarantees no longer apply and the
flow-imitation algorithm has to draw many dummy tokens from the infinite
source.  This example shows both sides:

* on a 6-dimensional hypercube the violation is mild and the discretized SOS
  still balances well while using a fraction of the FOS rounds;
* on a 64-node ring the optimal SOS relaxation parameter is so aggressive
  that Definition 1 is badly violated and the discrete output degrades —
  exactly the case the paper excludes.

Run with::

    python examples/second_order_speedup.py
"""

from __future__ import annotations

from repro import (
    DeterministicFlowImitation,
    FirstOrderDiffusion,
    SecondOrderDiffusion,
    TaskAssignment,
    spectral_summary,
    theorem3_discrepancy_bound,
    topologies,
)
from repro.core.algorithm1 import theorem3_required_base_load
from repro.tasks.generators import balanced_load, point_load
from repro.tasks.load import max_avg_discrepancy


def run_substrate(network, loads, continuous_factory, label: str) -> None:
    assignment = TaskAssignment.from_unit_loads(network, loads)
    continuous = continuous_factory(network, assignment.loads())
    balancer = DeterministicFlowImitation(continuous, assignment)
    T = balancer.run_until_continuous_balanced(max_rounds=500_000)
    discrepancy = max_avg_discrepancy(balancer.loads(include_dummies=False), network,
                                      total_weight=balancer.original_weight)
    bound = theorem3_discrepancy_bound(network.max_degree, 1.0)
    verdict = "guarantee applies" if not continuous.induced_negative_load else \
        "negative load induced -> guarantee void"
    print(f"  {label:<28} T = {T:>5}  max-avg = {discrepancy:8.1f}  "
          f"(bound {bound:.0f})  dummies = {balancer.dummy_tokens_created:>6}  [{verdict}]")


def demo(network) -> None:
    summary = spectral_summary(network)
    base = int(theorem3_required_base_load(network.max_degree, 1.0))
    loads = point_load(network, 32 * network.num_nodes) + balanced_load(network, base)
    print(f"\n{network.name}: n={network.num_nodes}, d={network.max_degree}, "
          f"1-lambda={summary.gap:.4f}, optimal beta={summary.optimal_beta:.3f}")
    run_substrate(network, loads, lambda net, x: FirstOrderDiffusion(net, x),
                  "FOS substrate")
    run_substrate(network, loads, lambda net, x: SecondOrderDiffusion(net, x),
                  "SOS substrate (optimal beta)")


def main() -> None:
    print("Algorithm 1 on different continuous substrates (hot-spot workload, "
          "base load d*w_max per node)")
    demo(topologies.hypercube(6))
    demo(topologies.cycle(64))
    print("\nTakeaway: SOS buys a large reduction in balancing time, but with an")
    print("aggressive relaxation parameter it can violate the no-negative-load")
    print("precondition (Definition 1); the paper's discrete guarantees only cover")
    print("substrates that keep their demands within the available load.")


if __name__ == "__main__":
    main()
