"""A full experiment pipeline: scenarios -> sweeps -> exported artefacts.

This example shows how the pieces of the simulation layer compose into a
reproducible study, the way the benchmark harness uses them internally:

1. describe the experiment declaratively with :class:`Scenario` objects
   (serialisable to JSON, so they can be committed next to the results);
2. run each scenario over several seeds with the sweep harness and collect
   mean / 90th-percentile / worst-case discrepancies;
3. export the rows to CSV and JSON and render terminal-friendly charts
   (bar chart of the final discrepancies, sparkline traces of the
   convergence), all without any plotting dependency.

Artefacts are written to ``./pipeline_output`` (override with the first
command line argument).

Run with::

    python examples/experiment_pipeline.py [output_dir]
"""

from __future__ import annotations

import pathlib
import sys

from repro.simulation.engine import compare_algorithms
from repro.simulation.experiments import format_table
from repro.simulation.reporting import bar_chart, rows_to_csv, rows_to_json, trace_chart
from repro.simulation.scenario import Scenario
from repro.simulation.sweep import SweepConfiguration, run_sweep
from repro.network import topologies
from repro.tasks.generators import point_load

SEEDS = (1, 2, 3, 4)
ALGORITHMS = ("round-down", "excess-tokens", "algorithm1", "algorithm2")


def build_scenarios() -> list:
    """The study: every algorithm on a 64-node torus with a hot-spot workload."""
    return [
        Scenario(name=f"{algorithm}-torus64", algorithm=algorithm, topology="torus",
                 num_nodes=64, tokens_per_node=32, workload="point", seed=1)
        for algorithm in ALGORITHMS
    ]


def main() -> None:
    output_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "pipeline_output")
    output_dir.mkdir(parents=True, exist_ok=True)

    # 1. Persist the scenario definitions next to the results.
    scenarios = build_scenarios()
    for scenario in scenarios:
        scenario.to_json(output_dir / f"{scenario.name}.scenario.json")

    # 2. Multi-seed sweeps per scenario.
    rows = []
    for scenario in scenarios:
        configuration = SweepConfiguration(
            algorithm=scenario.algorithm, topology=scenario.topology,
            num_nodes=scenario.num_nodes, tokens_per_node=scenario.tokens_per_node,
            workload=scenario.workload, continuous_kind=scenario.continuous_kind,
        )
        rows.append(run_sweep(configuration, seeds=SEEDS).as_row())
    print(format_table(rows))

    # 3. Export artefacts.
    csv_path = rows_to_csv(rows, output_dir / "sweep_results.csv")
    json_path = rows_to_json(rows, output_dir / "sweep_results.json")
    print(f"\nwrote {csv_path} and {json_path}")

    print("\n" + bar_chart(
        {str(row["algorithm"]): float(row["max_min_mean"]) for row in rows},
        title="mean final max-min discrepancy (4 seeds, 8x8 torus)"))

    # 4. Convergence traces for a single representative run of each algorithm.
    network = topologies.torus(8, dims=2)
    load = point_load(network, 32 * network.num_nodes)
    results = compare_algorithms(network, load, ALGORITHMS, seed=1, record_trace=True)
    print("\n" + trace_chart(
        {result.algorithm: result.trace_max_min for result in results},
        title="max-min discrepancy per round (single run)"))


if __name__ == "__main__":
    main()
