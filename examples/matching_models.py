"""Matching models: single-port balancing with periodic and random matchings.

Diffusion assumes every node can talk to all neighbours simultaneously
(multi-port).  The matching model is the single-port alternative: each round
only the edges of a matching are active.  This example compares, on a
6-dimensional hypercube:

* the classical round-down dimension exchange;
* randomized rounding in the matching model;
* Algorithm 1 and Algorithm 2 imitating the continuous dimension-exchange
  process,

under both a periodic (edge-colouring) schedule and fresh random matchings,
and prints the Table 2-style comparison.

Run with::

    python examples/matching_models.py
"""

from __future__ import annotations

from repro import topologies
from repro.simulation.engine import compare_algorithms
from repro.simulation.experiments import format_table
from repro.tasks.generators import point_load

ALGORITHMS = ("matching-round-down", "matching-randomized", "algorithm1", "algorithm2")


def run_model(network, load, kind: str, seed: int):
    results = compare_algorithms(network, load, ALGORITHMS, continuous_kind=kind, seed=seed)
    rows = []
    for result in results:
        rows.append({
            "schedule": kind,
            "algorithm": result.algorithm,
            "rounds (T)": result.rounds,
            "max_min": result.final_max_min,
            "max_avg": result.final_max_avg,
            "dummies": result.dummy_tokens,
        })
    return rows


def main() -> None:
    network = topologies.hypercube(6)
    load = point_load(network, 32 * network.num_nodes)
    print(f"network: {network.name} (n={network.num_nodes}, d={network.max_degree}), "
          f"{int(load.sum())} tokens on node 0\n")

    rows = []
    rows += run_model(network, load, "periodic-matching", seed=3)
    rows += run_model(network, load, "random-matching", seed=5)
    print(format_table(rows))

    print("\nReading the table: the flow-imitation algorithms stay within their")
    print("n-independent bounds in both matching models, matching Table 2 of the paper.")


if __name__ == "__main__":
    main()
