"""Quickstart: discretize a continuous diffusion process with Algorithm 1.

This example walks through the core workflow of the library:

1. build a network (an 8x8 torus of identical processors);
2. create a workload (all tokens start on one node — the classic hot spot);
3. construct the continuous first-order diffusion (FOS) process;
4. wrap it with the paper's Algorithm 1 (deterministic flow imitation);
5. run until the continuous process is balanced and inspect the final
   discrepancies against the ``2 d w_max + 2`` bound of Theorem 3.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DeterministicFlowImitation,
    FirstOrderDiffusion,
    TaskAssignment,
    summarize_loads,
    theorem3_discrepancy_bound,
    topologies,
)
from repro.tasks.generators import point_load


def main() -> None:
    # 1. An 8x8 torus: 64 identical processors, maximum degree 4.
    network = topologies.torus(8, dims=2)
    print(f"network: {network.name} with n={network.num_nodes}, max degree d={network.max_degree}")

    # 2. 2048 unit-weight tokens, all on node 0.
    loads = point_load(network, 32 * network.num_nodes)
    assignment = TaskAssignment.from_unit_loads(network, loads)
    print(f"workload: {assignment.num_tasks} tokens, all on node 0")

    # 3. The continuous process the discrete algorithm will imitate.
    continuous = FirstOrderDiffusion(network, assignment.loads())

    # 4. Algorithm 1 couples itself to the continuous process.
    balancer = DeterministicFlowImitation(continuous, assignment)

    # 5. Run until the continuous process is balanced (its balancing time T).
    T = balancer.run_until_continuous_balanced()
    summary = summarize_loads(balancer.loads(include_dummies=False), network,
                              total_weight=balancer.original_weight)
    bound = theorem3_discrepancy_bound(network.max_degree, balancer.w_max)

    print(f"continuous balancing time T = {T} rounds")
    print(f"final max-min discrepancy  = {summary.max_min_discrepancy:.1f}")
    print(f"final max-avg discrepancy  = {summary.max_avg_discrepancy:.1f}")
    print(f"Theorem 3 bound (2*d*w_max + 2) = {bound:.1f}")
    print(f"dummy tokens drawn from the infinite source: {balancer.dummy_tokens_created}")

    assert summary.max_avg_discrepancy <= bound, "Theorem 3 violated?!"
    print("OK: the discrepancy is within the Theorem 3 bound.")


if __name__ == "__main__":
    main()
