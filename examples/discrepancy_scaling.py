"""Discrepancy scaling: why flow imitation matters on poorly-expanding networks.

The classic round-down diffusion leaves a residual imbalance proportional to
``d * diam(G)``: on rings and grids it degrades as the network grows.  The
paper's Algorithm 1 keeps the final discrepancy at ``O(d)`` regardless of the
network size.  This example sweeps ring sizes, prints the measured final
discrepancies of both algorithms side by side with the theoretical shapes,
and renders a small ASCII plot.

Run with::

    python examples/discrepancy_scaling.py
"""

from __future__ import annotations

from repro import theorem3_discrepancy_bound, topologies
from repro.simulation.engine import compare_algorithms
from repro.simulation.experiments import format_table
from repro.tasks.generators import point_load

SIZES = (8, 16, 32, 64)
ALGORITHMS = ("round-down", "quasirandom", "algorithm1", "algorithm2")


def ascii_bar(value: float, scale: float, width: int = 40) -> str:
    filled = int(round(width * min(value / scale, 1.0)))
    return "#" * filled


def main() -> None:
    rows = []
    per_size = {}
    for n in SIZES:
        network = topologies.cycle(n)
        load = point_load(network, 32 * n)
        results = compare_algorithms(network, load, ALGORITHMS, seed=7)
        per_size[n] = {result.algorithm: result.final_max_min for result in results}
        for result in results:
            rows.append({
                "n": n,
                "algorithm": result.algorithm,
                "rounds (T)": result.rounds,
                "final max-min": result.final_max_min,
            })

    print("Ring networks, 32 tokens per node initially all on node 0\n")
    print(format_table(rows))

    bound = theorem3_discrepancy_bound(2, 1.0)
    scale = max(values["round-down"] for values in per_size.values())
    print(f"\nfinal max-min discrepancy (scale: {scale:.0f} tokens)\n")
    for n in SIZES:
        for algorithm in ("round-down", "algorithm1"):
            value = per_size[n][algorithm]
            print(f"  n={n:>3} {algorithm:<12} {value:6.1f} |{ascii_bar(value, scale)}")
        print()
    print(f"Algorithm 1 never exceeds its bound 2*d*w_max + 2 = {bound:.0f}, "
          "while round-down grows linearly with the ring size.")


if __name__ == "__main__":
    main()
