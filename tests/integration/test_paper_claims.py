"""End-to-end integration tests of the paper's headline claims.

These tests run the full coupled pipeline (topology generation -> continuous
substrate -> discretization -> metrics) and assert the *qualitative* results
reported by the paper:

* Algorithm 1's final discrepancy is bounded by ``2 d w_max + 2`` on every
  graph class of Tables 1 and 2, independently of ``n``;
* the classical round-down baseline degrades with the diameter whereas
  Algorithm 1 does not;
* the discrepancy of Algorithm 2 follows the ``sqrt(d log n)`` shape;
* the sufficient-initial-load condition of Theorems 3(2)/8(2) prevents any
  use of the infinite source.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm1 import theorem3_discrepancy_bound
from repro.core.algorithm2 import theorem8_max_avg_bound
from repro.network import topologies
from repro.simulation.engine import compare_algorithms, run_algorithm
from repro.tasks.generators import balanced_load, point_load


class TestTable1Shape:
    """Table 1: discrete diffusion processes on the four graph classes."""

    @pytest.mark.parametrize("family,builder", [
        ("expander", lambda: topologies.random_regular(32, 4, seed=1)),
        ("hypercube", lambda: topologies.hypercube(5)),
        ("torus", lambda: topologies.torus(6, dims=2)),
        ("arbitrary", lambda: topologies.random_geometric(32, seed=2)),
    ])
    def test_algorithm1_within_theorem_bound_on_all_classes(self, family, builder):
        network = builder()
        load = point_load(network, 32 * network.num_nodes)
        results = {r.algorithm: r for r in compare_algorithms(
            network, load, ["round-down", "algorithm1", "algorithm2"], seed=4)}
        bound = theorem3_discrepancy_bound(network.max_degree, 1.0)
        assert results["algorithm1"].final_max_min <= bound + 1e-9
        # Algorithm 2 follows the d/4 + O(sqrt(d log n)) shape (generous constant).
        assert results["algorithm2"].final_max_min <= 2 * theorem8_max_avg_bound(
            network.max_degree, network.num_nodes, constant=3.0)

    def test_round_down_degrades_with_n_but_algorithm1_does_not(self):
        finals = {"round-down": [], "algorithm1": []}
        for n in (16, 64):
            network = topologies.cycle(n)
            load = point_load(network, 32 * n)
            for result in compare_algorithms(network, load, ["round-down", "algorithm1"],
                                             seed=1):
                finals[result.algorithm].append(result.final_max_min)
        # Round-down at least doubles; Algorithm 1 stays within its constant bound.
        assert finals["round-down"][1] >= 2 * finals["round-down"][0]
        bound = theorem3_discrepancy_bound(2, 1.0)
        assert max(finals["algorithm1"]) <= bound + 1e-9


class TestTable2Shape:
    """Table 2: the matching models."""

    @pytest.mark.parametrize("kind", ["periodic-matching", "random-matching"])
    def test_flow_imitation_bounded_in_matching_models(self, kind):
        network = topologies.hypercube(5)
        load = point_load(network, 32 * network.num_nodes)
        results = {r.algorithm: r for r in compare_algorithms(
            network, load,
            ["matching-round-down", "matching-randomized", "algorithm1", "algorithm2"],
            continuous_kind=kind, seed=7)}
        bound = theorem3_discrepancy_bound(network.max_degree, 1.0)
        assert results["algorithm1"].final_max_min <= bound + 1e-9
        assert results["algorithm2"].final_max_min <= 2 * theorem8_max_avg_bound(
            network.max_degree, network.num_nodes, constant=3.0)
        # Every algorithm ran for the same number of rounds (the balancing time T).
        assert len({r.rounds for r in results.values()}) == 1


class TestHeterogeneousSetting:
    """The general model: weighted tasks and node speeds (the paper's main novelty)."""

    def test_speed_proportional_balance_reached(self):
        network = topologies.random_regular(24, 4, seed=9).with_speeds(
            [1 + (i % 4) for i in range(24)])
        base = network.max_degree  # w_max = 1
        load = point_load(network, 24 * 16) + balanced_load(network, base)
        result = run_algorithm("algorithm1", network, initial_load=load, seed=2)
        assert not result.used_infinite_source
        bound = theorem3_discrepancy_bound(network.max_degree, 1.0)
        assert result.final_max_min <= bound + 1e-9

    def test_weighted_tasks_follow_wmax_scaling(self):
        """The bound scales with w_max: heavier tasks allow proportionally larger discrepancy."""
        from repro.tasks.generators import weighted_assignment

        network = topologies.torus(5, dims=2)
        discrepancies = {}
        for w_max in (1, 4):
            assignment = weighted_assignment(network, num_tasks=400, max_weight=w_max,
                                             placement="uniform", seed=3)
            result = run_algorithm("algorithm1", network, assignment=assignment, seed=1)
            bound = theorem3_discrepancy_bound(network.max_degree, assignment.max_task_weight())
            assert result.final_max_avg_no_dummies <= bound + 1e-9
            discrepancies[w_max] = result.final_max_avg_no_dummies
        # Both stay within their own bound; the w_max=4 bound is four times larger.
        assert theorem3_discrepancy_bound(4, 4) > theorem3_discrepancy_bound(4, 1)


class TestSufficientInitialLoad:
    def test_infinite_source_unused_above_threshold(self):
        import math

        from repro.core.algorithm2 import theorem8_required_base_load

        network = topologies.hypercube(4)
        # Base load satisfying both Theorem 3(2) (d * w_max) and Theorem 8(2).
        base = max(network.max_degree,
                   int(math.ceil(theorem8_required_base_load(network.max_degree,
                                                             network.num_nodes))))
        load = point_load(network, 128) + balanced_load(network, base)
        for algorithm in ("algorithm1", "algorithm2"):
            result = run_algorithm(algorithm, network, initial_load=load, seed=5)
            assert not result.used_infinite_source, algorithm
            assert result.dummy_tokens == 0
