"""Cross-cutting integration tests: speeds x weights x substrates x algorithms.

The paper's selling point is generality — weighted tasks, heterogeneous
speeds, and any additive terminating substrate.  These tests exercise the
combinations that no single unit-test module covers together, always checking
the model-level invariants (conservation, speed-proportional balance,
theorem bounds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.continuous.dimension_exchange import (
    periodic_dimension_exchange,
    random_matching_exchange,
)
from repro.continuous.fos import FirstOrderDiffusion
from repro.core.algorithm1 import DeterministicFlowImitation, theorem3_discrepancy_bound
from repro.core.algorithm2 import RandomizedFlowImitation
from repro.network import topologies
from repro.simulation.engine import run_algorithm
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import (
    balanced_load,
    point_load,
    random_integer_speeds,
    weighted_assignment,
)
from repro.tasks.load import balanced_allocation, max_avg_discrepancy, max_min_discrepancy
from repro.tasks.task import TaskFactory


def heterogeneous_network(seed=3, n=20, degree=4, max_speed=4):
    base = topologies.random_regular(n, degree, seed=seed)
    return base.with_speeds(random_integer_speeds(base, max_speed=max_speed, seed=seed + 1))


def pad_with_base_load(network, assignment, level):
    factory = TaskFactory(start_id=10**8)
    for node, count in enumerate(balanced_load(network, level)):
        for task in factory.create_many(int(count), weight=1.0, origin=node):
            assignment.add(node, task)


class TestWeightedTasksOnMatchingSubstrates:
    @pytest.mark.parametrize("substrate", ["periodic", "random"])
    def test_algorithm1_weighted_speeds_matching(self, substrate):
        network = heterogeneous_network()
        assignment = weighted_assignment(network, num_tasks=300, max_weight=3,
                                         placement="uniform", seed=11)
        w_max = assignment.max_task_weight()
        pad_with_base_load(network, assignment, int(np.ceil(network.max_degree * w_max)))
        if substrate == "periodic":
            continuous = periodic_dimension_exchange(network, assignment.loads())
        else:
            continuous = random_matching_exchange(network, assignment.loads(), seed=5)
        balancer = DeterministicFlowImitation(continuous, assignment)
        balancer.run_until_continuous_balanced(max_rounds=100_000)
        assert not balancer.used_infinite_source
        bound = theorem3_discrepancy_bound(network.max_degree, w_max)
        assert max_min_discrepancy(balancer.loads(), network) <= bound + 1e-9

    def test_tokens_algorithm2_on_matching_with_speeds(self):
        network = heterogeneous_network(seed=9)
        loads = point_load(network, 40 * network.num_nodes) + balanced_load(network, 8)
        assignment = TaskAssignment.from_unit_loads(network, loads)
        continuous = periodic_dimension_exchange(network, assignment.loads())
        balancer = RandomizedFlowImitation(continuous, assignment, seed=7)
        balancer.run_until_continuous_balanced(max_rounds=100_000)
        # Final loads approach the speed-proportional allocation.
        target = balanced_allocation(balancer.original_weight, network)
        deviation = np.abs(balancer.loads(include_dummies=False) - target) / network.speeds
        assert deviation.max() <= 3 * theorem3_discrepancy_bound(network.max_degree, 1.0)


class TestSpeedProportionality:
    def test_fast_nodes_end_with_proportionally_more_load(self):
        """A node with twice the speed ends with roughly twice the load."""
        network = topologies.cycle(8).with_speeds([1, 2, 1, 2, 1, 2, 1, 2])
        loads = point_load(network, 8 * 60) + balanced_load(network, 2)
        assignment = TaskAssignment.from_unit_loads(network, loads)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        balancer.run_until_continuous_balanced(max_rounds=100_000)
        final = balancer.loads()
        slow = final[network.speeds == 1].mean()
        fast = final[network.speeds == 2].mean()
        assert fast > 1.5 * slow

    def test_engine_run_with_speeds_and_weights(self):
        network = heterogeneous_network(seed=13)
        assignment = weighted_assignment(network, num_tasks=250, max_weight=4,
                                         placement="proportional", seed=17)
        result = run_algorithm("algorithm1", network, assignment=assignment, seed=2)
        bound = theorem3_discrepancy_bound(network.max_degree, result.max_task_weight)
        assert result.final_max_avg_no_dummies <= bound + 1e-9
        # The reported total weight is the original (non-dummy) workload, which is
        # conserved even though the assignment object was mutated by the run.
        assert result.total_weight == pytest.approx(
            assignment.total_weight(include_dummies=False))


class TestMakespanImprovement:
    @pytest.mark.parametrize("algorithm", ["algorithm1", "algorithm2", "excess-tokens",
                                           "quasirandom"])
    def test_makespan_strictly_improves_from_hot_spot(self, algorithm):
        network = topologies.torus(6, dims=2)
        loads = point_load(network, 36 * 32)
        before = max_avg_discrepancy(loads, network)
        result = run_algorithm(algorithm, network, initial_load=loads, seed=4)
        assert result.final_max_avg < before / 10

    def test_all_algorithms_conserve_reported_weight(self):
        network = topologies.hypercube(4)
        loads = point_load(network, 16 * 16)
        for algorithm in ("algorithm1", "algorithm2", "round-down", "excess-tokens"):
            result = run_algorithm(algorithm, network, initial_load=loads, seed=6)
            assert result.total_weight == pytest.approx(16.0 * 16)
