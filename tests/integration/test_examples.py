"""Every example script must run end-to-end without errors."""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def _subprocess_env() -> dict:
    """The examples import ``repro`` from ``src`` without being installed."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    return env


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.name)
def test_example_runs(script, tmp_path):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,  # any artefacts an example writes land in the temp dir
        env=_subprocess_env(),
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should print a report"
