"""Every example script must run end-to-end without errors."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda path: path.name)
def test_example_runs(script, tmp_path):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=tmp_path,  # any artefacts an example writes land in the temp dir
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should print a report"
