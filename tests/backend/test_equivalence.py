"""Backend equivalence: the array backend must be bit-identical to the object one.

The array backend is a pure re-representation — same algorithms, same
randomness, same trajectories.  These are seeded property tests: for every
(topology, algorithm, substrate, seed) instance the per-round load vectors,
the dummy-token distributions and the final discrepancies of the two
backends must match *exactly* (not approximately — any drift means the
backends are running different processes).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    ArrayDeterministicFlowImitation,
    ArrayRandomizedFlowImitation,
)
from repro.continuous.sos import SecondOrderDiffusion
from repro.core.algorithm1 import DeterministicFlowImitation
from repro.network import topologies
from repro.simulation.engine import (
    DIFFUSION_BASELINES,
    make_balancer,
    run_algorithm,
)
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import point_load, uniform_random_load

TOPOLOGIES = {
    "ring": lambda: topologies.cycle(12),
    "torus": lambda: topologies.torus(4, dims=2),
    "hypercube": lambda: topologies.hypercube(3),
}


def workload(network, seed):
    """A seeded integer workload mixing a hot spot with random background load."""
    load = uniform_random_load(network, 8 * network.num_nodes, seed=seed)
    return load + point_load(network, 4 * network.num_nodes)


def assert_roundwise_equal(object_balancer, array_balancer, rounds):
    """Advance both balancers in lockstep, demanding exact equality each round."""
    for round_index in range(rounds):
        object_balancer.advance()
        array_balancer.advance()
        assert np.array_equal(object_balancer.loads(), array_balancer.loads()), (
            f"loads diverged at round {round_index}")
        assert np.array_equal(
            object_balancer.loads(include_dummies=False),
            array_balancer.loads(include_dummies=False),
        ), f"real loads diverged at round {round_index}"
        assert np.array_equal(object_balancer.discrete_cumulative_flows(),
                              array_balancer.discrete_cumulative_flows())
    assert object_balancer.dummy_tokens_created == array_balancer.dummy_tokens_created
    assert object_balancer.used_infinite_source == array_balancer.used_infinite_source


class TestFlowImitationEquivalence:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("algorithm", ["algorithm1", "algorithm2"])
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_per_round_loads_match(self, topology, algorithm, seed):
        network = TOPOLOGIES[topology]()
        load = workload(network, seed)
        object_balancer = make_balancer(algorithm, network, initial_load=load,
                                        seed=seed, backend="object")
        array_balancer = make_balancer(algorithm, network, initial_load=load,
                                       seed=seed, backend="array")
        assert isinstance(array_balancer,
                          (ArrayDeterministicFlowImitation, ArrayRandomizedFlowImitation))
        assert_roundwise_equal(object_balancer, array_balancer, rounds=40)

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("algorithm", ["algorithm1", "algorithm2"])
    @pytest.mark.parametrize("continuous_kind", [
        "fos", "sos", "periodic-matching", "random-matching"])
    def test_full_run_trajectories_match(self, topology, algorithm, continuous_kind):
        network = TOPOLOGIES[topology]()
        load = workload(network, 3)
        results = {
            backend: run_algorithm(algorithm, network, initial_load=load,
                                   continuous_kind=continuous_kind, seed=3,
                                   record_trace=True, backend=backend)
            for backend in ("object", "array")
        }
        assert results["object"].trace_max_min == results["array"].trace_max_min
        assert results["object"].final_max_min == results["array"].final_max_min
        assert results["object"].final_max_avg == results["array"].final_max_avg
        assert (results["object"].final_max_min_no_dummies
                == results["array"].final_max_min_no_dummies)
        assert results["object"].dummy_tokens == results["array"].dummy_tokens

    def test_dummy_token_distribution_matches(self):
        """SOS with a large beta overshoots, forcing the infinite source.

        The per-node split between real and dummy tokens feeds back into the
        final (dummy-eliminated) loads, so it must match node by node — this
        exercises the array backend's run-length FIFO queues.
        """
        network = topologies.random_regular(30, 5, seed=4)
        loads = point_load(network, 3000)
        assignment = TaskAssignment.from_unit_loads(network, loads)
        object_balancer = DeterministicFlowImitation(
            SecondOrderDiffusion(network, assignment.loads(), beta=1.9), assignment)
        array_balancer = ArrayDeterministicFlowImitation(
            SecondOrderDiffusion(network, loads.astype(float), beta=1.9), loads)
        assert_roundwise_equal(object_balancer, array_balancer, rounds=60)
        assert object_balancer.dummy_tokens_created > 0, "instance must exercise dummies"
        assert np.array_equal(object_balancer.assignment.dummy_loads(),
                              array_balancer.dummy_loads())
        assert object_balancer.remove_dummies() == array_balancer.remove_dummies()
        assert np.array_equal(object_balancer.loads(), array_balancer.loads())

    def test_randomized_rng_streams_are_aligned(self):
        """Algorithm 2 must consume random draws in the object backend's order."""
        network = topologies.torus(4, dims=2)
        load = point_load(network, 16 * network.num_nodes)
        object_balancer = make_balancer(
            "algorithm2", network, initial_load=load, seed=99, backend="object")
        array_balancer = make_balancer(
            "algorithm2", network, initial_load=load, seed=99, backend="array")
        # Long horizon: a single out-of-order draw desynchronises everything after.
        assert_roundwise_equal(object_balancer, array_balancer, rounds=80)


class TestBaselineEquivalence:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("algorithm", sorted(DIFFUSION_BASELINES))
    @pytest.mark.parametrize("seed", [1, 5])
    def test_diffusion_baseline_loads_match(self, topology, algorithm, seed):
        network = TOPOLOGIES[topology]()
        load = workload(network, seed)
        object_balancer = make_balancer(algorithm, network, initial_load=load,
                                        seed=seed, backend="object")
        array_balancer = make_balancer(algorithm, network, initial_load=load,
                                       seed=seed, backend="array")
        for round_index in range(40):
            object_balancer.advance()
            array_balancer.advance()
            assert np.array_equal(object_balancer.loads(), array_balancer.loads()), (
                f"{algorithm} diverged at round {round_index}")
        assert object_balancer.went_negative == array_balancer.went_negative

    @pytest.mark.parametrize("algorithm", ["matching-round-down", "matching-randomized"])
    def test_matching_baselines_shared_across_backends(self, algorithm):
        network = topologies.cycle(12)
        load = workload(network, 2)
        results = {
            backend: run_algorithm(algorithm, network, initial_load=load,
                                   continuous_kind="random-matching", seed=2,
                                   rounds=30, record_trace=True, backend=backend)
            for backend in ("object", "array")
        }
        assert results["object"].trace_max_min == results["array"].trace_max_min


class TestDynamicEquivalence:
    @pytest.mark.parametrize("profile", ["burst", "churn", "poisson", "hotspot", "mixed"])
    @pytest.mark.parametrize("algorithm", ["algorithm1", "algorithm2", "excess-tokens"])
    def test_stream_trajectories_match(self, profile, algorithm):
        from repro.dynamic.events import make_event_generator
        from repro.dynamic.stream import run_stream

        def one(backend):
            network = topologies.torus(4, dims=2)
            load = uniform_random_load(network, 6 * network.num_nodes, seed=17)
            generator = make_event_generator(profile, network, 6, seed=17)
            return run_stream(algorithm, network, load, generator, rounds=50,
                              seed=17, backend=backend)

        object_result, array_result = one("object"), one("array")
        assert object_result.trace_max_min == array_result.trace_max_min
        assert object_result.trace_total_weight == array_result.trace_total_weight
        assert object_result.event_timeline == array_result.event_timeline
        # The resolved backend is (intentionally) recorded and differs.
        assert object_result.extra.pop("backend") == "object"
        assert array_result.extra.pop("backend") == "array"
        object_result.extra.pop("backend_reason")
        array_result.extra.pop("backend_reason")
        assert object_result.extra == array_result.extra
        assert object_result.dummy_tokens == array_result.dummy_tokens
