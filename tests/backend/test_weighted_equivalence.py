"""Weighted columnar backend: bit-identical to the object backend.

The columnar weighted state (sorted weight buckets + run-length queues) is a
pure re-representation of a weighted ``TaskAssignment``: same Algorithm 1,
same greedy while-loop, same dummy semantics.  These tests demand *exact*
equality — per-round load vectors, cumulative flows, dummy distributions —
across topologies, selection policies and substrates, plus the weighted
streaming paths (fast O(n) re-coupling included).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import ArrayWeightedDeterministicFlowImitation
from repro.backend.weighted import WeightedRunState, _take_count
from repro.continuous.fos import FirstOrderDiffusion
from repro.continuous.sos import SecondOrderDiffusion
from repro.core.algorithm1 import DeterministicFlowImitation
from repro.core.flow_imitation import TaskSelectionPolicy
from repro.exceptions import ExperimentError, TaskError
from repro.network import topologies
from repro.simulation.engine import make_balancer, make_schedule, run_algorithm
from repro.tasks.generators import weighted_assignment
from repro.tasks.weighted import WeightedLoads, weighted_loads_from_task_counts

TOPOLOGIES = {
    "ring": lambda: topologies.cycle(12),
    "torus": lambda: topologies.torus(4, dims=2),
    "hypercube": lambda: topologies.hypercube(3),
}


def paired_assignments(network, seed, num_tasks=None, max_weight=4, placement="uniform"):
    """Two identical weighted assignments (the object run mutates its copy)."""
    num_tasks = num_tasks or 16 * network.num_nodes
    build = lambda: weighted_assignment(network, num_tasks=num_tasks,
                                        max_weight=max_weight,
                                        placement=placement, seed=seed)
    return build(), build()


def assert_roundwise_equal(object_balancer, array_balancer, rounds):
    for round_index in range(rounds):
        object_balancer.advance()
        array_balancer.advance()
        assert np.array_equal(object_balancer.loads(), array_balancer.loads()), (
            f"loads diverged at round {round_index}")
        assert np.array_equal(
            object_balancer.loads(include_dummies=False),
            array_balancer.loads(include_dummies=False),
        ), f"real loads diverged at round {round_index}"
        assert np.array_equal(object_balancer.discrete_cumulative_flows(),
                              array_balancer.discrete_cumulative_flows())
    assert object_balancer.dummy_tokens_created == array_balancer.dummy_tokens_created
    assert object_balancer.used_infinite_source == array_balancer.used_infinite_source


class TestWeightedFlowImitationEquivalence:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("policy", sorted(TaskSelectionPolicy.ALL))
    @pytest.mark.parametrize("seed", [0, 7])
    def test_per_round_loads_match(self, topology, policy, seed):
        network = TOPOLOGIES[topology]()
        object_assignment, array_assignment = paired_assignments(network, seed)
        object_balancer = make_balancer("algorithm1", network,
                                        assignment=object_assignment,
                                        selection_policy=policy, backend="object")
        array_balancer = make_balancer("algorithm1", network,
                                       assignment=array_assignment,
                                       selection_policy=policy, backend="array")
        assert isinstance(array_balancer, ArrayWeightedDeterministicFlowImitation)
        assert array_balancer.w_max == object_balancer.w_max
        assert_roundwise_equal(object_balancer, array_balancer, rounds=40)

    def test_dummy_distribution_matches_on_overshooting_sos(self):
        """A large SOS beta forces the infinite source; the per-node real/dummy
        split must match node by node (exercises the weighted run queues)."""
        network = topologies.random_regular(30, 5, seed=4)
        object_assignment, array_assignment = paired_assignments(
            network, 1, num_tasks=600, max_weight=3, placement="point")
        object_balancer = DeterministicFlowImitation(
            SecondOrderDiffusion(network, object_assignment.loads(), beta=1.9),
            object_assignment)
        array_balancer = ArrayWeightedDeterministicFlowImitation(
            SecondOrderDiffusion(network, array_assignment.loads(), beta=1.9),
            array_assignment)
        assert_roundwise_equal(object_balancer, array_balancer, rounds=60)
        assert object_balancer.dummy_tokens_created > 0, "instance must exercise dummies"
        assert np.array_equal(object_balancer.assignment.dummy_loads(),
                              array_balancer.dummy_loads())
        assert object_balancer.remove_dummies() == array_balancer.remove_dummies()
        assert np.array_equal(object_balancer.loads(), array_balancer.loads())

    def test_full_run_through_engine_matches(self):
        network = topologies.torus(4, dims=2)
        results = {}
        for backend in ("object", "array"):
            assignment = weighted_assignment(network, num_tasks=300, max_weight=5,
                                             placement="uniform", seed=9)
            results[backend] = run_algorithm("algorithm1", network,
                                             assignment=assignment, seed=9,
                                             record_trace=True, backend=backend)
        assert results["object"].trace_max_min == results["array"].trace_max_min
        assert results["object"].final_max_min == results["array"].final_max_min
        assert (results["object"].final_max_avg_no_dummies
                == results["array"].final_max_avg_no_dummies)
        assert results["object"].dummy_tokens == results["array"].dummy_tokens
        assert results["object"].extra["backend"] == "object"
        assert results["array"].extra["backend"] == "array"

    def test_auto_takes_columnar_path_and_records_it(self):
        network = topologies.torus(4, dims=2)
        assignment = weighted_assignment(network, num_tasks=200, max_weight=4,
                                         placement="uniform", seed=3)
        result = run_algorithm("algorithm1", network, assignment=assignment, seed=3)
        assert result.extra["backend"] == "array"
        assert "weighted" in result.extra["backend_reason"]

    def test_weighted_loads_workload_matches_object_materialisation(self):
        network = topologies.hypercube(3)
        weighted = weighted_loads_from_task_counts([10] * network.num_nodes,
                                                   max_weight=4, seed=5)
        results = {
            backend: run_algorithm("algorithm1", network, weighted_load=weighted,
                                   seed=5, record_trace=True, backend=backend)
            for backend in ("object", "array")
        }
        assert results["object"].trace_max_min == results["array"].trace_max_min
        assert results["object"].total_weight == float(weighted.total_weight())

    def test_algorithm2_rejects_weighted_workloads(self):
        network = topologies.cycle(6)
        weighted = weighted_loads_from_task_counts([4] * 6, max_weight=3, seed=1)
        with pytest.raises(ExperimentError):
            make_balancer("algorithm2", network, weighted_load=weighted,
                          backend="array")


class TestWeightedRecoupling:
    @pytest.mark.parametrize("backend", ["object", "array"])
    @pytest.mark.parametrize("kind", ["fos", "random-matching"])
    def test_weighted_recouple_equals_fresh_build(self, backend, kind):
        network = topologies.torus(4, dims=2)
        first = weighted_loads_from_task_counts([6] * network.num_nodes, 4, seed=0)
        second = weighted_loads_from_task_counts([9] * network.num_nodes, 3, seed=1)

        schedule = make_schedule(kind, network, seed=5)
        recoupled = make_balancer("algorithm1", network, weighted_load=first,
                                  continuous_kind=kind, schedule=schedule,
                                  seed=5, backend=backend)
        recoupled.run(10)
        recoupled.recouple(second, seed=77)
        assert recoupled.w_max == max(1.0, float(second.max_weight()))
        assert recoupled.original_weight == float(second.total_weight())

        fresh_schedule = make_schedule(kind, network, seed=77)
        fresh = make_balancer("algorithm1", network, weighted_load=second,
                              continuous_kind=kind, schedule=fresh_schedule,
                              seed=77, backend=backend)
        for _ in range(15):
            recoupled.advance()
            fresh.advance()
            assert np.array_equal(recoupled.loads(), fresh.loads())

    def test_unit_array_backend_rejects_weighted_recouple(self):
        from repro.exceptions import ProcessError

        network = topologies.cycle(6)
        balancer = make_balancer("algorithm1", network, initial_load=[4] * 6,
                                 backend="array")
        weighted = weighted_loads_from_task_counts([2] * 6, max_weight=3, seed=2)
        with pytest.raises(ProcessError):
            balancer.recouple(weighted)


class TestWeightedStreams:
    @pytest.mark.parametrize("profile", ["burst", "poisson", "churn"])
    def test_stream_trajectories_match(self, profile):
        from repro.dynamic.events import make_event_generator
        from repro.dynamic.stream import run_stream

        def one(backend):
            network = topologies.torus(4, dims=2)
            weighted = weighted_loads_from_task_counts(
                [6] * network.num_nodes, max_weight=4, seed=17)
            generator = make_event_generator(profile, network, 6, seed=17)
            return run_stream("algorithm1", network, weighted, generator,
                              rounds=50, seed=17, backend=backend)

        object_result, array_result = one("object"), one("array")
        assert object_result.trace_max_min == array_result.trace_max_min
        assert object_result.trace_total_weight == array_result.trace_total_weight
        assert object_result.event_timeline == array_result.event_timeline
        assert object_result.dummy_tokens == array_result.dummy_tokens
        assert object_result.extra["backend"] == "object"
        assert array_result.extra["backend"] == "array"
        assert array_result.extra["recouplings"] == object_result.extra["recouplings"]

    def test_weighted_stream_takes_fast_recoupling_path(self):
        from repro.dynamic.events import ARRIVAL, DynamicEvent, ScheduledEvents
        from repro.dynamic.stream import StreamingEngine

        network = topologies.torus(4, dims=2)
        weighted = weighted_loads_from_task_counts([5] * network.num_nodes, 3, seed=2)
        generator = ScheduledEvents({
            3: [DynamicEvent(ARRIVAL, node=0, tokens=10)],
            7: [DynamicEvent(ARRIVAL, node=2, tokens=5)],
        })
        engine = StreamingEngine("algorithm1", network, weighted, generator, seed=2)
        assert engine.weighted and engine.backend == "array"
        total_before = engine.total_real_load()
        for _ in range(10):
            engine.step()
        assert engine.recouplings == 2
        assert engine.fast_recouplings == 2
        assert engine.total_real_load() == total_before + 15

    def test_weighted_stream_requires_algorithm1(self):
        from repro.dynamic.events import ScheduledEvents
        from repro.dynamic.stream import StreamingEngine

        network = topologies.cycle(6)
        weighted = weighted_loads_from_task_counts([3] * 6, max_weight=2, seed=0)
        with pytest.raises(ExperimentError):
            StreamingEngine("algorithm2", network, weighted, ScheduledEvents({}))


class TestWeightedLoadsRepresentation:
    def test_roundtrip_through_assignment(self):
        network = topologies.cycle(5)
        weighted = weighted_loads_from_task_counts([3, 0, 2, 5, 1], 4, seed=8)
        assignment = weighted.to_assignment(network)
        back = WeightedLoads.from_assignment(assignment)
        assert back.buckets() == weighted.buckets()
        assert np.array_equal(back.load_vector(), weighted.load_vector())
        assert back.max_weight() == weighted.max_weight()
        assert back.num_tasks() == weighted.num_tasks()

    def test_rejects_non_integer_weights(self):
        from repro.tasks.assignment import TaskAssignment
        from repro.tasks.task import Task

        network = topologies.cycle(4)
        assignment = TaskAssignment(network)
        assignment.add(0, Task(task_id=0, weight=1.5))
        with pytest.raises(TaskError):
            WeightedLoads.from_assignment(assignment)

    def test_validates_csr_structure(self):
        with pytest.raises(TaskError):
            WeightedLoads([2, 1], [1, 1], [0, 2])  # weights not increasing
        with pytest.raises(TaskError):
            WeightedLoads([1], [0], [0, 1])  # empty bucket
        with pytest.raises(TaskError):
            WeightedLoads([1], [1], [1, 1])  # offsets must start at 0

    def test_take_count_matches_scalar_while_loop(self):
        """The closed-form batch must equal the one-task-at-a-time loop."""
        rng = np.random.default_rng(0)
        for _ in range(500):
            residual = float(rng.uniform(0, 40))
            w_max = float(rng.integers(1, 6))
            weight = float(rng.integers(1, 6))
            cap = int(rng.integers(0, 12))
            committed = float(rng.integers(0, 10))
            threshold = w_max + 1e-9
            expected = 0
            scalar_committed = committed
            while expected < cap and residual - scalar_committed > threshold:
                expected += 1
                scalar_committed += weight
            assert _take_count(residual, committed, weight, cap, threshold) == expected


class TestWeightedRunState:
    def test_fifo_takes_preserve_queue_order(self):
        state = WeightedRunState.from_weighted_loads(
            WeightedLoads.from_buckets([{1: 2, 3: 1}, {}]))
        takes = state.plan_takes(0, residual=10.0, threshold=3.0 + 1e-9,
                                 policy=TaskSelectionPolicy.FIFO)
        # Canonical order is ascending weight: two 1s first, then the 3.
        assert takes == [[2, 1, False], [1, 3, False]]
        state.deliver(1, takes)
        assert state.loads.tolist() == [0, 5]

    def test_remove_dummies_drops_only_dummies(self):
        state = WeightedRunState.from_weighted_loads(
            WeightedLoads.from_buckets([{2: 3}]))
        state.deliver_dummies(0, 4)
        assert state.loads.tolist() == [10]
        assert state.remove_dummies() == 4
        assert state.loads.tolist() == [6]
        assert state.dummy_counts.tolist() == [0]


def single_class_loads(network, weight, total_tasks, seed=3, placement="uniform"):
    """A workload whose tasks all share one weight class."""
    from repro.tasks.generators import point_load, uniform_random_load

    if placement == "point":
        counts = point_load(network, total_tasks)
    else:
        counts = uniform_random_load(network, total_tasks, seed=seed)
    return WeightedLoads.from_buckets(
        [{weight: int(c)} if c else {} for c in counts])


def paired_single_class(network, weight, total_tasks, substrate=FirstOrderDiffusion,
                        policy=TaskSelectionPolicy.FIFO, **substrate_kwargs):
    weighted = single_class_loads(network, weight, total_tasks)
    reference = weighted.load_vector().astype(float)
    object_balancer = DeterministicFlowImitation(
        substrate(network, reference, **substrate_kwargs),
        weighted.to_assignment(network), selection_policy=policy)
    array_balancer = ArrayWeightedDeterministicFlowImitation(
        substrate(network, reference, **substrate_kwargs), weighted,
        selection_policy=policy)
    return object_balancer, array_balancer


class TestSingleClassFastPath:
    """The vectorised single-weight-class round kernel (scatter-adds, no loop)."""

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("weight", [1, 2, 5])
    def test_bit_identical_to_object_backend(self, topology, weight):
        network = TOPOLOGIES[topology]()
        object_balancer, array_balancer = paired_single_class(
            network, weight, 20 * network.num_nodes)
        assert_roundwise_equal(object_balancer, array_balancer, rounds=40)

    @pytest.mark.parametrize("policy", sorted(TaskSelectionPolicy.ALL))
    def test_bit_identical_across_policies(self, policy):
        network = topologies.torus(4, dims=2)
        object_balancer, array_balancer = paired_single_class(
            network, 3, 20 * network.num_nodes, policy=policy)
        assert_roundwise_equal(object_balancer, array_balancer, rounds=40)

    def test_fast_path_actually_engages(self):
        """After a round with transfers the queues are implicit (dropped)."""
        network = topologies.torus(4, dims=2)
        _, array_balancer = paired_single_class(network, 5,
                                                20 * network.num_nodes)
        state = array_balancer._state
        assert state.single_class == 5
        for _ in range(10):
            array_balancer.advance()
        assert state._queues is None, "fast path should keep queues implicit"
        assert array_balancer.dummy_tokens_created == 0

    def test_dummy_fallback_stays_bit_identical(self):
        """An overshooting SOS forces dummies: the fast path must hand the
        round to the queue-faithful path and keep exact equality."""
        network = topologies.random_regular(30, 5, seed=4)
        weighted = single_class_loads(network, 2, 300, placement="point")
        reference = weighted.load_vector().astype(float)
        object_balancer = DeterministicFlowImitation(
            SecondOrderDiffusion(network, reference, beta=1.9),
            weighted.to_assignment(network))
        array_balancer = ArrayWeightedDeterministicFlowImitation(
            SecondOrderDiffusion(network, reference, beta=1.9), weighted)
        assert_roundwise_equal(object_balancer, array_balancer, rounds=60)
        assert array_balancer.dummy_tokens_created > 0, \
            "instance must exercise the fallback"
        assert array_balancer._state.single_class is None
        # dummy elimination restores the single class (and the fast path)
        assert object_balancer.remove_dummies() == array_balancer.remove_dummies()
        assert array_balancer._state.single_class == 2

    def test_mixed_weights_take_the_general_path(self):
        network = topologies.torus(4, dims=2)
        weighted = weighted_loads_from_task_counts(
            [8] * network.num_nodes, max_weight=4, seed=1)
        balancer = ArrayWeightedDeterministicFlowImitation(
            FirstOrderDiffusion(network, weighted.load_vector().astype(float)),
            weighted)
        assert balancer._state.single_class is None
        for _ in range(10):
            balancer.advance()
        assert balancer._state._queues is not None


class TestWeightedStateCaches:
    """Satellites: cached max weight / bucket arrays, clean-queue compaction."""

    def test_max_run_weight_is_cached_and_maintained(self):
        state = WeightedRunState.from_weighted_loads(
            WeightedLoads.from_buckets([{2: 3}, {5: 1}, {}]))
        assert state.max_run_weight == 5
        assert state.max_weight() == 5
        takes = state.take_front(1, 1)
        state.deliver(0, takes)             # moving the heavy task keeps the max
        assert state.max_run_weight == 5
        state.deliver(2, [[1, 7, False]])   # a heavier delivery raises it
        assert state.max_run_weight == 7

    def test_max_run_weight_recomputed_after_unit_dummy_elimination(self):
        state = WeightedRunState.from_weighted_loads(
            WeightedLoads.from_buckets([{1: 2}, {}]))
        state.deliver_dummies(1, 3)
        assert state.max_run_weight == 1
        state.remove_dummies()
        assert state.max_run_weight == 1
        empty = WeightedRunState.from_weighted_loads(
            WeightedLoads.from_buckets([{}, {}]))
        empty.deliver_dummies(0, 2)
        assert empty.remove_dummies() == 2
        assert empty.max_run_weight == 0

    def test_remove_dummies_is_a_no_op_on_clean_queues(self):
        state = WeightedRunState.from_weighted_loads(
            WeightedLoads.from_buckets([{2: 3}, {3: 1}, {1: 4}]))
        queues = state._ensure_queues()
        untouched = [queues[0], queues[2]]
        state.deliver_dummies(1, 2)
        assert state.remove_dummies() == 2
        # clean queues keep their identity (no rebuild), dirty ones compacted
        assert state._queues[0] is untouched[0]
        assert state._queues[2] is untouched[1]
        assert all(not run[2] for run in state._queues[1])

    def test_real_buckets_cached_until_mutation_and_copies_returned(self):
        state = WeightedRunState.from_weighted_loads(
            WeightedLoads.from_buckets([{2: 3, 4: 1}, {1: 2}]))
        first = state.real_buckets()
        assert state._buckets_cache is not None
        first[0][2] = 999                       # mutating the copy is harmless
        assert state.real_buckets()[0] == {2: 3, 4: 1}
        state.deliver(1, [[1, 4, False]])       # mutation invalidates the cache
        assert state._buckets_cache is None
        assert state.real_buckets()[1] == {1: 2, 4: 1}

    def test_real_buckets_arithmetic_in_compact_mode(self):
        """Single-class buckets come straight from the load vector — the
        queues stay implicit even after querying them."""
        network = topologies.torus(4, dims=2)
        _, array_balancer = paired_single_class(network, 4,
                                                20 * network.num_nodes)
        for _ in range(5):
            array_balancer.advance()
        state = array_balancer._state
        assert state._queues is None
        buckets = state.real_buckets()
        assert state._queues is None, "bucket query must not materialise queues"
        loads = state.load_vector()
        for node, bucket in enumerate(buckets):
            assert sum(w * c for w, c in bucket.items()) == loads[node]
            assert set(bucket) <= {4}

    def test_single_class_streams_match_object_backend(self):
        """End-to-end: a single-class weighted stream stays trajectory-equal
        (the stream syncs through the cached/arithmetic buckets each round)."""
        from repro.dynamic.events import make_event_generator
        from repro.dynamic.stream import run_stream

        def one(backend):
            network = topologies.torus(4, dims=2)
            weighted = single_class_loads(network, 3, 8 * network.num_nodes)
            generator = make_event_generator("burst", network, 6, seed=17)
            return run_stream("algorithm1", network, weighted, generator,
                              rounds=40, seed=17, backend=backend)

        object_result, array_result = one("object"), one("array")
        assert object_result.trace_max_min == array_result.trace_max_min
        assert object_result.trace_total_weight == array_result.trace_total_weight
