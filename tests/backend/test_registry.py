"""Backend registry: resolution rules, fallbacks and API threading."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import (
    ArrayBackend,
    ArrayDeterministicFlowImitation,
    ArrayRandomizedFlowImitation,
    ObjectBackend,
    TokenCountState,
    get_backend,
    resolve_backend_name,
)
from repro.core.algorithm1 import DeterministicFlowImitation
from repro.core.algorithm2 import RandomizedFlowImitation
from repro.core.flow_imitation import FlowCoupledBalancer
from repro.exceptions import ExperimentError, TaskError
from repro.network import topologies
from repro.simulation.engine import make_balancer, run_algorithm
from repro.simulation.scenario import DynamicScenario, Scenario
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import point_load
from repro.tasks.task import Task


class TestResolution:
    def test_auto_prefers_array_for_token_loads(self):
        assert resolve_backend_name("auto") == "array"
        assert resolve_backend_name("array") == "array"
        assert resolve_backend_name("object") == "object"

    def test_integer_weight_assignments_take_the_columnar_path(self):
        network = topologies.cycle(4)
        assignment = TaskAssignment.from_unit_loads(network, [2, 2, 2, 2])
        assert resolve_backend_name("auto", assignment=assignment) == "array"
        assert resolve_backend_name("array", assignment=assignment) == "array"
        assert resolve_backend_name("object", assignment=assignment) == "object"

    def test_non_integer_weights_fall_back_to_object(self):
        from repro.backend import resolve_backend

        network = topologies.cycle(4)
        assignment = TaskAssignment(network)
        assignment.add(0, Task(task_id=0, weight=2.5))
        choice = resolve_backend("auto", assignment=assignment)
        assert choice.name == "object"
        assert "non-integer" in choice.reason

    def test_dummy_carrying_assignments_fall_back_to_object(self):
        network = topologies.cycle(4)
        assignment = TaskAssignment(network)
        assignment.add(0, Task(task_id=0, weight=1.0))
        assignment.add(1, Task(task_id=1, weight=1.0, is_dummy=True))
        assert resolve_backend_name("auto", assignment=assignment) == "object"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExperimentError):
            resolve_backend_name("columnar")
        with pytest.raises(ExperimentError):
            make_balancer("algorithm1", topologies.cycle(4),
                          initial_load=[1, 1, 1, 1], backend="columnar")

    def test_get_backend_instances(self):
        assert isinstance(get_backend("object"), ObjectBackend)
        assert isinstance(get_backend("array"), ArrayBackend)
        assert isinstance(get_backend("auto"), ArrayBackend)


class TestMakeBalancerThreading:
    def test_array_backend_builds_array_classes(self):
        network = topologies.cycle(6)
        load = point_load(network, 12)
        assert isinstance(
            make_balancer("algorithm1", network, initial_load=load, backend="array"),
            ArrayDeterministicFlowImitation)
        assert isinstance(
            make_balancer("algorithm2", network, initial_load=load, backend="array"),
            ArrayRandomizedFlowImitation)

    def test_object_backend_builds_object_classes(self):
        network = topologies.cycle(6)
        load = point_load(network, 12)
        assert isinstance(
            make_balancer("algorithm1", network, initial_load=load, backend="object"),
            DeterministicFlowImitation)
        assert isinstance(
            make_balancer("algorithm2", network, initial_load=load, backend="object"),
            RandomizedFlowImitation)

    def test_integer_weighted_assignment_builds_columnar_balancer(self):
        """Integer weights no longer fall back: "auto"/"array" go columnar."""
        from repro.backend import ArrayWeightedDeterministicFlowImitation

        network = topologies.cycle(6)
        assignment = TaskAssignment(network)
        assignment.add(0, Task(task_id=0, weight=3.0))
        assignment.add(1, Task(task_id=1, weight=1.0))
        for backend in ("auto", "array"):
            balancer = make_balancer("algorithm1", network, assignment=assignment,
                                     backend=backend)
            assert isinstance(balancer, ArrayWeightedDeterministicFlowImitation)
            assert balancer.w_max == 3.0

    def test_fractional_weight_assignment_falls_back_to_object(self):
        """Non-integer weights must silently keep using task objects."""
        network = topologies.cycle(6)
        assignment = TaskAssignment(network)
        assignment.add(0, Task(task_id=0, weight=2.5))
        assignment.add(1, Task(task_id=1, weight=1.0))
        balancer = make_balancer("algorithm1", network, assignment=assignment,
                                 backend="array")
        assert isinstance(balancer, DeterministicFlowImitation)
        assert balancer.w_max == 2.5

    def test_both_backends_are_flow_coupled(self):
        network = topologies.cycle(6)
        load = point_load(network, 12)
        for backend in ("object", "array"):
            balancer = make_balancer("algorithm1", network, initial_load=load,
                                     backend=backend)
            assert isinstance(balancer, FlowCoupledBalancer)

    def test_run_algorithm_rejects_fractional_loads_on_both_backends(self):
        network = topologies.cycle(4)
        for backend in ("object", "array"):
            with pytest.raises(ExperimentError):
                run_algorithm("algorithm1", network, initial_load=[1.5, 0, 0, 0],
                              backend=backend)


class TestScenarioThreading:
    def test_scenario_roundtrips_backend_field(self):
        scenario = Scenario(name="s", algorithm="algorithm1", backend="array")
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_dynamic_scenario_validates_backend(self):
        with pytest.raises(ExperimentError):
            DynamicScenario(name="s", algorithm="algorithm1", backend="frobnicate")


class TestTokenCountState:
    def test_fifo_pop_splits_runs(self):
        state = TokenCountState(np.array([5, 0]))
        state.materialize_queues()
        runs, missing = state.pop_front(0, 3)
        assert runs == [[3, False]] and missing == 0
        state.push(1, runs)
        state.push_dummies(1, 2)
        assert state.counts.tolist() == [2, 5]
        assert state.dummy_counts.tolist() == [0, 2]
        assert state.dummy_total == 2

    def test_pop_reports_shortfall(self):
        state = TokenCountState(np.array([2]))
        state.materialize_queues()
        runs, missing = state.pop_front(0, 5)
        assert sum(count for count, _ in runs) == 2
        assert missing == 3

    def test_queue_rebuild_forbidden_with_dummies(self):
        state = TokenCountState(np.array([1, 1]))
        state.materialize_queues()
        state.push_dummies(0, 1)
        with pytest.raises(TaskError):
            state.drop_queues()
        assert state.remove_dummies() == 1
        assert state.counts.tolist() == [1, 1]

    def test_rejects_negative_counts(self):
        with pytest.raises(TaskError):
            TokenCountState(np.array([1, -1]))
