"""Edge-keyed counter RNG for Algorithm 2 and randomized-rounding diffusion.

In ``rng_mode="counter"`` every rounding draw is a pure function of
``(seed, round, edge)`` — Philox keyed on ``(seed, round)`` with one score
per edge (:mod:`repro.counter_rng`) — so the draws are independent of the
order the edges are visited in, which is what lets the array kernels batch
the whole round.  These tests pin down:

* determinism: same seed => same trajectory; different seeds and the
  sequential mode differ;
* permutation invariance: processing the per-round send requests (or edges)
  in a shuffled order yields the *same* load trajectory in counter mode,
  while the sequential per-draw stream is order-sensitive;
* bit-identity between the scalar counter-mode references
  (:class:`RandomizedFlowImitation`, :class:`RandomizedRoundingDiffusion`)
  and the vectorised kernels (:class:`ArrayRandomizedFlowImitation`,
  :class:`ArrayRandomizedRoundingDiffusion`) across topologies and
  substrates;
* the engine plumbing: ``rng_mode`` threading through
  ``make_balancer``/``run_algorithm``/``run_stream`` and the recorded
  ``backend_reason``.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.backend.baselines import ArrayRandomizedRoundingDiffusion
from repro.backend.flow import ArrayRandomizedFlowImitation
from repro.continuous.fos import FirstOrderDiffusion
from repro.continuous.sos import SecondOrderDiffusion
from repro.core.algorithm2 import RandomizedFlowImitation
from repro.counter_rng import RNG_MODES, edge_scores
from repro.discrete.baselines.diffusion import RandomizedRoundingDiffusion
from repro.exceptions import ExperimentError, ProcessError
from repro.network import topologies
from repro.simulation.engine import make_balancer, run_algorithm
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import point_load, uniform_random_load

TOPOLOGIES = {
    "torus": lambda: topologies.torus(5, dims=2),
    "random-regular": lambda: topologies.random_regular(30, 5, seed=4),
    "ring": lambda: topologies.cycle(12),
}


def workload(network, seed=2):
    return uniform_random_load(network, 30 * network.num_nodes, seed=seed) \
        + point_load(network, 10 * network.num_nodes)


def trajectory(balancer, rounds):
    trace = []
    for _ in range(rounds):
        balancer.advance()
        trace.append(balancer.loads())
    return np.array(trace)


def make_algorithm2(network, load, seed, rng_mode, cls=RandomizedFlowImitation):
    continuous = FirstOrderDiffusion(network, np.asarray(load, dtype=float))
    if cls is ArrayRandomizedFlowImitation:
        return cls(continuous, load, seed=seed, rng_mode=rng_mode)
    assignment = TaskAssignment.from_unit_loads(network, load)
    return cls(continuous, assignment, seed=seed, rng_mode=rng_mode)


class ReorderedRandomized(RandomizedFlowImitation):
    """Algorithm 2 visiting its per-round send requests in a shuffled order.

    The shuffle is deterministic per round so two instances of this class
    agree with each other; what the permutation test checks is agreement
    with the *canonically ordered* reference.
    """

    def _iter_requests(self, requests):
        entries = list(super()._iter_requests(requests))
        random.Random(self._round).shuffle(entries)
        return entries


class ShuffledEdgeRandomizedRounding(RandomizedRoundingDiffusion):
    """Scalar per-edge replay of randomized rounding in a shuffled edge order.

    Looks each edge's draw up by edge index (the counter-mode contract) while
    visiting the edges in a per-round shuffled order — bit-identical to the
    stock vectorised round if and only if the draws are order-free.
    """

    def _execute_round(self) -> None:
        net = self._net_continuous_flows()
        draws = self._rounding_draws()
        sent = np.zeros(net.size, dtype=np.int64)
        order = list(range(net.size))
        random.Random(self._round).shuffle(order)
        for edge in order:
            magnitude = abs(float(net[edge]))
            base = math.floor(magnitude)
            amount = int(base) + (1 if draws[edge] < magnitude - base else 0)
            sent[edge] = amount if net[edge] > 0 else -amount
        self._apply_net_moves(sent)


class SequentialPerEdgeDraws(RandomizedRoundingDiffusion):
    """Sequential-stream emulation consuming one draw per edge in shuffled order.

    This is what a reordered scalar implementation would do against the
    shared sequential generator — and why the sequential mode cannot be
    reordered or batched per edge.
    """

    def _execute_round(self) -> None:
        net = self._net_continuous_flows()
        sent = np.zeros(net.size, dtype=np.int64)
        order = list(range(net.size))
        random.Random(self._round).shuffle(order)
        for edge in order:
            magnitude = abs(float(net[edge]))
            base = math.floor(magnitude)
            amount = int(base) + (1 if self._rng.random() < magnitude - base else 0)
            sent[edge] = amount if net[edge] > 0 else -amount
        self._apply_net_moves(sent)


class TestAlgorithm2CounterDeterminism:
    def test_same_seed_same_trajectory(self):
        network = topologies.torus(4, dims=2)
        load = workload(network)
        runs = [trajectory(make_algorithm2(network, load, 11, "counter"), 30)
                for _ in range(2)]
        assert np.array_equal(runs[0], runs[1])

    def test_different_seeds_differ(self):
        network = topologies.torus(4, dims=2)
        load = workload(network)
        a = trajectory(make_algorithm2(network, load, 1, "counter"), 30)
        b = trajectory(make_algorithm2(network, load, 2, "counter"), 30)
        assert not np.array_equal(a, b)

    def test_counter_and_sequential_are_distinct_processes(self):
        network = topologies.torus(4, dims=2)
        load = workload(network)
        counter = trajectory(make_algorithm2(network, load, 1, "counter"), 30)
        sequential = trajectory(make_algorithm2(network, load, 1, "sequential"), 30)
        assert not np.array_equal(counter, sequential)

    def test_unknown_rng_mode_rejected(self):
        network = topologies.cycle(5)
        with pytest.raises(ProcessError):
            make_algorithm2(network, [2] * 5, 1, "quantum")
        with pytest.raises(ProcessError):
            make_algorithm2(network, [2] * 5, 1, "quantum",
                            cls=ArrayRandomizedFlowImitation)
        with pytest.raises(ExperimentError):
            run_algorithm("algorithm2", network, initial_load=[2] * 5,
                          rounds=3, rng_mode="quantum")
        assert RNG_MODES == ("sequential", "counter")


class TestAlgorithm2PermutationInvariance:
    def test_counter_trajectory_is_order_free(self):
        """Shuffled request iteration => identical physical load trajectory."""
        network = topologies.random_regular(20, 4, seed=3)
        load = workload(network)
        canonical = make_algorithm2(network, load, 5, "counter")
        shuffled = make_algorithm2(network, load, 5, "counter",
                                   cls=ReorderedRandomized)
        assert np.array_equal(trajectory(canonical, 30), trajectory(shuffled, 30))

    def test_sequential_trajectory_is_order_sensitive(self):
        """The same shuffle changes the draws — and the trajectory — in
        sequential mode, which is exactly why it cannot be vectorised."""
        network = topologies.random_regular(20, 4, seed=3)
        load = workload(network)
        canonical = make_algorithm2(network, load, 5, "sequential")
        shuffled = make_algorithm2(network, load, 5, "sequential",
                                   cls=ReorderedRandomized)
        assert not np.array_equal(trajectory(canonical, 30),
                                  trajectory(shuffled, 30))

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_vectorized_kernel_bit_identical_to_scalar_reference(self, topology):
        network = TOPOLOGIES[topology]()
        load = workload(network)
        scalar = make_algorithm2(network, load, 9, "counter")
        vectorized = make_algorithm2(network, load, 9, "counter",
                                     cls=ArrayRandomizedFlowImitation)
        for round_index in range(40):
            scalar.advance()
            vectorized.advance()
            assert np.array_equal(scalar.loads(), vectorized.loads()), (
                f"{topology} diverged at round {round_index}")
            assert np.array_equal(scalar.loads(include_dummies=False),
                                  vectorized.loads(include_dummies=False))
        assert scalar.dummy_tokens_created == vectorized.dummy_tokens_created
        assert np.allclose(scalar.discrete_cumulative_flows(),
                           vectorized.discrete_cumulative_flows())

    def test_bit_identity_survives_dummy_creation(self):
        """An overshooting SOS forces the infinite source; the counter-mode
        kernels must still agree on loads and the real/dummy split."""
        network = topologies.random_regular(30, 5, seed=4)
        load = point_load(network, 600)
        scalar = RandomizedFlowImitation(
            SecondOrderDiffusion(network, load.astype(float), beta=1.9),
            TaskAssignment.from_unit_loads(network, load),
            seed=3, rng_mode="counter")
        vectorized = ArrayRandomizedFlowImitation(
            SecondOrderDiffusion(network, load.astype(float), beta=1.9),
            load, seed=3, rng_mode="counter")
        for _ in range(50):
            scalar.advance()
            vectorized.advance()
            assert np.array_equal(scalar.loads(), vectorized.loads())
            assert np.array_equal(scalar.loads(include_dummies=False),
                                  vectorized.loads(include_dummies=False))
        assert scalar.dummy_tokens_created == vectorized.dummy_tokens_created
        assert scalar.dummy_tokens_created > 0, "instance must exercise dummies"


class TestRandomizedRoundingCounter:
    def test_same_seed_same_trajectory_and_modes_differ(self):
        network = topologies.torus(4, dims=2)
        load = workload(network)
        a = trajectory(RandomizedRoundingDiffusion(network, load, seed=7,
                                                   rng_mode="counter"), 30)
        b = trajectory(RandomizedRoundingDiffusion(network, load, seed=7,
                                                   rng_mode="counter"), 30)
        sequential = trajectory(RandomizedRoundingDiffusion(network, load, seed=7), 30)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, sequential)

    def test_edge_scores_are_a_pure_function(self):
        first = edge_scores(5, 3, 64)
        again = edge_scores(5, 3, 64)
        other_round = edge_scores(5, 4, 64)
        assert np.array_equal(first, again)
        assert not np.array_equal(first, other_round)

    def test_counter_round_is_order_free(self):
        """A scalar replay over shuffled edges matches the stock round."""
        network = topologies.random_regular(20, 4, seed=3)
        load = workload(network)
        stock = RandomizedRoundingDiffusion(network, load, seed=5,
                                            rng_mode="counter")
        shuffled = ShuffledEdgeRandomizedRounding(network, load, seed=5,
                                                 rng_mode="counter")
        assert np.array_equal(trajectory(stock, 30), trajectory(shuffled, 30))

    def test_sequential_draws_are_order_sensitive(self):
        """Consuming the shared stream one edge at a time in shuffled order
        diverges from the canonical block consumption."""
        network = topologies.random_regular(20, 4, seed=3)
        load = workload(network)
        stock = RandomizedRoundingDiffusion(network, load, seed=5)
        shuffled = SequentialPerEdgeDraws(network, load, seed=5)
        assert not np.array_equal(trajectory(stock, 30), trajectory(shuffled, 30))

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    @pytest.mark.parametrize("rng_mode", sorted(RNG_MODES))
    def test_vectorized_kernel_bit_identical_to_scalar_reference(self, topology,
                                                                 rng_mode):
        network = TOPOLOGIES[topology]()
        load = workload(network)
        scalar = RandomizedRoundingDiffusion(network, load, seed=9,
                                             rng_mode=rng_mode)
        vectorized = ArrayRandomizedRoundingDiffusion(network, load, seed=9,
                                                      rng_mode=rng_mode)
        for round_index in range(40):
            scalar.advance()
            vectorized.advance()
            assert np.array_equal(scalar.loads(), vectorized.loads()), (
                f"{topology}/{rng_mode} diverged at round {round_index}")
        assert scalar.went_negative == vectorized.went_negative

    def test_unknown_rng_mode_rejected(self):
        network = topologies.cycle(5)
        with pytest.raises(ProcessError):
            RandomizedRoundingDiffusion(network, [2] * 5, rng_mode="quantum")


class TestEnginePlumbing:
    def test_counter_mode_reaches_the_flow_imitation_kernel(self):
        network = topologies.torus(4, dims=2)
        balancer = make_balancer("algorithm2", network,
                                 initial_load=workload(network),
                                 seed=3, backend="array", rng_mode="counter")
        assert isinstance(balancer, ArrayRandomizedFlowImitation)
        assert balancer.rng_mode == "counter"
        scalar = make_balancer("algorithm2", network,
                               initial_load=workload(network),
                               seed=3, backend="object", rng_mode="counter")
        assert isinstance(scalar, RandomizedFlowImitation)
        assert scalar.rng_mode == "counter"

    def test_counter_mode_reaches_the_diffusion_kernel(self):
        network = topologies.torus(4, dims=2)
        balancer = make_balancer("randomized-rounding", network,
                                 initial_load=workload(network),
                                 seed=3, backend="array", rng_mode="counter")
        assert isinstance(balancer, ArrayRandomizedRoundingDiffusion)
        assert balancer.rng_mode == "counter"

    @pytest.mark.parametrize("algorithm", ["algorithm2", "randomized-rounding"])
    def test_backends_agree_through_run_algorithm(self, algorithm):
        network = topologies.torus(4, dims=2)
        load = workload(network)
        results = {
            backend: run_algorithm(algorithm, network, initial_load=load,
                                   rounds=25, seed=9, backend=backend,
                                   rng_mode="counter", record_trace=True)
            for backend in ("object", "array")
        }
        assert results["object"].trace_max_min == results["array"].trace_max_min
        assert results["array"].extra["backend"] == "array"
        assert "counter" in results["array"].extra["backend_reason"]

    def test_sequential_reason_does_not_mention_counter_for_algorithm2(self):
        network = topologies.torus(4, dims=2)
        result = run_algorithm("algorithm2", network,
                               initial_load=workload(network),
                               rounds=5, seed=3)
        assert result.extra["backend"] == "array"
        assert "counter" not in result.extra["backend_reason"]

    def test_counter_recouple_equals_fresh_build(self):
        network = topologies.torus(4, dims=2)
        first = workload(network, seed=0)
        second = workload(network, seed=1)
        recoupled = make_balancer("algorithm2", network, initial_load=first,
                                  seed=5, backend="array", rng_mode="counter")
        recoupled.run(10)
        recoupled.recouple(second, seed=77)
        fresh = make_balancer("algorithm2", network, initial_load=second,
                              seed=77, backend="array", rng_mode="counter")
        assert np.array_equal(trajectory(recoupled, 15), trajectory(fresh, 15))

    @pytest.mark.parametrize("algorithm", ["algorithm2", "randomized-rounding"])
    def test_counter_streams_match_across_backends(self, algorithm):
        from repro.dynamic.events import make_event_generator
        from repro.dynamic.stream import run_stream

        def one(backend):
            network = topologies.torus(4, dims=2)
            load = uniform_random_load(network, 6 * network.num_nodes, seed=17)
            generator = make_event_generator("burst", network, 6, seed=17)
            return run_stream(algorithm, network, load, generator,
                              rounds=50, seed=17, backend=backend,
                              rng_mode="counter")

        object_result, array_result = one("object"), one("array")
        assert object_result.trace_max_min == array_result.trace_max_min
        assert object_result.trace_total_weight == array_result.trace_total_weight
