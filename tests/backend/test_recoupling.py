"""O(n) re-coupling: in-place rewinds must equal freshly built balancers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.continuous.fos import FirstOrderDiffusion
from repro.continuous.sos import SecondOrderDiffusion
from repro.dynamic.events import DynamicEvent, ScheduledEvents, ARRIVAL, JOIN
from repro.dynamic.stream import StreamingEngine, run_stream
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.network.matchings import RandomMatchingSchedule
from repro.simulation.engine import ALL_ALGORITHMS, make_balancer, make_schedule
from repro.tasks.generators import point_load, uniform_random_load


def trajectory(balancer, rounds):
    trace = []
    for _ in range(rounds):
        balancer.advance()
        trace.append(balancer.loads())
    return np.array(trace)


class TestContinuousReset:
    def test_reset_rewinds_loads_and_flows(self):
        network = topologies.torus(4, dims=2)
        process = FirstOrderDiffusion(network, point_load(network, 160))
        process.run(5)
        fresh_load = uniform_random_load(network, 160, seed=1).astype(float)
        process.reset(fresh_load)
        assert process.round_index == 0
        assert np.array_equal(process.load, fresh_load)
        assert np.all(process.cumulative_flows == 0.0)
        assert process.last_flows is None

    def test_reset_preserves_sos_spectral_data(self):
        network = topologies.torus(4, dims=2)
        process = SecondOrderDiffusion(network, point_load(network, 160))
        beta = process.beta
        process.run(5)
        process.reset(point_load(network, 320))
        assert process.beta == beta  # the O(n^3) eigenvalue work is not redone
        reference = SecondOrderDiffusion(network, point_load(network, 320))
        process.run(10)
        reference.run(10)
        assert np.allclose(process.load, reference.load)

    def test_reset_rejects_negative_load(self):
        network = topologies.cycle(5)
        process = FirstOrderDiffusion(network, [1.0] * 5)
        with pytest.raises(ProcessError):
            process.reset([1.0, -1.0, 1.0, 1.0, 1.0])


class TestScheduleReseed:
    def test_reseed_matches_fresh_schedule(self):
        network = topologies.torus(4, dims=2)
        schedule = RandomMatchingSchedule(network, seed=0)
        _ = [schedule.matching(t) for t in range(10)]
        schedule.reseed(123)
        fresh = RandomMatchingSchedule(network, seed=123)
        assert [schedule.matching(t) for t in range(10)] == \
            [fresh.matching(t) for t in range(10)]


class TestBalancerRecouple:
    @pytest.mark.parametrize("algorithm", sorted(ALL_ALGORITHMS))
    @pytest.mark.parametrize("backend", ["object", "array"])
    def test_recouple_equals_fresh_build(self, algorithm, backend):
        kind = ("random-matching" if algorithm.startswith("matching") else "fos")
        network = topologies.torus(4, dims=2)
        first_load = uniform_random_load(network, 96, seed=0)
        second_load = uniform_random_load(network, 160, seed=1)

        schedule = make_schedule(kind, network, seed=5)
        recoupled = make_balancer(algorithm, network, initial_load=first_load,
                                  continuous_kind=kind, schedule=schedule,
                                  seed=5, backend=backend)
        recoupled.run(10)
        recoupled.recouple(second_load, seed=77)

        fresh_schedule = make_schedule(kind, network, seed=77)
        fresh = make_balancer(algorithm, network, initial_load=second_load,
                              continuous_kind=kind, schedule=fresh_schedule,
                              seed=77, backend=backend)
        assert np.array_equal(trajectory(recoupled, 15), trajectory(fresh, 15))

    @pytest.mark.parametrize("cls_name", ["RandomWalkFineBalancer",
                                          "TwoPhaseRandomWalkBalancer"])
    def test_random_walk_recouple_equals_fresh_build(self, cls_name):
        """Even non-engine baselines must honour the recouple contract."""
        from repro.discrete.baselines import random_walk

        cls = getattr(random_walk, cls_name)
        network = topologies.torus(4, dims=2)
        recoupled = cls(network, uniform_random_load(network, 96, seed=0), seed=3)
        recoupled.run(20)
        second_load = uniform_random_load(network, 160, seed=1)
        recoupled.recouple(second_load, seed=3)
        fresh = cls(network, second_load, seed=3)
        assert np.array_equal(trajectory(recoupled, 15), trajectory(fresh, 15))

    def test_recouple_resets_flow_imitation_counters(self):
        network = topologies.torus(4, dims=2)
        balancer = make_balancer("algorithm2", network,
                                 initial_load=point_load(network, 320),
                                 seed=3, backend="array")
        balancer.run(5)
        balancer._dummy_tokens_created = 11  # pretend the run drew dummies
        balancer._used_infinite_source = True
        balancer.recouple(point_load(network, 160), seed=4)
        assert balancer.round_index == 0
        assert balancer.dummy_tokens_created == 0
        assert not balancer.used_infinite_source
        assert balancer.round_reports == []
        assert balancer.original_weight == 160.0

    def test_recouple_rejects_fractional_loads(self):
        network = topologies.cycle(5)
        balancer = make_balancer("algorithm1", network, initial_load=[2] * 5,
                                 backend="array")
        with pytest.raises(ProcessError):
            balancer.recouple([1.5] * 5)


class TestStreamFastPath:
    def test_load_only_events_take_the_fast_path(self):
        network = topologies.torus(4, dims=2)
        load = uniform_random_load(network, 96, seed=2)
        generator = ScheduledEvents({
            3: [DynamicEvent(ARRIVAL, node=0, tokens=10)],
            6: [DynamicEvent(JOIN, attach_to=(0, 1), tokens=4)],
            9: [DynamicEvent(ARRIVAL, node=2, tokens=5)],
        })
        engine = StreamingEngine("algorithm1", network, load, generator, seed=2)
        for _ in range(12):
            engine.step()
        assert engine.recouplings == 3
        assert engine.fast_recouplings == 2  # the join rebuilt the network

    def test_fast_path_counter_reported_in_result(self):
        network = topologies.torus(4, dims=2)
        load = uniform_random_load(network, 96, seed=2)
        generator = ScheduledEvents({1: [DynamicEvent(ARRIVAL, node=0, tokens=3)]})
        result = run_stream("algorithm2", network, load, generator, rounds=5, seed=0)
        assert result.extra["fast_recouplings"] == 1.0
        assert result.extra["recouplings"] == 1.0
