"""Unit tests for :mod:`repro.network.graph`."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import NetworkError
from repro.network.graph import Network
from repro.network import topologies


def build_triangle(speeds=None) -> Network:
    graph = nx.Graph()
    graph.add_edges_from([(0, 1), (1, 2), (0, 2)])
    return Network(graph, speeds=speeds, name="triangle")


class TestConstruction:
    def test_basic_properties(self):
        net = build_triangle()
        assert net.num_nodes == 3
        assert net.num_edges == 3
        assert net.max_degree == 2
        assert net.min_degree == 2
        assert net.is_regular
        assert len(net) == 3

    def test_empty_graph_rejected(self):
        with pytest.raises(NetworkError):
            Network(nx.Graph())

    def test_self_loops_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 0)
        graph.add_edge(0, 1)
        with pytest.raises(NetworkError):
            Network(graph)

    def test_default_speeds_are_uniform(self):
        net = build_triangle()
        assert net.has_uniform_speeds
        assert net.total_speed == 3.0
        np.testing.assert_allclose(net.speeds, [1, 1, 1])

    def test_explicit_speeds(self):
        net = build_triangle(speeds=[1, 2, 3])
        assert not net.has_uniform_speeds
        assert net.total_speed == 6.0
        assert net.speed(1) == 2.0

    def test_wrong_speed_length_rejected(self):
        graph = nx.path_graph(3)
        with pytest.raises(NetworkError):
            Network(graph, speeds=[1, 2])

    def test_speed_below_one_rejected(self):
        graph = nx.path_graph(3)
        with pytest.raises(NetworkError):
            Network(graph, speeds=[0.5, 1, 1])

    def test_non_finite_speed_rejected(self):
        graph = nx.path_graph(3)
        with pytest.raises(NetworkError):
            Network(graph, speeds=[np.inf, 1, 1])

    def test_string_labels_are_relabelled_to_integers(self):
        graph = nx.Graph()
        graph.add_edges_from([("a", "b"), ("b", "c")])
        net = Network(graph)
        assert set(net.nodes) == {0, 1, 2}
        assert net.node_labels == ["a", "b", "c"]


class TestTopologyQueries:
    def test_neighbors_sorted(self):
        net = topologies.star(5)
        assert net.neighbors(0) == (1, 2, 3, 4)
        assert net.neighbors(2) == (0,)

    def test_degree(self):
        net = topologies.star(5)
        assert net.degree(0) == 4
        assert net.degree(3) == 1
        np.testing.assert_array_equal(net.degrees, [4, 1, 1, 1, 1])

    def test_has_edge(self):
        net = build_triangle()
        assert net.has_edge(0, 1)
        assert net.has_edge(1, 0)
        net2 = topologies.path(3)
        assert not net2.has_edge(0, 2)

    def test_edge_index_roundtrip(self):
        net = topologies.torus(4, dims=2)
        for index, (u, v) in enumerate(net.edges):
            assert net.edge_index(u, v) == index
            assert net.edge_index(v, u) == index

    def test_edge_index_missing_edge(self):
        net = topologies.path(4)
        with pytest.raises(NetworkError):
            net.edge_index(0, 3)

    def test_incident_edges(self):
        net = build_triangle()
        incident = net.incident_edges(0)
        assert len(incident) == 2
        assert all(0 in net.edges[i] for i in incident)

    def test_invalid_node_rejected(self):
        net = build_triangle()
        with pytest.raises(NetworkError):
            net.degree(7)
        with pytest.raises(NetworkError):
            net.neighbors(-1)

    def test_connectivity_and_diameter(self):
        net = topologies.path(5)
        assert net.is_connected()
        assert net.diameter() == 4

    def test_disconnected_graph_detected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        net = Network(graph)
        assert not net.is_connected()
        with pytest.raises(NetworkError):
            net.require_connected()


class TestMatrices:
    def test_adjacency_matrix(self):
        net = build_triangle()
        adjacency = net.adjacency_matrix()
        assert adjacency.shape == (3, 3)
        assert np.all(adjacency == adjacency.T)
        assert adjacency.sum() == 6  # two entries per edge

    def test_laplacian_row_sums_zero(self):
        net = topologies.torus(4, dims=2)
        lap = net.laplacian_matrix()
        np.testing.assert_allclose(lap.sum(axis=1), 0.0, atol=1e-12)
        np.testing.assert_allclose(np.diag(lap), net.degrees)


class TestDerivedNetworks:
    def test_with_speeds(self):
        net = build_triangle()
        fast = net.with_speeds([2, 2, 2])
        assert fast.total_speed == 6.0
        assert net.total_speed == 3.0  # original untouched
        assert fast.num_edges == net.num_edges

    def test_subnetwork(self):
        net = topologies.complete(5)
        sub = net.subnetwork([0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.num_edges == 3

    def test_subnetwork_keeps_speeds(self):
        net = topologies.complete(4).with_speeds([1, 2, 3, 4])
        sub = net.subnetwork([1, 3])
        assert sorted(sub.speeds.tolist()) == [2.0, 4.0]
