"""Tests for the additional interconnection topologies (CCC, ring of cliques)."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.network import topologies
from repro.simulation.engine import run_algorithm
from repro.tasks.generators import point_load


class TestCubeConnectedCycles:
    def test_size_and_regularity(self):
        for dimension in (3, 4):
            net = topologies.cube_connected_cycles(dimension)
            assert net.num_nodes == dimension * 2**dimension
            assert net.is_regular
            assert net.max_degree == 3
            assert net.is_connected()

    def test_minimum_dimension(self):
        with pytest.raises(TopologyError):
            topologies.cube_connected_cycles(2)

    def test_balancing_on_ccc(self):
        """Algorithm 1 keeps its constant bound on CCC (degree 3 -> bound 8)."""
        net = topologies.cube_connected_cycles(3)
        load = point_load(net, 16 * net.num_nodes)
        result = run_algorithm("algorithm1", net, initial_load=load, seed=1)
        assert result.final_max_min <= 2 * 3 + 2


class TestRingOfCliques:
    def test_structure(self):
        net = topologies.ring_of_cliques(4, 5)
        assert net.num_nodes == 20
        assert net.is_connected()
        assert net.max_degree >= 4

    def test_validation(self):
        with pytest.raises(TopologyError):
            topologies.ring_of_cliques(2, 5)
        with pytest.raises(TopologyError):
            topologies.ring_of_cliques(4, 1)

    def test_low_conductance_slows_continuous_balancing(self):
        """A ring of cliques balances slower than a comparable expander."""
        from repro.simulation.engine import determine_balancing_time

        cliques = topologies.ring_of_cliques(6, 5)
        expander = topologies.random_regular(30, 4, seed=1)
        load_cliques = point_load(cliques, 30 * 32)
        load_expander = point_load(expander, 30 * 32)
        assert determine_balancing_time(cliques, load_cliques, "fos") > \
            determine_balancing_time(expander, load_expander, "fos")


class TestNamedVariants:
    @pytest.mark.parametrize("name", ["ccc", "ring-of-cliques"])
    def test_named_topology_builds(self, name):
        net = topologies.named_topology(name, 40, seed=1)
        assert net.is_connected()
        assert net.num_nodes >= 20
