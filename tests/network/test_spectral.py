"""Unit tests for :mod:`repro.network.spectral`."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ProcessError
from repro.network import topologies
from repro.network.spectral import (
    AlphaScheme,
    compute_alphas,
    diffusion_matrix,
    laplacian_second_smallest,
    optimal_sos_beta,
    predicted_fos_rounds,
    predicted_random_matching_rounds,
    predicted_sos_rounds,
    second_largest_eigenvalue,
    spectral_gap,
    spectral_summary,
)


class TestAlphas:
    def test_uniform_speeds_max_degree_plus_one(self):
        net = topologies.cycle(6)
        alphas = compute_alphas(net, AlphaScheme.MAX_DEGREE_PLUS_ONE)
        assert all(abs(value - 1.0 / 3.0) < 1e-12 for value in alphas.values())

    def test_half_max_degree(self):
        net = topologies.torus(4, dims=2)
        alphas = compute_alphas(net, AlphaScheme.HALF_MAX_DEGREE)
        assert all(abs(value - 1.0 / 8.0) < 1e-12 for value in alphas.values())

    def test_global_degree(self):
        net = topologies.star(5)
        alphas = compute_alphas(net, AlphaScheme.GLOBAL_DEGREE)
        assert all(abs(value - 1.0 / 5.0) < 1e-12 for value in alphas.values())

    def test_speeds_scale_alphas(self):
        net = topologies.cycle(4).with_speeds([1, 2, 2, 1])
        alphas = compute_alphas(net)
        # Edge (1, 2) has min speed 2, so alpha = 2 / 3.
        assert abs(alphas[(1, 2)] - 2.0 / 3.0) < 1e-12
        # Edge (0, 1) has min speed 1.
        assert abs(alphas[(0, 1)] - 1.0 / 3.0) < 1e-12

    def test_row_sum_constraint_satisfied(self):
        net = topologies.star(8).with_speeds([1] + [3] * 7)
        alphas = compute_alphas(net)
        hub_sum = sum(alphas[(0, j)] for j in range(1, 8))
        assert hub_sum < net.speed(0)

    def test_unknown_scheme(self):
        net = topologies.cycle(4)
        with pytest.raises(ProcessError):
            compute_alphas(net, "bogus")


class TestDiffusionMatrix:
    def test_row_stochastic(self):
        net = topologies.hypercube(3)
        matrix = diffusion_matrix(net)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0, atol=1e-12)
        assert np.all(matrix >= -1e-12)

    def test_speed_vector_is_left_fixed_point(self):
        net = topologies.cycle(6).with_speeds([1, 2, 3, 1, 2, 3])
        matrix = diffusion_matrix(net)
        speeds = net.speeds
        np.testing.assert_allclose(speeds @ matrix, speeds, atol=1e-10)

    def test_uniform_case_symmetric(self):
        net = topologies.torus(4, dims=2)
        matrix = diffusion_matrix(net)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)


class TestEigenvalues:
    def test_second_largest_eigenvalue_complete_graph(self):
        net = topologies.complete(8)
        matrix = diffusion_matrix(net, scheme=AlphaScheme.GLOBAL_DEGREE)
        lam = second_largest_eigenvalue(matrix)
        assert 0.0 <= lam < 1.0

    def test_lambda_close_to_one_for_long_cycle(self):
        small = second_largest_eigenvalue(diffusion_matrix(topologies.cycle(4)))
        large = second_largest_eigenvalue(diffusion_matrix(topologies.cycle(64)))
        assert large > small
        assert large > 0.99

    def test_single_node_lambda_zero(self):
        assert second_largest_eigenvalue(np.array([[1.0]])) == 0.0

    def test_gamma_cycle_formula(self):
        n = 12
        net = topologies.cycle(n)
        gamma = laplacian_second_smallest(net)
        expected = 2.0 - 2.0 * math.cos(2.0 * math.pi / n)
        assert abs(gamma - expected) < 1e-9

    def test_gamma_complete_graph(self):
        net = topologies.complete(7)
        assert abs(laplacian_second_smallest(net) - 7.0) < 1e-9

    def test_spectral_gap(self):
        net = topologies.hypercube(4)
        matrix = diffusion_matrix(net)
        assert abs(spectral_gap(matrix) - (1.0 - second_largest_eigenvalue(matrix))) < 1e-12


class TestOptimalBeta:
    def test_beta_range(self):
        assert optimal_sos_beta(0.0) == pytest.approx(1.0)
        assert 1.0 < optimal_sos_beta(0.9) < 2.0

    def test_beta_monotone_in_lambda(self):
        assert optimal_sos_beta(0.5) < optimal_sos_beta(0.9) < optimal_sos_beta(0.99)

    def test_invalid_lambda(self):
        with pytest.raises(ProcessError):
            optimal_sos_beta(1.0)
        with pytest.raises(ProcessError):
            optimal_sos_beta(-0.1)


class TestSummaryAndPredictions:
    def test_summary_fields_consistent(self):
        net = topologies.hypercube(4)
        summary = spectral_summary(net)
        assert summary.gap == pytest.approx(1.0 - summary.lambda_value)
        assert summary.gamma > 0
        assert 1.0 <= summary.optimal_beta <= 2.0

    def test_predicted_rounds_ordering(self):
        """SOS should be predicted to be at least as fast as FOS."""
        net = topologies.cycle(32)
        fos = predicted_fos_rounds(net, initial_discrepancy=100)
        sos = predicted_sos_rounds(net, initial_discrepancy=100)
        assert sos <= fos

    def test_predicted_rounds_grow_with_discrepancy(self):
        net = topologies.torus(5, dims=2)
        assert predicted_fos_rounds(net, 1000) > predicted_fos_rounds(net, 10)

    def test_predicted_random_matching_positive(self):
        net = topologies.hypercube(3)
        assert predicted_random_matching_rounds(net, 100) > 0
