"""Unit tests for :mod:`repro.network.matchings`."""

from __future__ import annotations

import pytest

from repro.exceptions import ScheduleError
from repro.network import topologies
from repro.network.matchings import (
    PeriodicMatchingSchedule,
    RandomMatchingSchedule,
    SingleMatchingSchedule,
    edge_coloring,
    validate_matching,
)


class TestValidateMatching:
    def test_valid_matching_canonicalised(self):
        net = topologies.cycle(6)
        matching = validate_matching(net, [(1, 0), (3, 2)])
        assert matching == ((0, 1), (2, 3))

    def test_missing_edge_rejected(self):
        net = topologies.cycle(6)
        with pytest.raises(ScheduleError):
            validate_matching(net, [(0, 3)])

    def test_overlapping_edges_rejected(self):
        net = topologies.cycle(6)
        with pytest.raises(ScheduleError):
            validate_matching(net, [(0, 1), (1, 2)])

    def test_empty_matching_allowed(self):
        net = topologies.cycle(6)
        assert validate_matching(net, []) == ()


class TestEdgeColoring:
    @pytest.mark.parametrize("builder", [
        lambda: topologies.cycle(7),
        lambda: topologies.hypercube(4),
        lambda: topologies.torus(4, dims=2),
        lambda: topologies.star(8),
        lambda: topologies.random_regular(16, 4, seed=1),
    ])
    def test_covers_all_edges_exactly_once(self, builder):
        net = builder()
        matchings = edge_coloring(net)
        seen = [edge for matching in matchings for edge in matching]
        assert sorted(seen) == sorted(net.edges)
        assert len(seen) == len(set(seen))

    def test_each_colour_is_a_matching(self):
        net = topologies.torus(4, dims=2)
        for matching in edge_coloring(net):
            nodes = [node for edge in matching for node in edge]
            assert len(nodes) == len(set(nodes))

    def test_number_of_colours_bounded(self):
        net = topologies.hypercube(5)
        matchings = edge_coloring(net)
        assert len(matchings) <= 2 * net.max_degree - 1


class TestPeriodicSchedule:
    def test_default_schedule_covers_edges(self):
        net = topologies.hypercube(3)
        schedule = PeriodicMatchingSchedule(net)
        assert schedule.period >= net.max_degree
        covered = set()
        for t in range(schedule.period):
            covered.update(schedule.matching(t))
        assert covered == set(net.edges)

    def test_schedule_is_periodic(self):
        net = topologies.torus(4, dims=2)
        schedule = PeriodicMatchingSchedule(net)
        period = schedule.period
        for t in range(period):
            assert schedule.matching(t) == schedule.matching(t + period)

    def test_explicit_matchings(self):
        net = topologies.cycle(4)
        schedule = PeriodicMatchingSchedule(net, matchings=[[(0, 1), (2, 3)], [(1, 2), (0, 3)]])
        assert schedule.period == 2
        assert schedule.matching(0) == ((0, 1), (2, 3))

    def test_incomplete_cover_rejected(self):
        net = topologies.cycle(4)
        with pytest.raises(ScheduleError):
            PeriodicMatchingSchedule(net, matchings=[[(0, 1)]])

    def test_negative_round_rejected(self):
        net = topologies.cycle(4)
        schedule = PeriodicMatchingSchedule(net)
        with pytest.raises(ScheduleError):
            schedule.matching(-1)


class TestRandomSchedule:
    def test_matchings_are_valid(self):
        net = topologies.random_regular(20, 4, seed=2)
        schedule = RandomMatchingSchedule(net, seed=3)
        for t in range(20):
            matching = schedule.matching(t)
            nodes = [node for edge in matching for node in edge]
            assert len(nodes) == len(set(nodes))
            assert all(net.has_edge(u, v) for u, v in matching)

    def test_caching_gives_stable_answers(self):
        net = topologies.hypercube(4)
        schedule = RandomMatchingSchedule(net, seed=5)
        first = schedule.matching(7)
        again = schedule.matching(7)
        assert first == again

    def test_seed_reproducibility(self):
        net = topologies.hypercube(4)
        a = RandomMatchingSchedule(net, seed=9)
        b = RandomMatchingSchedule(net, seed=9)
        for t in range(10):
            assert a.matching(t) == b.matching(t)

    def test_different_seeds_differ(self):
        net = topologies.random_regular(30, 4, seed=2)
        a = RandomMatchingSchedule(net, seed=1)
        b = RandomMatchingSchedule(net, seed=2)
        assert any(a.matching(t) != b.matching(t) for t in range(10))

    def test_period_is_none(self):
        net = topologies.cycle(5)
        assert RandomMatchingSchedule(net, seed=0).period is None


class TestSingleSchedule:
    def test_same_matching_every_round(self):
        net = topologies.cycle(6)
        schedule = SingleMatchingSchedule(net, [(0, 1), (2, 3)])
        assert schedule.matching(0) == schedule.matching(17) == ((0, 1), (2, 3))
        assert schedule.period == 1
