"""Unit tests for :mod:`repro.network.topologies`."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.network import topologies


class TestHypercube:
    def test_sizes(self):
        for dim in (1, 2, 3, 5):
            net = topologies.hypercube(dim)
            assert net.num_nodes == 2**dim
            assert net.max_degree == dim
            assert net.is_regular

    def test_edge_count(self):
        net = topologies.hypercube(4)
        assert net.num_edges == 4 * 2**4 // 2

    def test_invalid_dimension(self):
        with pytest.raises(TopologyError):
            topologies.hypercube(0)


class TestTorus:
    def test_2d_torus_is_4_regular(self):
        net = topologies.torus(5, dims=2)
        assert net.num_nodes == 25
        assert net.is_regular
        assert net.max_degree == 4

    def test_3d_torus_is_6_regular(self):
        net = topologies.torus(3, dims=3)
        assert net.num_nodes == 27
        assert net.max_degree == 6

    def test_1d_torus_is_cycle(self):
        net = topologies.torus(6, dims=1)
        assert net.num_nodes == 6
        assert net.max_degree == 2

    def test_invalid_parameters(self):
        with pytest.raises(TopologyError):
            topologies.torus(1, dims=2)
        with pytest.raises(TopologyError):
            topologies.torus(4, dims=0)


class TestSimpleFamilies:
    def test_cycle(self):
        net = topologies.cycle(10)
        assert net.num_nodes == 10
        assert net.num_edges == 10
        assert net.diameter() == 5

    def test_cycle_too_small(self):
        with pytest.raises(TopologyError):
            topologies.cycle(2)

    def test_path(self):
        net = topologies.path(7)
        assert net.num_edges == 6
        assert net.diameter() == 6

    def test_complete(self):
        net = topologies.complete(6)
        assert net.num_edges == 15
        assert net.max_degree == 5
        assert net.diameter() == 1

    def test_star(self):
        net = topologies.star(9)
        assert net.num_nodes == 9
        assert net.max_degree == 8
        assert net.min_degree == 1

    def test_grid(self):
        net = topologies.grid(3, 4)
        assert net.num_nodes == 12
        assert net.max_degree == 4
        assert net.min_degree == 2

    def test_binary_tree(self):
        net = topologies.binary_tree(3)
        assert net.num_nodes == 2**4 - 1
        assert net.max_degree == 3

    def test_barbell_and_lollipop(self):
        bar = topologies.barbell(4, 2)
        assert bar.is_connected()
        lol = topologies.lollipop(4, 3)
        assert lol.is_connected()
        bridge = topologies.two_cliques_bridge(5)
        assert bridge.num_nodes == 10

    def test_invalid_simple_parameters(self):
        with pytest.raises(TopologyError):
            topologies.path(1)
        with pytest.raises(TopologyError):
            topologies.complete(1)
        with pytest.raises(TopologyError):
            topologies.star(1)
        with pytest.raises(TopologyError):
            topologies.grid(0, 3)
        with pytest.raises(TopologyError):
            topologies.binary_tree(0)
        with pytest.raises(TopologyError):
            topologies.barbell(2, 0)
        with pytest.raises(TopologyError):
            topologies.lollipop(4, 0)


class TestRandomFamilies:
    def test_random_regular_connected_and_regular(self):
        net = topologies.random_regular(20, 4, seed=1)
        assert net.is_connected()
        assert net.is_regular
        assert net.max_degree == 4

    def test_random_regular_reproducible(self):
        a = topologies.random_regular(20, 4, seed=5)
        b = topologies.random_regular(20, 4, seed=5)
        assert a.edges == b.edges

    def test_random_regular_parity_check(self):
        with pytest.raises(TopologyError):
            topologies.random_regular(9, 3, seed=1)

    def test_random_regular_degree_bounds(self):
        with pytest.raises(TopologyError):
            topologies.random_regular(10, 0)
        with pytest.raises(TopologyError):
            topologies.random_regular(10, 10)

    def test_expander_alias(self):
        net = topologies.expander(16, degree=4, seed=2)
        assert net.max_degree == 4

    def test_erdos_renyi_connected(self):
        net = topologies.erdos_renyi(30, 0.3, seed=3)
        assert net.is_connected()
        assert net.num_nodes == 30

    def test_erdos_renyi_invalid_probability(self):
        with pytest.raises(TopologyError):
            topologies.erdos_renyi(10, 0.0)
        with pytest.raises(TopologyError):
            topologies.erdos_renyi(10, 1.5)

    def test_random_geometric_connected(self):
        net = topologies.random_geometric(40, seed=4)
        assert net.is_connected()

    def test_random_geometric_too_small(self):
        with pytest.raises(TopologyError):
            topologies.random_geometric(1)


class TestFromEdgeList:
    def test_basic(self):
        net = topologies.from_edge_list([(0, 1), (1, 2), (2, 0)], name="tri")
        assert net.num_nodes == 3
        assert net.name == "tri"

    def test_with_speeds(self):
        net = topologies.from_edge_list([(0, 1), (1, 2)], speeds=[1, 2, 3])
        assert net.total_speed == 6

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            topologies.from_edge_list([])


class TestNamedTopology:
    @pytest.mark.parametrize("name", ["hypercube", "torus", "torus3d", "cycle", "path",
                                      "complete", "star", "expander", "geometric"])
    def test_all_names_build(self, name):
        net = topologies.named_topology(name, 16, seed=1)
        assert net.num_nodes >= 2
        assert net.is_connected()

    def test_unknown_name(self):
        with pytest.raises(TopologyError):
            topologies.named_topology("klein-bottle", 16)

    def test_hypercube_rounds_to_power_of_two(self):
        net = topologies.named_topology("hypercube", 60)
        assert net.num_nodes == 64
