"""Tests of the infinite-source / dummy-token mechanism of Algorithms 1 and 2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.continuous.fos import FirstOrderDiffusion
from repro.continuous.sos import SecondOrderDiffusion
from repro.core.algorithm1 import DeterministicFlowImitation, theorem3_required_base_load
from repro.core.algorithm2 import RandomizedFlowImitation
from repro.network import topologies
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import balanced_load, point_load
from repro.tasks.task import Task


class TestPlanLevelDummyCreation:
    def test_unit_token_plan_creates_dummies_when_pool_empty(self):
        network = topologies.cycle(6)
        assignment = TaskAssignment.from_unit_loads(network, [6] * 6)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        plan = balancer._plan_unit_tokens(source=0, destination=1, residual=3.4, pool=[])
        assert plan.dummy_tokens == 3
        assert plan.tasks == []

    def test_unit_token_plan_mixes_real_and_dummy(self):
        network = topologies.cycle(6)
        assignment = TaskAssignment.from_unit_loads(network, [6] * 6)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        pool = list(assignment.tasks_at(0))[:2]
        plan = balancer._plan_unit_tokens(source=0, destination=1, residual=5.0, pool=pool)
        assert len(plan.tasks) == 2
        assert plan.dummy_tokens == 3

    def test_weighted_plan_uses_unit_dummies(self):
        network = topologies.cycle(6)
        assignment = TaskAssignment(network)
        assignment.add(0, Task(task_id=0, weight=3.0))
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        plan = balancer._plan_weighted(source=0, destination=1, residual=8.0, pool=[])
        # while 8 - committed > w_max(=3): add unit dummies -> needs 5 dummies (8-5=3).
        assert plan.dummy_tokens == 5
        assert plan.weight == pytest.approx(5.0)


class TestEndToEndDummyBehaviour:
    def test_no_dummies_with_sufficient_base_load(self):
        """Theorem 3(2) precondition => the infinite source is never touched."""
        network = topologies.hypercube(4)
        base = int(theorem3_required_base_load(network.max_degree, 1.0))
        loads = point_load(network, 100) + balanced_load(network, base)
        assignment = TaskAssignment.from_unit_loads(network, loads)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        balancer.run_until_continuous_balanced(max_rounds=50_000)
        assert not balancer.used_infinite_source
        assert balancer.dummy_tokens_created == 0

    def test_dummies_marked_and_removable(self):
        """When dummies are created they are flagged, counted and removable."""
        network = topologies.random_regular(30, 5, seed=4)
        # A large point load with no base load: some downstream node will be
        # asked to forward before it has received enough real tokens.
        loads = point_load(network, 3000)
        assignment = TaskAssignment.from_unit_loads(network, loads)
        continuous = SecondOrderDiffusion(network, assignment.loads(), beta=1.9)
        balancer = DeterministicFlowImitation(continuous, assignment)
        balancer.run(60)
        if balancer.dummy_tokens_created == 0:
            pytest.skip("this instance did not need the infinite source")
        assert balancer.used_infinite_source
        dummy_weight = balancer.assignment.total_dummy_weight()
        assert dummy_weight == pytest.approx(balancer.dummy_tokens_created)
        removed = balancer.remove_dummies()
        assert removed == pytest.approx(dummy_weight)
        assert balancer.assignment.total_dummy_weight() == 0.0
        # Real workload is conserved no matter how many dummies came and went.
        assert balancer.loads().sum() == pytest.approx(3000.0)

    def test_real_workload_conserved_with_dummies(self):
        network = topologies.torus(10, dims=2)
        loads = point_load(network, 32 * network.num_nodes)
        assignment = TaskAssignment.from_unit_loads(network, loads)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = RandomizedFlowImitation(continuous, assignment, seed=12)
        balancer.run(80)
        assert balancer.loads(include_dummies=False).sum() == pytest.approx(
            32.0 * network.num_nodes)
        assert balancer.dummy_tokens_created >= 0

    def test_dummy_loads_never_negative(self):
        network = topologies.torus(6, dims=2)
        loads = point_load(network, 36 * 32)
        assignment = TaskAssignment.from_unit_loads(network, loads)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = RandomizedFlowImitation(continuous, assignment, seed=3)
        balancer.run(50)
        assert np.all(balancer.assignment.dummy_loads() >= 0)
        assert np.all(balancer.loads() >= 0)
