"""Unit tests for the shared flow-imitation machinery (:mod:`repro.core.flow_imitation`)."""

from __future__ import annotations

import pytest

from repro.continuous.fos import FirstOrderDiffusion
from repro.core.algorithm1 import DeterministicFlowImitation
from repro.core.flow_imitation import EdgeSendPlan, TaskSelectionPolicy
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import point_load


def build(network, loads):
    assignment = TaskAssignment.from_unit_loads(network, loads)
    continuous = FirstOrderDiffusion(network, assignment.loads())
    return DeterministicFlowImitation(continuous, assignment)


class TestConstructionValidation:
    def test_network_mismatch_rejected(self):
        net_a = topologies.cycle(6)
        net_b = topologies.cycle(6)
        assignment = TaskAssignment.from_unit_loads(net_a, [6] * 6)
        continuous = FirstOrderDiffusion(net_b, [6.0] * 6)
        with pytest.raises(ProcessError):
            DeterministicFlowImitation(continuous, assignment)

    def test_advanced_continuous_rejected(self):
        net = topologies.cycle(6)
        assignment = TaskAssignment.from_unit_loads(net, [6] * 6)
        continuous = FirstOrderDiffusion(net, assignment.loads())
        continuous.advance()
        with pytest.raises(ProcessError):
            DeterministicFlowImitation(continuous, assignment)

    def test_load_mismatch_rejected(self):
        net = topologies.cycle(6)
        assignment = TaskAssignment.from_unit_loads(net, [6] * 6)
        continuous = FirstOrderDiffusion(net, [1.0] * 6)
        with pytest.raises(ProcessError):
            DeterministicFlowImitation(continuous, assignment)

    def test_invalid_selection_policy_rejected(self):
        net = topologies.cycle(6)
        assignment = TaskAssignment.from_unit_loads(net, [6] * 6)
        continuous = FirstOrderDiffusion(net, assignment.loads())
        with pytest.raises(ProcessError):
            DeterministicFlowImitation(continuous, assignment, selection_policy="rounded")

    def test_invalid_max_task_weight_rejected(self):
        net = topologies.cycle(6)
        assignment = TaskAssignment.from_unit_loads(net, [6] * 6)
        continuous = FirstOrderDiffusion(net, assignment.loads())
        with pytest.raises(ProcessError):
            DeterministicFlowImitation(continuous, assignment, max_task_weight=0.0)


class TestBookkeeping:
    def test_load_conservation_without_dummies(self):
        net = topologies.torus(4, dims=2)
        loads = point_load(net, 160)
        balancer = build(net, loads)
        balancer.run(20)
        total = balancer.loads().sum() - balancer.dummy_tokens_created
        assert total == pytest.approx(160.0)

    def test_total_with_dummies_consistent(self):
        net = topologies.torus(4, dims=2)
        loads = point_load(net, 160)
        balancer = build(net, loads)
        balancer.run(20)
        with_dummies = balancer.loads(include_dummies=True).sum()
        without = balancer.loads(include_dummies=False).sum()
        assert with_dummies - without == pytest.approx(balancer.assignment.total_dummy_weight())
        assert without == pytest.approx(160.0)

    def test_round_reports_accumulate(self):
        net = topologies.cycle(8)
        balancer = build(net, point_load(net, 64))
        balancer.run(5)
        reports = balancer.round_reports
        assert len(reports) == 5
        assert [report.round_index for report in reports] == list(range(5))
        assert all(report.weight_moved >= 0 for report in reports)

    def test_discrete_cumulative_flow_matches_load_change(self):
        """The per-node load change equals the net discrete inflow."""
        net = topologies.hypercube(3)
        loads = point_load(net, 80)
        balancer = build(net, loads)
        balancer.run(10)
        assert not balancer.used_infinite_source
        cumulative = balancer.discrete_cumulative_flows()
        final = balancer.loads()
        for node in net.nodes:
            inflow = 0.0
            for neighbor in net.neighbors(node):
                index = net.edge_index(node, neighbor)
                signed = cumulative[index]
                inflow += -signed if node < neighbor else signed
            assert final[node] - loads[node] == pytest.approx(inflow, abs=1e-9)

    def test_flow_errors_antisymmetric_in_sign_convention(self):
        net = topologies.cycle(8)
        balancer = build(net, point_load(net, 64))
        balancer.run(8)
        errors = balancer.flow_errors()
        assert errors.shape == (net.num_edges,)

    def test_run_until_continuous_balanced_returns_T(self):
        net = topologies.torus(4, dims=2)
        loads = point_load(net, 160)
        balancer = build(net, loads)
        T = balancer.run_until_continuous_balanced()
        assert T == balancer.round_index
        assert balancer.continuous.is_balanced()

    def test_remove_dummies_clears_dummy_weight(self):
        net = topologies.cycle(8)
        balancer = build(net, point_load(net, 64))
        balancer.run_until_continuous_balanced()
        balancer.remove_dummies()
        assert balancer.assignment.total_dummy_weight() == 0.0

    def test_summary_uses_reference_weight(self):
        net = topologies.cycle(6)
        balancer = build(net, [6, 6, 6, 6, 6, 6])
        balancer.run(3)
        summary = balancer.summary(reference_weight=36.0)
        assert summary.average_makespan == pytest.approx(6.0)


class TestEdgeSendPlan:
    def test_weight_includes_dummies(self):
        from repro.tasks.task import Task

        plan = EdgeSendPlan(source=0, destination=1,
                            tasks=[Task(task_id=1, weight=2.0)], dummy_tokens=3)
        assert plan.weight == pytest.approx(5.0)

    def test_selection_policy_constants(self):
        assert set(TaskSelectionPolicy.ALL) == {"fifo", "largest-first", "smallest-first"}
