"""Tests for Algorithm 1 (deterministic flow imitation) and Theorem 3.

The tests check the paper's intermediate results on concrete instances:

* Observation 4 — the per-edge flow error stays below ``w_max``;
* Lemma 6 — the discrete load deviates from the continuous load by less than
  ``d * w_max`` per node (as long as the infinite source is unused);
* Theorem 3(1) — max-avg discrepancy at the continuous balancing time is at
  most ``2 d w_max + 2``;
* Theorem 3(2) — with the balanced base load ``d w_max s_i`` the infinite
  source is never used and the max-min bound holds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.continuous.dimension_exchange import periodic_dimension_exchange, random_matching_exchange
from repro.continuous.fos import FirstOrderDiffusion
from repro.continuous.sos import SecondOrderDiffusion
from repro.core.algorithm1 import (
    DeterministicFlowImitation,
    theorem3_discrepancy_bound,
    theorem3_required_base_load,
)
from repro.core.flow_imitation import TaskSelectionPolicy
from repro.network import topologies
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import (
    balanced_load,
    point_load,
    uniform_random_load,
    weighted_assignment,
)
from repro.tasks.load import max_avg_discrepancy, max_min_discrepancy
from repro.tasks.task import TaskFactory


def build_unit(network, loads, continuous_kind="fos", seed=None, policy=TaskSelectionPolicy.FIFO):
    assignment = TaskAssignment.from_unit_loads(network, loads)
    if continuous_kind == "fos":
        continuous = FirstOrderDiffusion(network, assignment.loads())
    elif continuous_kind == "sos":
        continuous = SecondOrderDiffusion(network, assignment.loads())
    elif continuous_kind == "periodic-matching":
        continuous = periodic_dimension_exchange(network, assignment.loads())
    else:
        continuous = random_matching_exchange(network, assignment.loads(), seed=seed)
    return DeterministicFlowImitation(continuous, assignment, selection_policy=policy)


UNIT_NETWORKS = {
    "cycle": lambda: topologies.cycle(12),
    "torus": lambda: topologies.torus(5, dims=2),
    "hypercube": lambda: topologies.hypercube(4),
    "star": lambda: topologies.star(9),
    "expander": lambda: topologies.random_regular(20, 4, seed=3),
}


class TestObservation4:
    @pytest.mark.parametrize("family", sorted(UNIT_NETWORKS))
    def test_flow_error_below_wmax_unit_tokens(self, family):
        network = UNIT_NETWORKS[family]()
        balancer = build_unit(network, point_load(network, 16 * network.num_nodes))
        for _ in range(25):
            balancer.advance()
            errors = balancer.flow_errors()
            assert np.all(np.abs(errors) <= balancer.w_max + 1e-9)

    def test_flow_error_below_wmax_weighted(self):
        network = topologies.torus(4, dims=2)
        assignment = weighted_assignment(network, num_tasks=200, max_weight=5,
                                         placement="uniform", seed=2)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        assert balancer.w_max == assignment.max_task_weight()
        for _ in range(20):
            balancer.advance()
            assert np.all(np.abs(balancer.flow_errors()) <= balancer.w_max + 1e-9)


class TestLemma6:
    @pytest.mark.parametrize("family", sorted(UNIT_NETWORKS))
    def test_load_deviation_below_d_wmax(self, family):
        network = UNIT_NETWORKS[family]()
        balancer = build_unit(network, point_load(network, 16 * network.num_nodes))
        bound = network.max_degree * balancer.w_max
        for _ in range(25):
            balancer.advance()
            if balancer.used_infinite_source:
                break
            assert np.all(np.abs(balancer.load_deviation()) <= bound + 1e-9)

    def test_load_deviation_weighted_with_speeds(self):
        network = topologies.random_regular(16, 4, seed=5).with_speeds(
            [1 + (i % 3) for i in range(16)])
        assignment = weighted_assignment(network, num_tasks=300, max_weight=4,
                                         placement="uniform", seed=3)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        bound = network.max_degree * balancer.w_max
        for _ in range(20):
            balancer.advance()
            if balancer.used_infinite_source:
                break
            assert np.all(np.abs(balancer.load_deviation()) <= bound + 1e-9)


class TestTheorem3:
    @pytest.mark.parametrize("family", sorted(UNIT_NETWORKS))
    @pytest.mark.parametrize("continuous_kind", ["fos", "periodic-matching"])
    def test_max_avg_bound_unit_tokens(self, family, continuous_kind):
        network = UNIT_NETWORKS[family]()
        balancer = build_unit(network, point_load(network, 16 * network.num_nodes),
                              continuous_kind=continuous_kind, seed=1)
        balancer.run_until_continuous_balanced(max_rounds=50_000)
        bound = theorem3_discrepancy_bound(network.max_degree, balancer.w_max)
        discrepancy = max_avg_discrepancy(balancer.loads(include_dummies=False), network,
                                          total_weight=balancer.original_weight)
        assert discrepancy <= bound + 1e-9

    def test_max_min_bound_with_sufficient_initial_load(self):
        """Theorem 3(2): base load d * w_max per speed unit => no infinite source."""
        network = topologies.torus(5, dims=2)
        base = int(theorem3_required_base_load(network.max_degree, 1.0))
        loads = point_load(network, 200) + balanced_load(network, base)
        balancer = build_unit(network, loads)
        balancer.run_until_continuous_balanced(max_rounds=50_000)
        assert not balancer.used_infinite_source
        bound = theorem3_discrepancy_bound(network.max_degree, 1.0)
        assert max_min_discrepancy(balancer.loads(), network) <= bound + 1e-9

    def test_max_min_bound_weighted_with_speeds(self):
        network = topologies.random_regular(18, 3, seed=7).with_speeds(
            [1 + (i % 2) for i in range(18)])
        factory = TaskFactory()
        assignment = weighted_assignment(network, num_tasks=150, max_weight=3,
                                         placement="uniform", seed=9, factory=factory)
        w_max = assignment.max_task_weight()
        base = int(np.ceil(theorem3_required_base_load(network.max_degree, w_max)))
        padding_factory = TaskFactory(start_id=10**8)
        for node, count in enumerate(balanced_load(network, base)):
            for task in padding_factory.create_many(int(count), weight=1.0, origin=node):
                assignment.add(node, task)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        balancer.run_until_continuous_balanced(max_rounds=50_000)
        assert not balancer.used_infinite_source
        bound = theorem3_discrepancy_bound(network.max_degree, w_max)
        assert max_min_discrepancy(balancer.loads(), network) <= bound + 1e-9

    def test_bound_helpers(self):
        assert theorem3_discrepancy_bound(4, 1.0) == 10.0
        assert theorem3_discrepancy_bound(3, 2.0) == 14.0
        assert theorem3_required_base_load(5, 2.0) == 10.0


class TestDeterminismAndPolicies:
    def test_runs_are_deterministic(self):
        network = topologies.torus(4, dims=2)
        loads = uniform_random_load(network, 320, seed=4)
        a = build_unit(network, loads)
        b = build_unit(network, loads)
        a.run(15)
        b.run(15)
        np.testing.assert_array_equal(a.loads(), b.loads())

    @pytest.mark.parametrize("policy", TaskSelectionPolicy.ALL)
    def test_selection_policies_respect_bound(self, policy):
        network = topologies.random_regular(14, 3, seed=2)
        assignment = weighted_assignment(network, num_tasks=140, max_weight=4,
                                         placement="uniform", seed=6)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment, selection_policy=policy)
        balancer.run_until_continuous_balanced(max_rounds=50_000)
        bound = theorem3_discrepancy_bound(network.max_degree, balancer.w_max)
        discrepancy = max_avg_discrepancy(balancer.loads(include_dummies=False), network,
                                          total_weight=balancer.original_weight)
        assert discrepancy <= bound + 1e-9

    def test_policies_can_produce_different_trajectories(self):
        """Different selection policies move different tasks (same totals)."""
        network = topologies.cycle(6)
        results = {}
        for policy in TaskSelectionPolicy.ALL:
            assignment = weighted_assignment(network, num_tasks=60, max_weight=5,
                                             placement="point", seed=1)
            continuous = FirstOrderDiffusion(network, assignment.loads())
            balancer = DeterministicFlowImitation(continuous, assignment,
                                                  selection_policy=policy)
            balancer.run(10)
            results[policy] = balancer.loads()
        # All policies conserve the workload.
        totals = {policy: loads.sum() for policy, loads in results.items()}
        assert len(set(round(v, 6) for v in totals.values())) == 1


class TestSecondOrderSubstrate:
    def test_algorithm1_on_sos(self):
        """Algorithm 1 also discretizes the second-order scheme (it is additive + terminating)."""
        network = topologies.torus(4, dims=2)
        base = int(theorem3_required_base_load(network.max_degree, 1.0))
        loads = point_load(network, 80) + balanced_load(network, base)
        balancer = build_unit(network, loads, continuous_kind="sos")
        balancer.run_until_continuous_balanced(max_rounds=50_000)
        bound = theorem3_discrepancy_bound(network.max_degree, 1.0)
        discrepancy = max_avg_discrepancy(balancer.loads(include_dummies=False), network,
                                          total_weight=balancer.original_weight)
        assert discrepancy <= bound + 1e-9

    def test_algorithm1_on_random_matchings(self):
        network = topologies.random_regular(16, 4, seed=8)
        loads = point_load(network, 16 * 16)
        balancer = build_unit(network, loads, continuous_kind="random-matching", seed=13)
        balancer.run_until_continuous_balanced(max_rounds=50_000)
        bound = theorem3_discrepancy_bound(network.max_degree, 1.0)
        discrepancy = max_avg_discrepancy(balancer.loads(include_dummies=False), network,
                                          total_weight=balancer.original_weight)
        assert discrepancy <= bound + 1e-9
