"""Tests for the flow-imitation invariant auditor (:mod:`repro.core.diagnostics`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.continuous.fos import FirstOrderDiffusion
from repro.continuous.sos import SecondOrderDiffusion
from repro.core.algorithm1 import DeterministicFlowImitation
from repro.core.algorithm2 import RandomizedFlowImitation
from repro.core.diagnostics import AuditReport, FlowImitationAuditor, InvariantViolation
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import point_load, weighted_assignment


def build_algorithm1(network, loads):
    assignment = TaskAssignment.from_unit_loads(network, loads)
    continuous = FirstOrderDiffusion(network, assignment.loads())
    return DeterministicFlowImitation(continuous, assignment)


class TestCleanRuns:
    @pytest.mark.parametrize("builder", [
        lambda: topologies.torus(5, dims=2),
        lambda: topologies.hypercube(4),
        lambda: topologies.random_regular(20, 4, seed=2),
        lambda: topologies.star(9),
    ])
    def test_algorithm1_runs_are_clean(self, builder):
        network = builder()
        balancer = build_algorithm1(network, point_load(network, 16 * network.num_nodes))
        auditor = FlowImitationAuditor(balancer)
        report = auditor.run_until_continuous_balanced(max_rounds=50_000)
        assert report.clean, report.violations
        assert report.rounds_checked == balancer.round_index
        assert report.max_flow_error <= balancer.w_max + 1e-9
        assert report.max_load_deviation <= network.max_degree * balancer.w_max + 1e-9

    def test_algorithm2_runs_are_clean(self):
        network = topologies.torus(5, dims=2)
        loads = point_load(network, 25 * 32)
        assignment = TaskAssignment.from_unit_loads(network, loads)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = RandomizedFlowImitation(continuous, assignment, seed=3)
        auditor = FlowImitationAuditor(balancer)
        report = auditor.run_audited(rounds=30)
        assert report.clean, report.violations

    def test_weighted_run_is_clean(self):
        network = topologies.random_regular(16, 4, seed=3)
        assignment = weighted_assignment(network, num_tasks=200, max_weight=4,
                                         placement="uniform", seed=5)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        auditor = FlowImitationAuditor(balancer)
        report = auditor.run_audited(rounds=20)
        assert report.clean, report.violations

    def test_summary_mentions_rounds(self):
        network = topologies.cycle(8)
        balancer = build_algorithm1(network, point_load(network, 64))
        auditor = FlowImitationAuditor(balancer)
        auditor.run_audited(rounds=5)
        text = auditor.report.summary()
        assert "5 rounds" in text
        assert "clean" in text


class TestViolationDetection:
    def test_corrupted_bookkeeping_is_detected(self):
        """Tampering with the discrete cumulative flow must trip the auditor."""
        network = topologies.cycle(8)
        balancer = build_algorithm1(network, point_load(network, 64))
        auditor = FlowImitationAuditor(balancer)
        balancer.advance()
        balancer._discrete_cumulative[0] += 10.0  # corrupt the bookkeeping
        violations = auditor.check_round()
        assert violations
        kinds = {violation.invariant for violation in violations}
        assert "flow-error-bound" in kinds

    def test_conservation_violation_detected(self):
        network = topologies.cycle(8)
        balancer = build_algorithm1(network, point_load(network, 64))
        auditor = FlowImitationAuditor(balancer)
        balancer.advance()
        # Secretly remove a real task from the assignment.
        node = int(np.argmax(balancer.loads()))
        task = balancer.assignment.tasks_at(node)[0]
        balancer.assignment.remove(node, task)
        violations = auditor.check_round()
        assert any(violation.invariant == "conservation" for violation in violations)
        assert not auditor.report.clean

    def test_sos_violating_definition1_shows_up_as_dummy_usage_not_violation(self):
        """When the substrate induces negative load the auditor reports dummies, not bugs."""
        network = topologies.cycle(24)
        loads = point_load(network, 24 * 64)
        assignment = TaskAssignment.from_unit_loads(network, loads)
        continuous = SecondOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        auditor = FlowImitationAuditor(balancer)
        report = auditor.run_audited(rounds=40)
        # The flow-error bound (Observation 4) holds regardless of the substrate.
        assert all(violation.invariant != "flow-error-bound"
                   for violation in report.violations)
        assert all(violation.invariant != "non-negativity"
                   for violation in report.violations)
        assert report.dummy_tokens == balancer.dummy_tokens_created


class TestValidation:
    def test_only_flow_imitation_accepted(self):
        from repro.discrete.baselines.diffusion import RoundDownDiffusion

        network = topologies.cycle(6)
        baseline = RoundDownDiffusion(network, [6] * 6)
        with pytest.raises(ProcessError):
            FlowImitationAuditor(baseline)  # type: ignore[arg-type]

    def test_negative_rounds_rejected(self):
        network = topologies.cycle(6)
        balancer = build_algorithm1(network, [6] * 6)
        auditor = FlowImitationAuditor(balancer)
        with pytest.raises(ProcessError):
            auditor.run_audited(rounds=-1)

    def test_report_dataclasses(self):
        report = AuditReport()
        assert report.clean
        violation = InvariantViolation(round_index=3, invariant="x", detail="d", magnitude=1.0)
        report.violations.append(violation)
        assert not report.clean


class TestAuditorTelemetry:
    """The auditor as a telemetry producer (satellite of the obs subsystem)."""

    def test_violations_emitted_on_the_bus(self):
        from repro.obs import EventLog, MetricsBus

        network = topologies.cycle(8)
        balancer = build_algorithm1(network, point_load(network, 64))
        bus = MetricsBus()
        auditor = FlowImitationAuditor(balancer, bus=bus)
        with EventLog(bus, kinds=["audit_violation"]) as log:
            balancer.advance()
            balancer._discrete_cumulative[0] += 10.0  # corrupt the bookkeeping
            violations = auditor.check_round()
        assert violations
        assert len(log.events) == len(violations)
        payload = log.events[0].payload
        assert payload["invariant"] == violations[0].invariant
        assert payload["magnitude"] == violations[0].magnitude
        assert log.events[0].round_index == violations[0].round_index

    def test_clean_rounds_emit_nothing(self):
        from repro.obs import EventLog, MetricsBus

        network = topologies.cycle(8)
        balancer = build_algorithm1(network, point_load(network, 64))
        bus = MetricsBus()
        auditor = FlowImitationAuditor(balancer, bus=bus)
        with EventLog(bus) as log:
            balancer.advance()
            assert auditor.check_round() == []
        assert log.events == []

    def test_array_backend_balancers_auditable(self):
        """The loosened FlowCoupledBalancer bound admits the array backend."""
        from repro.simulation.engine import run_algorithm

        network = topologies.cycle(8)
        result = run_algorithm("algorithm1", network,
                               initial_load=point_load(network, 64),
                               rounds=10, seed=3, backend="array", audit=True)
        assert result.extra["backend"] == "array"
        audit = result.extra["audit"]
        assert audit["clean"] is True
        assert audit["rounds_checked"] == 10

    def test_as_extra_round_trips_to_json(self):
        import json

        report = AuditReport()
        report.rounds_checked = 5
        report.violations.append(InvariantViolation(
            round_index=2, invariant="conservation", detail="d", magnitude=1.5))
        extra = report.as_extra()
        assert extra["clean"] is False
        assert extra["rounds_checked"] == 5
        assert extra["violations"][0]["invariant"] == "conservation"
        json.dumps(extra)  # JSON-friendly by construction


class TestEngineAuditIntegration:
    """run_algorithm(audit=True): the auditor rides the engine's record loop."""

    def test_audit_summary_lands_in_extra(self):
        from repro.simulation.engine import run_algorithm

        network = topologies.torus(4, dims=2)
        result = run_algorithm("algorithm1", network,
                               initial_load=point_load(network, 256),
                               rounds=10, seed=3, audit=True)
        audit = result.extra["audit"]
        assert audit["clean"] is True
        assert audit["rounds_checked"] == 10
        assert audit["violations"] == []

    def test_audit_does_not_change_the_trajectory(self):
        from repro.simulation.engine import run_algorithm

        network = topologies.torus(4, dims=2)
        kwargs = dict(initial_load=point_load(network, 256), rounds=10,
                      seed=3, record_trace=True)
        plain = run_algorithm("algorithm2", network, rng_mode="counter", **kwargs)
        audited = run_algorithm("algorithm2", network, rng_mode="counter",
                                audit=True, **kwargs)
        assert audited.trace_max_min == plain.trace_max_min

    def test_audit_with_probe_interplay(self):
        """Auditor and probe share one bus without interfering."""
        from repro.obs import EventLog, MetricsBus
        from repro.simulation.engine import run_algorithm

        network = topologies.torus(4, dims=2)
        bus = MetricsBus()
        with EventLog(bus) as log:
            result = run_algorithm("algorithm1", network,
                                   initial_load=point_load(network, 256),
                                   rounds=8, seed=3, bus=bus, audit=True)
        assert len(log.of_kind("round")) == 8
        assert log.of_kind("audit_violation") == []
        assert result.extra["audit"]["clean"] is True
        assert result.extra["kernel_seconds"] > 0.0

    def test_audit_rejected_for_baselines(self):
        from repro.exceptions import ExperimentError
        from repro.simulation.engine import run_algorithm

        network = topologies.torus(4, dims=2)
        with pytest.raises(ExperimentError, match="audit=True requires"):
            run_algorithm("round-down", network,
                          initial_load=point_load(network, 256),
                          rounds=5, audit=True)
