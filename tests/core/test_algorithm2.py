"""Tests for Algorithm 2 (randomized flow imitation) and Theorem 8."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.continuous.dimension_exchange import periodic_dimension_exchange
from repro.continuous.fos import FirstOrderDiffusion
from repro.core.algorithm2 import (
    RandomizedFlowImitation,
    theorem8_max_avg_bound,
    theorem8_max_min_bound,
    theorem8_required_base_load,
)
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import balanced_load, point_load, weighted_assignment
from repro.tasks.load import max_avg_discrepancy, max_min_discrepancy


def build(network, loads, seed=0, continuous_kind="fos"):
    assignment = TaskAssignment.from_unit_loads(network, loads)
    if continuous_kind == "fos":
        continuous = FirstOrderDiffusion(network, assignment.loads())
    else:
        continuous = periodic_dimension_exchange(network, assignment.loads())
    return RandomizedFlowImitation(continuous, assignment, seed=seed)


class TestValidation:
    def test_weighted_tasks_rejected(self):
        network = topologies.cycle(6)
        assignment = weighted_assignment(network, num_tasks=10, max_weight=3,
                                         placement="uniform", seed=1)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        with pytest.raises(ProcessError):
            RandomizedFlowImitation(continuous, assignment)

    def test_unit_tokens_accepted(self):
        network = topologies.cycle(6)
        balancer = build(network, [6] * 6)
        assert balancer.w_max == 1.0


class TestFlowErrorBound:
    @pytest.mark.parametrize("family,builder", [
        ("torus", lambda: topologies.torus(5, dims=2)),
        ("hypercube", lambda: topologies.hypercube(4)),
        ("expander", lambda: topologies.random_regular(20, 4, seed=1)),
    ])
    def test_flow_error_below_one(self, family, builder):
        """Observation 9(3): every per-edge error is a (shifted) fractional part in (-1, 1)."""
        network = builder()
        balancer = build(network, point_load(network, 16 * network.num_nodes), seed=3)
        for _ in range(25):
            balancer.advance()
            assert np.all(np.abs(balancer.flow_errors()) <= 1.0 + 1e-9)

    def test_expected_flow_unbiased(self):
        """Averaged over seeds, the discrete cumulative flow tracks the continuous flow."""
        network = topologies.cycle(8)
        loads = point_load(network, 64)
        per_seed_errors = []
        for seed in range(12):
            balancer = build(network, loads, seed=seed)
            balancer.run(10)
            per_seed_errors.append(balancer.flow_errors())
        mean_error = np.mean(per_seed_errors, axis=0)
        # Per-edge errors are in (-1, 1); their mean over independent seeds
        # should be noticeably smaller than 1 in magnitude.
        assert np.all(np.abs(mean_error) < 0.75)


class TestTheorem8:
    @pytest.mark.parametrize("dimension", [3, 4, 5])
    def test_max_avg_bound_on_hypercubes(self, dimension):
        network = topologies.hypercube(dimension)
        loads = point_load(network, 32 * network.num_nodes)
        balancer = build(network, loads, seed=dimension)
        balancer.run_until_continuous_balanced(max_rounds=50_000)
        # Generous constant: the theorem's bound is d/4 + O(sqrt(d log n)).
        bound = theorem8_max_avg_bound(network.max_degree, network.num_nodes, constant=3.0)
        discrepancy = max_avg_discrepancy(balancer.loads(include_dummies=False), network,
                                          total_weight=balancer.original_weight)
        assert discrepancy <= bound + 1e-9

    def test_max_min_bound_with_sufficient_initial_load(self):
        network = topologies.torus(6, dims=2)
        base = int(math.ceil(theorem8_required_base_load(network.max_degree,
                                                         network.num_nodes)))
        loads = point_load(network, 200) + balanced_load(network, base)
        balancer = build(network, loads, seed=5)
        balancer.run_until_continuous_balanced(max_rounds=50_000)
        assert not balancer.used_infinite_source
        bound = theorem8_max_min_bound(network.max_degree, network.num_nodes, constant=4.0)
        assert max_min_discrepancy(balancer.loads(), network) <= bound + 1e-9

    def test_randomized_beats_or_matches_worst_case_on_large_star(self):
        """For large degree the sqrt(d log n) shape is far below the 2d bound of Algorithm 1."""
        assert theorem8_max_avg_bound(64, 256) < 2 * 64 + 2

    def test_bound_helpers_monotone(self):
        assert theorem8_max_avg_bound(8, 64) < theorem8_max_avg_bound(16, 64)
        assert theorem8_max_min_bound(8, 64) < theorem8_max_min_bound(8, 4096)
        assert theorem8_required_base_load(8, 64) >= 2.0


class TestRandomnessControl:
    def test_same_seed_same_result(self):
        network = topologies.torus(4, dims=2)
        loads = point_load(network, 160)
        a = build(network, loads, seed=42)
        b = build(network, loads, seed=42)
        a.run(20)
        b.run(20)
        np.testing.assert_array_equal(a.loads(), b.loads())

    def test_different_seeds_can_differ(self):
        network = topologies.torus(4, dims=2)
        loads = point_load(network, 160)
        a = build(network, loads, seed=1)
        b = build(network, loads, seed=2)
        a.run(20)
        b.run(20)
        assert not np.array_equal(a.loads(), b.loads())

    def test_load_conservation(self):
        network = topologies.hypercube(4)
        loads = point_load(network, 256)
        balancer = build(network, loads, seed=9)
        balancer.run(30)
        assert balancer.loads(include_dummies=False).sum() == pytest.approx(256.0)

    def test_discrepancy_bound_method(self):
        network = topologies.hypercube(4)
        balancer = build(network, point_load(network, 64), seed=0)
        assert balancer.discrepancy_bound() == pytest.approx(
            theorem8_max_avg_bound(4, 16))
