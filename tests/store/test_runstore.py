"""Tests for the append-only run store (:mod:`repro.store.runstore`)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.network import topologies
from repro.simulation.engine import run_algorithm
from repro.simulation.parallel import grid_sweep_with_outcomes
from repro.simulation.sweep import SweepConfiguration
from repro.store import (
    RunRecord,
    RunStore,
    canonical_json,
    config_hash,
    record_run,
    record_sweep_outcomes,
    result_payload,
    write_benchmark_record,
)
from repro.store.runstore import env_fingerprint
from repro.tasks.generators import point_load


def engine_result(seed=7, rounds=10):
    network = topologies.torus(4, dims=2)
    load = point_load(network, 32 * network.num_nodes)
    return run_algorithm("algorithm2", network, initial_load=load,
                         rounds=rounds, seed=seed, record_trace=True,
                         rng_mode="counter")


class TestConfigHash:
    def test_key_order_does_not_matter(self):
        assert (config_hash({"a": 1, "b": [2, 3]})
                == config_hash({"b": [2, 3], "a": 1}))

    def test_value_changes_change_the_hash(self):
        assert config_hash({"seed": 1}) != config_hash({"seed": 2})

    def test_numpy_values_hash_like_python_ones(self):
        assert (config_hash({"n": np.int64(16), "w": np.float64(2.5)})
                == config_hash({"n": 16, "w": 2.5}))

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": [True, None]}) == '{"a":[true,null],"b":1}'


class TestRunRecord:
    def test_hash_and_timestamp_filled_in(self):
        record = RunRecord(label="x", kind="engine", config={"seed": 1})
        assert record.config_hash == config_hash({"seed": 1})
        assert record.created  # ISO timestamp auto-stamped

    def test_line_round_trip(self):
        result = engine_result()
        record = RunRecord(label="x", kind="engine", config={"seed": 7},
                           seeds=[7], result=result_payload(result),
                           timing={"seconds": 0.5})
        clone = RunRecord.from_line(record.as_line())
        assert clone == record
        assert clone.trace() == [float(v) for v in result.trace_max_min]
        assert clone.metric("final_max_min") == result.final_max_min

    def test_unknown_fields_rejected(self):
        with pytest.raises(ExperimentError, match="unknown run-record fields"):
            RunRecord.from_line('{"label": "x", "kind": "engine", '
                                '"config": {}, "surprise": 1}')

    def test_metric_and_trace_defaults_without_result(self):
        record = RunRecord(label="x", kind="benchmark", config={})
        assert record.trace() is None
        assert record.metric("final_max_min", default=-1) == -1

    def test_env_excluded_from_hash(self):
        record = RunRecord(label="x", kind="engine", config={"seed": 1},
                           env={"python": "0.0"})
        assert record.config_hash == config_hash({"seed": 1})
        assert env_fingerprint()["python"] != "0.0"


class TestRunStore:
    def test_append_and_read_back(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        assert not store.exists()
        record = record_run(store, "first", "engine", {"seed": 1}, seeds=[1],
                            result=engine_result(seed=1))
        assert store.exists()
        records = store.records()
        assert len(records) == 1
        assert records[0] == record

    def test_append_creates_parent_directories(self, tmp_path):
        store = RunStore(tmp_path / "deep" / "nested" / "runs.jsonl")
        record_run(store, "x", "engine", {"seed": 1}, seeds=[1])
        assert store.exists()

    def test_missing_store_errors(self, tmp_path):
        with pytest.raises(ExperimentError, match="no such run store"):
            RunStore(tmp_path / "nope.jsonl").records()

    def test_corrupt_line_errors_with_location(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        record_run(store, "good", "engine", {"seed": 1}, seeds=[1])
        with path.open("a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ExperimentError, match=r"runs\.jsonl:2"):
            store.records()

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        record_run(store, "x", "engine", {"seed": 1}, seeds=[1])
        with path.open("a") as handle:
            handle.write("\n\n")
        assert len(store.records()) == 1

    def test_truncated_trailing_record_skipped_with_warning(self, tmp_path):
        """A torn append (no trailing newline) is forgiven, not fatal."""
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        record_run(store, "kept", "engine", {"seed": 1}, seeds=[1])
        record_run(store, "kept-too", "engine", {"seed": 2}, seeds=[2])
        with path.open("a") as handle:
            handle.write('{"label": "torn", "config"')  # crash mid-append
        with pytest.warns(UserWarning, match="truncated trailing record"):
            records = store.records()
        assert [record.label for record in records] == ["kept", "kept-too"]

    def test_truncated_tail_only_forgiven_at_end_of_file(self, tmp_path):
        """Garbage followed by a valid record is real corruption: raise."""
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        record_run(store, "first", "engine", {"seed": 1}, seeds=[1])
        with path.open("a") as handle:
            handle.write('{"half": \n')
        record_run(store, "after", "engine", {"seed": 2}, seeds=[2])
        with pytest.raises(ExperimentError, match=r"runs\.jsonl:2"):
            store.records()

    def test_append_survives_reread_after_fsync(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunStore(path)
        record_run(store, "durable", "engine", {"seed": 1}, seeds=[1])
        assert RunStore(path).records()[0].label == "durable"


class TestSelect:
    @pytest.fixture()
    def store(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        record_run(store, "alpha", "engine", {"seed": 1}, seeds=[1])
        record_run(store, "beta", "engine", {"seed": 2}, seeds=[2])
        record_run(store, "alpha", "engine", {"seed": 3}, seeds=[3])
        return store

    def test_latest(self, store):
        assert store.select().seeds == [3]
        assert store.select("latest").seeds == [3]

    def test_index(self, store):
        assert store.select("#0").label == "alpha"
        assert store.select("#1").label == "beta"

    def test_bad_index(self, store):
        with pytest.raises(ExperimentError, match="bad record index"):
            store.select("#9")

    def test_label_latest_wins(self, store):
        assert store.select("alpha").seeds == [3]

    def test_hash_prefix(self, store):
        target = store.records()[1]
        assert store.select(target.config_hash[:12]) == target

    def test_ambiguous_prefix(self, tmp_path):
        store = RunStore(tmp_path / "runs.jsonl")
        record_run(store, "a", "engine", {"seed": 1}, seeds=[1])
        record_run(store, "b", "engine", {"seed": 1}, seeds=[1])
        prefix = store.records()[0].config_hash[:8]
        with pytest.raises(ExperimentError, match="ambiguous"):
            store.select(prefix)

    def test_no_match(self, store):
        with pytest.raises(ExperimentError, match="no record"):
            store.select("zzzz")

    def test_empty_store(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("")
        with pytest.raises(ExperimentError, match="is empty"):
            RunStore(path).select()


class TestRecordSweepOutcomes:
    def test_cells_stored_with_timing_envelopes(self, tmp_path):
        configuration = SweepConfiguration(
            algorithm="algorithm2", topology="torus", num_nodes=16,
            tokens_per_node=8, rng_mode="counter")
        _, outcomes = grid_sweep_with_outcomes([configuration], seeds=[1, 2],
                                               record_trace=True)
        store = RunStore(tmp_path / "sweep.jsonl")
        records = record_sweep_outcomes(store, "grid", outcomes)
        assert len(records) == 2
        for record, outcome in zip(records, outcomes):
            assert record.kind == "sweep"
            assert record.seeds == [outcome.cell.seed]
            assert record.timing["seconds"] == outcome.seconds
            assert record.trace() == [float(v) for v
                                      in outcome.result.trace_max_min]
        # the seed is part of the stored config, so the two cells differ
        assert records[0].config_hash != records[1].config_hash

    def test_retry_and_failure_metadata_stored(self, tmp_path):
        from repro.faults import FaultPlan
        from repro.simulation.parallel import GridCell, run_cells
        from repro.simulation.scenario import DynamicScenario

        cells = [GridCell(kind="dynamic",
                          spec=DynamicScenario(
                              name=f"s{i}", algorithm="randomized-rounding",
                              topology="cycle", num_nodes=8, tokens_per_node=4,
                              rounds=8, events="mixed", seed=i,
                              rng_mode="counter"),
                          index=i)
                 for i in range(3)]
        plan = FaultPlan(raise_at={0: 1, 2: 99})
        outcomes = run_cells(cells, workers=1, max_retries=1, strict=False,
                             faults=plan, retry_backoff=0.0)
        store = RunStore(tmp_path / "faulty.jsonl")
        records = record_sweep_outcomes(store, "faulty", outcomes)
        assert records[0].timing["attempts"] == 2
        assert records[0].timing["retry_seconds"] >= 0.0
        assert "attempts" not in records[1].timing
        assert records[2].result is None
        failure = records[2].timing["failure"]
        assert failure["kind"] == "error"
        assert failure["attempts"] == 2


class TestBenchWriter:
    def test_writes_historical_payload_shape(self, tmp_path):
        rows = [{"W": 100, "speedup": np.float64(3.5)}]
        path = write_benchmark_record("bench_x", "a description", rows,
                                      tmp_path / "BENCH_x.json")
        payload = json.loads(path.read_text())
        assert list(payload) == ["benchmark", "description", "python",
                                 "numpy", "rows"]
        assert payload["benchmark"] == "bench_x"
        assert payload["rows"] == [{"W": 100, "speedup": 3.5}]

    def test_extra_keys_merged(self, tmp_path):
        path = write_benchmark_record("bench_x", "d", [{"W": 1}],
                                      tmp_path / "BENCH_x.json",
                                      extra={"cpus": 4})
        assert json.loads(path.read_text())["cpus"] == 4

    def test_optional_store_append(self, tmp_path):
        store_path = tmp_path / "store.jsonl"
        write_benchmark_record("bench_x", "d", [{"W": 1, "seconds": 0.25}],
                               tmp_path / "BENCH_x.json", store=store_path,
                               config={"sizes": [1]}, seeds=[11])
        record = RunStore(store_path).records()[0]
        assert record.kind == "benchmark"
        assert record.label == "bench_x"
        assert record.seeds == [11]
        assert record.config["benchmark"] == "bench_x"
        assert record.timing["rows"][0]["seconds"] == 0.25
